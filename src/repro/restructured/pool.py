"""The persistent worker pool — one long-lived fork pool per process.

The seed's real-parallel path paid a coordination tax the paper warns
about: every :func:`~repro.restructured.parallel.run_multiprocessing`
call forked a fresh ``multiprocessing.Pool`` and tore it down again,
so the five-run averaging protocol re-paid pool start-up five times and
warm per-process state (the operator cache of
:mod:`repro.sparsegrid.cache`) was thrown away with the workers.

This module keeps **one** fork pool alive for the whole process:

* levels, runs and engines share it — a second ``run_multiprocessing``
  call (or a second :class:`~repro.restructured.worker.ProcessPoolEngine`)
  finds warm workers whose operator/factor caches survived the previous
  job batch;
* acquiring with a larger ``processes`` requirement drains the old pool
  gracefully and grows a new one (never ``terminate()`` on the graceful
  path — in-flight jobs finish);
* shutdown is ``close()``/``join()``, and an ``atexit`` hook winds the
  pool down at interpreter exit.

Beyond the warm path, the pool is the *observable substrate* of the
fault-tolerant execution layer (:mod:`repro.resilience`):

* every dispatch and the shutdown path are serialized on a lock, so a
  job submitted while another thread (or the ``atexit`` hook) shuts the
  pool down raises a clean :class:`PoolClosedError` instead of racing
  ``multiprocessing`` internals or hanging;
* a **heartbeat queue** is created *before* the fork, so pool children
  inherit it and the resilient job wrapper can report which worker PID
  holds which job;
* :meth:`PersistentWorkerPool.reap_dead_workers` checks OS process
  liveness, letting the master attribute a vanished PID to its lost job
  immediately instead of waiting out the job's deadline;
* :meth:`PersistentWorkerPool.shutdown` grows a ``force`` mode
  (``terminate()``) for pools wedged by hung workers, and
  :func:`respawn_pool` replaces the shared pool with a fresh one
  without touching results the master already holds.

Cold-start cost is recorded so the warm-path observability layer can
report cold-vs-warm pool timings.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import threading
import time
from multiprocessing import resource_tracker
from typing import Any, Callable, Iterable, Optional

from repro.trace.recorder import emit as trace_emit

__all__ = [
    "PoolClosedError",
    "PersistentWorkerPool",
    "acquire_pool",
    "shutdown_pool",
    "respawn_pool",
    "pool_diagnostics",
    "child_heartbeat_queue",
]


class PoolClosedError(RuntimeError):
    """Raised on dispatch to a pool that has been (or is being) shut down.

    A ``RuntimeError`` subclass so callers that guarded against the old
    generic error keep working; new code should catch this type.
    """


# the queue pool *children* inherit at fork; set immediately before the
# fork so each pool generation gets its own channel (see resilient_entry
# in repro.resilience.inject)
_child_heartbeats = None


def child_heartbeat_queue():
    """The heartbeat queue of the pool this process was forked into.

    In the master process this is the queue of the most recently created
    pool; in a pool child it is the queue inherited at fork time.
    Returns ``None`` when no pool has ever been created.
    """
    return _child_heartbeats


#: monotonically increasing id across every pool this process forks;
#: respawned generations get fresh ids, which is what the data plane's
#: generation-tagged leases key off (a descriptor written by an old
#: generation's worker must never be attached after a respawn)
_pool_generations = itertools.count(1)


class PersistentWorkerPool:
    """A fork pool that outlives individual job batches."""

    def __init__(self, processes: int) -> None:
        global _child_heartbeats
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        started = time.perf_counter()
        self.processes = processes
        self.generation = next(_pool_generations)
        self._lock = threading.RLock()
        # start the resource tracker before forking so children inherit
        # it: shared-memory attaches in workers then re-register into
        # the master's tracker (a set no-op) instead of spawning per-
        # child trackers that would report phantom leaks at exit
        resource_tracker.ensure_running()
        context = multiprocessing.get_context("fork")
        # created before the fork so pool children inherit it; workers
        # report ("phase", (l, m), attempt, pid) tuples here
        self._heartbeats = context.SimpleQueue()
        _child_heartbeats = self._heartbeats
        self._pool = context.Pool(processes)
        self._known_pids: set[int] = {
            proc.pid for proc in self._pool._pool  # type: ignore[attr-defined]
        }
        self.cold_start_seconds = time.perf_counter() - started
        for pid in sorted(self._known_pids):
            trace_emit(
                "worker_spawn",
                worker=pid,
                processes=processes,
                generation=self.generation,
            )
        self.jobs_dispatched = 0
        self.batches_dispatched = 0
        self.closed = False

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def apply(self, fn: Callable, args: tuple) -> Any:
        """One synchronous job (the engine path)."""
        with self._lock:
            self._require_open()
            self.jobs_dispatched += 1
            handle = self._pool.apply_async(fn, args)
        return handle.get()

    def submit(self, fn: Callable, item: Any):
        """One asynchronous job; returns the ``AsyncResult`` handle.

        The fault-tolerant dispatch loop submits every job this way so
        it can poll readiness, enforce per-job deadlines and re-dispatch
        individual lost jobs.
        """
        with self._lock:
            self._require_open()
            self.jobs_dispatched += 1
            return self._pool.apply_async(fn, (item,))

    def map_static(self, fn: Callable, items: list) -> list:
        """``pool.map`` with its default static chunking (the seed
        dispatch policy, kept for measurement)."""
        with self._lock:
            self._require_open()
            self.jobs_dispatched += len(items)
            self.batches_dispatched += 1
            handle = self._pool.map_async(fn, items)
        return handle.get()

    def imap_unordered(
        self, fn: Callable, items: Iterable, *, chunksize: int = 1
    ) -> Iterable:
        """Greedy single-job dispatch: each free worker pulls the next
        item, so a longest-first ordering becomes LPT scheduling."""
        with self._lock:
            self._require_open()
            items = list(items)
            self.jobs_dispatched += len(items)
            self.batches_dispatched += 1
            return self._pool.imap_unordered(fn, items, chunksize)

    # ------------------------------------------------------------------
    # observability: heartbeats and process liveness
    # ------------------------------------------------------------------
    def drain_heartbeats(self) -> list[tuple]:
        """All heartbeat tuples workers have sent since the last drain."""
        beats: list[tuple] = []
        while not self._heartbeats.empty():
            beats.append(self._heartbeats.get())
        return beats

    def worker_pids(self) -> set[int]:
        """PIDs of the pool's current worker processes."""
        with self._lock:
            if self.closed:
                return set()
            return {
                proc.pid
                for proc in list(self._pool._pool)  # type: ignore[attr-defined]
            }

    def reap_dead_workers(self) -> set[int]:
        """PIDs that died since the last check.

        ``multiprocessing.Pool`` quietly repopulates a crashed worker,
        but the job it was running is lost forever — its ``AsyncResult``
        never completes.  Comparing the previously seen PID set against
        the currently *alive* one surfaces exactly those deaths, so the
        master can re-dispatch the lost job immediately.
        """
        with self._lock:
            if self.closed:
                return set()
            alive = {
                proc.pid
                for proc in list(self._pool._pool)  # type: ignore[attr-defined]
                if proc.is_alive()
            }
            dead = self._known_pids - alive
            self._known_pids = alive | (self._known_pids - dead)
            # repopulated replacements join the watch set
            current = {
                proc.pid
                for proc in list(self._pool._pool)  # type: ignore[attr-defined]
            }
            fresh = current - self._known_pids
            self._known_pids |= current
            for pid in sorted(dead):
                trace_emit("death_worker", worker=pid, detected_by="liveness")
            for pid in sorted(fresh):
                trace_emit("worker_spawn", worker=pid, repopulated=True)
            return dead

    def discard(self, handle) -> None:
        """Forget a lost job's ``AsyncResult``.

        A crashed worker's job never completes, and ``Pool`` keeps its
        result entry in the internal cache forever — which makes the
        graceful ``close()``/``join()`` path wait forever too (the
        worker handler refuses to exit while the cache is non-empty).
        Dropping the entry lets a pool that survived crashes still shut
        down gracefully once every *re-dispatched* job has finished.
        """
        with self._lock:
            if not self.closed:
                self._pool._cache.pop(  # type: ignore[attr-defined]
                    handle._job, None
                )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, *, force: bool = False) -> None:
        """Wind the pool down; idempotent.

        Graceful (default): drain in-flight jobs and join the workers.
        ``force=True``: ``terminate()`` — the only way out when a hung
        worker would block ``close()``/``join()`` forever; used by the
        respawn path after a deadline fault.
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            if force:
                self._pool.terminate()
            else:
                self._pool.close()
        # join outside the lock: submitters must fail fast with
        # PoolClosedError instead of queueing behind a long drain
        self._pool.join()

    def _require_open(self) -> None:
        if self.closed:
            raise PoolClosedError("pool has been shut down")


# ----------------------------------------------------------------------
# the shared process-wide pool
# ----------------------------------------------------------------------
_shared: Optional[PersistentWorkerPool] = None
_shared_lock = threading.Lock()
#: how many times a shared pool had to be (re)created — cold starts
_cold_starts = 0
#: how many acquisitions found a warm pool
_warm_acquisitions = 0
#: how many times a wedged shared pool was force-replaced
_respawns = 0


def acquire_pool(processes: Optional[int] = None) -> tuple[PersistentWorkerPool, bool]:
    """Return ``(pool, was_warm)`` — the shared pool, creating or
    growing it only when needed.

    ``processes=None`` accepts any live pool (defaulting to the CPU
    count on a cold start); an explicit requirement larger than the
    current pool drains it and grows a replacement.  Serialized against
    concurrent ``acquire_pool``/``shutdown_pool`` callers.
    """
    global _shared, _cold_starts, _warm_acquisitions
    needed = processes or multiprocessing.cpu_count()
    with _shared_lock:
        if (
            _shared is not None
            and not _shared.closed
            and (processes is None or _shared.processes >= needed)
        ):
            _warm_acquisitions += 1
            return _shared, True
        if _shared is not None:
            _shared.shutdown()
        _shared = PersistentWorkerPool(needed)
        _cold_starts += 1
        return _shared, False


def shutdown_pool() -> None:
    """Gracefully wind down the shared pool (drain, join, forget)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.shutdown()


def respawn_pool(processes: Optional[int] = None) -> PersistentWorkerPool:
    """Force-replace the shared pool with a fresh one.

    The recovery path for a wedged pool: hung workers never drain, so
    the old pool is ``terminate()``d and a new generation forked.
    Results the master already collected are untouched — only jobs that
    were in flight need re-dispatching, which the caller does from its
    own bookkeeping.
    """
    global _shared, _respawns
    with _shared_lock:
        old, _shared = _shared, None
    if old is not None:
        old.shutdown(force=True)
    with _shared_lock:
        needed = processes or (old.processes if old is not None else None)
        _shared = PersistentWorkerPool(needed or multiprocessing.cpu_count())
        _respawns += 1
        return _shared


def pool_diagnostics() -> dict[str, float]:
    """Counters for the warm-path report."""
    return {
        "alive": _shared is not None and not _shared.closed,
        "processes": _shared.processes if _shared is not None else 0,
        "generation": _shared.generation if _shared is not None else 0,
        "cold_starts": _cold_starts,
        "warm_acquisitions": _warm_acquisitions,
        "respawns": _respawns,
        "jobs_dispatched": _shared.jobs_dispatched if _shared is not None else 0,
        "cold_start_seconds": (
            _shared.cold_start_seconds if _shared is not None else 0.0
        ),
    }


atexit.register(shutdown_pool)
