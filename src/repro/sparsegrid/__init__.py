"""The legacy application: sparse-grid advection–diffusion solver.

This package is the Python equivalent of the ~3500-line sequential ANSI
C program the paper restructures: a time-dependent two-dimensional
advection–diffusion problem solved with the sparse-grid *combination
technique*.

* :mod:`problem` — problem definitions (velocity field, diffusion,
  source, boundary/initial conditions, optional exact solution);
* :mod:`grid` — the anisotropic grid family ``(l, m)`` and the
  combination-diagonal enumeration behind the paper's nested loop;
* :mod:`discretize` — sparse spatial operators (upwind advection +
  central diffusion) with Dirichlet boundary handling;
* :mod:`linsolve` — the linear-system layer (factorization cache);
* :mod:`cache` — the warm-path operator/assembly cache (process-local
  LRU serving pre-assembled operators and LU factors to ``subsolve``);
* :mod:`rosenbrock` — the adaptive ROS2 Rosenbrock time integrator;
* :mod:`subsolve` — ``subsolve(l, m)``: the computation-intensive grid
  routine the paper identifies as the concurrency candidate;
* :mod:`combination` — prolongation and the combination formula;
* :mod:`sequential` — the sequential driver (``SeqSourceCode.c``).
"""

from .cache import (
    OperatorCache,
    configure_default_operator_cache,
    default_operator_cache,
    reset_default_operator_cache,
)
from .combination import combination_coefficients, combine, resample_1d, resample_2d
from .grid import Grid, combination_grids, nested_loop_grids
from .linsolve import FactorCache
from .problem import (
    AdvectionDiffusionProblem,
    boundary_layer_problem,
    manufactured_problem,
    inhomogeneous_problem,
    rotating_cone_problem,
)
from .rosenbrock import Ros2Integrator, StepStats
from .sequential import GlobalData, SequentialApplication, SequentialResult
from .subsolve import SubsolveResult, subsolve
from .theta import ThetaIntegrator, make_integrator, steps_for_tolerance
from .verification import (
    ConvergenceRow,
    ConvergenceStudy,
    combination_study,
    discrete_mass,
    error_norms,
    single_grid_study,
)

__all__ = [
    "AdvectionDiffusionProblem",
    "FactorCache",
    "OperatorCache",
    "boundary_layer_problem",
    "configure_default_operator_cache",
    "default_operator_cache",
    "reset_default_operator_cache",
    "GlobalData",
    "Grid",
    "Ros2Integrator",
    "SequentialApplication",
    "SequentialResult",
    "StepStats",
    "SubsolveResult",
    "ConvergenceRow",
    "ConvergenceStudy",
    "ThetaIntegrator",
    "combination_coefficients",
    "combination_grids",
    "combination_study",
    "combine",
    "discrete_mass",
    "error_norms",
    "make_integrator",
    "single_grid_study",
    "steps_for_tolerance",
    "inhomogeneous_problem",
    "manufactured_problem",
    "nested_loop_grids",
    "resample_1d",
    "resample_2d",
    "rotating_cone_problem",
    "subsolve",
]
