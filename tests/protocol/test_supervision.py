"""The supervision extension: worker failures under the protocol.

Without supervision a crashed worker deadlocks the run (the paper's
protocol has no failure story); with ``supervise=True`` the coordinator
injects failure units and closes the rendezvous, so the application
terminates cleanly and can react.
"""

from __future__ import annotations

import pytest

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    Runtime,
    run_application,
)
from repro.protocol import (
    FailedWorkerResult,
    MasterProtocolClient,
    WorkerJob,
    WorkerPoolError,
    make_worker_definition,
    protocol_mw,
)


def crashing_compute(x):
    if x % 2 == 1:
        raise ValueError(f"injected failure on job {x}")
    return x * 10


def run_app(
    runtime: Runtime,
    master_defn,
    worker_defn,
    supervise: bool,
    timeout=30.0,
    registry=None,
):
    def main_body():
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            master = ctx.spawn(master_defn)
            ctx.run_block(
                protocol_mw(
                    master, worker_defn, supervise=supervise, registry=registry
                )
            )
            ctx.terminated(master)
            ctx.halt()

        return block

    main = Coordinator(runtime, "Main", main_body, deadline=timeout)
    run_application(runtime, main, timeout=timeout)


class TestSupervisedFailures:
    def test_failures_surface_as_pool_error(self, runtime):
        worker_defn = make_worker_definition("Worker", crashing_compute)
        outcome = {}

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            try:
                client.run_pool([WorkerJob(i, i) for i in range(6)])
            except WorkerPoolError as exc:
                outcome["failures"] = exc.failures
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_app(runtime, master_defn, worker_defn, supervise=True)
        assert len(outcome["failures"]) == 3
        assert all(isinstance(f, FailedWorkerResult) for f in outcome["failures"])
        assert all("injected failure" in f.error for f in outcome["failures"])

    def test_successes_still_delivered(self, runtime):
        worker_defn = make_worker_definition("Worker", crashing_compute)
        outcome = {}

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            results = client.run_pool(
                [WorkerJob(i, i) for i in range(6)], raise_on_failure=False
            )
            outcome["results"] = sorted(r.payload for r in results)
            outcome["failures"] = client.last_failures
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_app(runtime, master_defn, worker_defn, supervise=True)
        assert outcome["results"] == [0, 20, 40]
        assert len(outcome["failures"]) == 3

    def test_all_workers_failing_still_terminates(self, runtime):
        def always_crash(x):
            raise RuntimeError("nothing works")

        worker_defn = make_worker_definition("Worker", always_crash)
        outcome = {}

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            results = client.run_pool(
                [WorkerJob(i, i) for i in range(4)], raise_on_failure=False
            )
            outcome["results"] = results
            outcome["failures"] = client.last_failures
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_app(runtime, master_defn, worker_defn, supervise=True)
        assert outcome["results"] == []
        assert len(outcome["failures"]) == 4

    def test_next_pool_works_after_failures(self, runtime):
        worker_defn = make_worker_definition("Worker", crashing_compute)
        outcome = {}

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=30)
            client.run_pool([WorkerJob(0, 1)], raise_on_failure=False)  # fails
            results = client.run_pool([WorkerJob(0, 2), WorkerJob(1, 4)])
            outcome["second"] = sorted(r.payload for r in results)
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_app(runtime, master_defn, worker_defn, supervise=True, timeout=60)
        assert outcome["second"] == [20, 40]

    def test_clean_pool_unaffected_by_supervision(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x + 1)
        outcome = {}

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            results = client.run_pool([WorkerJob(i, i) for i in range(5)])
            outcome["results"] = sorted(r.payload for r in results)
            assert client.last_failures == []
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_app(runtime, master_defn, worker_defn, supervise=True)
        assert outcome["results"] == [1, 2, 3, 4, 5]


class TestSharedEscalationLadder:
    def test_claimed_failures_land_in_the_shared_fault_log(self, runtime):
        """The MANIFOLD ``death_worker`` path and the OS-level pool path
        share one ladder: a supervised worker failure is recorded as a
        structured ``death_worker`` fault whose action comes from the
        same :class:`~repro.resilience.EscalationPolicy`."""
        from repro.protocol import SupervisionRegistry
        from repro.resilience import EscalationPolicy, FaultLog

        log = FaultLog()
        registry = SupervisionRegistry(
            fault_log=log, escalation=EscalationPolicy()
        )
        worker_defn = make_worker_definition("Worker", crashing_compute)

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            client.run_pool(
                [WorkerJob(i, i) for i in range(6)], raise_on_failure=False
            )
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_app(
            runtime, master_defn, worker_defn, supervise=True, registry=registry
        )
        assert registry.failures_handled == 3
        assert len(log) == 3
        for event in log.events():
            assert event.kind == "death_worker"
            assert event.detected_by == "supervisor"
            # death of a worker means its slot is gone: the ladder
            # prescribes reassignment, exactly as for an OS-level crash
            assert event.action == "reassign"
            assert "injected failure" in event.error
        report = log.report()
        assert report.faults == 3 and report.survived


class TestUnsupervisedBehaviour:
    def test_unsupervised_failure_deadlocks_and_times_out(self, runtime):
        """Faithful paper behaviour: no failure handling — the run can
        only end via the coordinator deadline."""

        def always_crash(x):
            raise RuntimeError("crash")

        worker_defn = make_worker_definition("Worker", always_crash)

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=3)
            client.run_pool([WorkerJob(0, 0)])
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        with pytest.raises(Exception):
            run_app(runtime, master_defn, worker_defn, supervise=False, timeout=4)
