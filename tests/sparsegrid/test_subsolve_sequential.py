"""``subsolve`` and the sequential driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import (
    Grid,
    SequentialApplication,
    manufactured_problem,
    rotating_cone_problem,
    subsolve,
)


class TestSubsolve:
    def test_returns_full_node_array(self):
        grid = Grid(2, 1, 1)
        result = subsolve(manufactured_problem(t_end=0.2), grid, tol=1e-3)
        assert result.solution.shape == grid.shape

    def test_boundary_values_imposed(self):
        problem = manufactured_problem(t_end=0.2)
        result = subsolve(problem, Grid(2, 1, 1), tol=1e-3)
        # homogeneous Dirichlet: boundary must be exactly zero
        assert np.allclose(result.solution[0, :], 0.0)
        assert np.allclose(result.solution[:, -1], 0.0)

    def test_self_contained_and_deterministic(self):
        """The cut criterion: subsolve reads/writes only its own grid,
        so two calls with identical inputs agree bitwise."""
        problem = rotating_cone_problem(t_end=0.25)
        a = subsolve(problem, Grid(2, 2, 1), tol=1e-3)
        b = subsolve(problem, Grid(2, 2, 1), tol=1e-3)
        assert np.array_equal(a.solution, b.solution)

    def test_explicit_t_end_overrides_problem(self):
        problem = manufactured_problem(t_end=1.0)
        short = subsolve(problem, Grid(2, 1, 1), tol=1e-3, t_end=0.1)
        long = subsolve(problem, Grid(2, 1, 1), tol=1e-3, t_end=0.5)
        assert not np.array_equal(short.solution, long.solution)

    def test_work_units_positive(self):
        result = subsolve(manufactured_problem(t_end=0.2), Grid(2, 1, 1), tol=1e-3)
        assert result.work_units > 0
        assert result.wall_seconds > 0

    def test_accuracy_against_exact(self):
        problem = manufactured_problem(diffusion=0.02, t_end=0.3)
        grid = Grid(2, 3, 3)
        result = subsolve(problem, grid, tol=1e-5)
        xx, yy = grid.meshgrid()
        err = np.max(np.abs(result.solution - problem.exact(xx, yy, 0.3)))
        assert err < 0.05


class TestSequentialApplication:
    def test_run_produces_complete_data(self):
        app = SequentialApplication(root=2, level=2, tol=1e-3)
        result = app.run()
        assert result.data.complete
        assert result.n_grids == 5

    def test_worker_count_property(self):
        assert SequentialApplication(level=4).n_workers == 9
        assert SequentialApplication(level=0).n_workers == 1

    def test_timings_partition_total(self):
        result = SequentialApplication(root=2, level=2, tol=1e-3).run()
        parts = (
            result.init_seconds
            + result.subsolve_seconds
            + result.prolongation_seconds
        )
        assert parts == pytest.approx(result.total_seconds, rel=0.05)

    def test_grid_seconds_reported_per_grid(self):
        result = SequentialApplication(root=2, level=2, tol=1e-3).run()
        assert set(result.grid_seconds) == {
            (0, 1), (1, 0), (0, 2), (1, 1), (2, 0)
        }
        assert all(s > 0 for s in result.grid_seconds.values())

    def test_observer_hook_sees_each_grid(self):
        seen = []
        app = SequentialApplication(
            root=2, level=2, tol=1e-3, on_grid_done=lambda r: seen.append(r.grid)
        )
        app.run()
        assert len(seen) == 5

    def test_prolongate_requires_complete_data(self):
        app = SequentialApplication(root=2, level=2, tol=1e-3)
        data = app.initialize()
        with pytest.raises(ValueError, match="missing grids"):
            app.prolongate(data)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SequentialApplication(root=-1)
        with pytest.raises(ValueError):
            SequentialApplication(level=-1)
        with pytest.raises(ValueError):
            SequentialApplication(tol=0.0)

    def test_target_cap_respected(self):
        app = SequentialApplication(root=2, level=3, tol=1e-3, target_cap=2)
        result = app.run()
        assert (result.target_grid.l, result.target_grid.m) == (2, 2)

    def test_default_problem_is_rotating_cone(self):
        app = SequentialApplication()
        assert "rotating-cone" in app.problem.name

    def test_rerun_is_bitwise_reproducible(self):
        a = SequentialApplication(root=2, level=2, tol=1e-3).run()
        b = SequentialApplication(root=2, level=2, tol=1e-3).run()
        assert np.array_equal(a.combined, b.combined)
