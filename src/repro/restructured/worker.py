"""The worker wrapper and its compute engines.

A worker's contract is fixed by the protocol (read job, compute, write
result, raise ``death_worker``); *where* the computation runs is the
task-composition decision of §6.  Two engines realize the two
configurations of the paper:

* :class:`InlineEngine` — the worker thread computes in place.  All
  workers share one OS process: the "parallel" (single task instance)
  configuration.  CPython's GIL limits the speedup to what NumPy/SciPy
  release — this is the repro-band caveat; measured honestly in the
  benchmarks.
* :class:`ProcessPoolEngine` — each job is shipped to a pool of worker
  OS processes: the "distributed" (one worker per task instance)
  configuration, and the GIL workaround.  Only the small job spec and
  the result arrays cross the process boundary, exactly the data the
  paper's master passes to and from its workers.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.manifold import AtomicDefinition
from repro.protocol import make_worker_definition
from repro.sparsegrid.cache import default_operator_cache, operator_key
from repro.sparsegrid.discretize import SpatialOperator
from repro.sparsegrid.grid import Grid
from repro.sparsegrid.registry import make_problem
from repro.sparsegrid.subsolve import subsolve

__all__ = [
    "SubsolveJobSpec",
    "SubsolvePayload",
    "execute_job",
    "execute_job_uncached",
    "ship_payload",
    "shm_entry",
    "ComputeEngine",
    "InlineEngine",
    "ProcessPoolEngine",
    "make_subsolve_worker",
]


@dataclass(frozen=True)
class SubsolveJobSpec:
    """Everything a worker needs to run ``subsolve(l, m)``.

    Deliberately small and picklable: the problem travels by registry
    name, not by object.
    """

    problem_name: str
    root: int
    l: int
    m: int
    tol: float
    t_end: Optional[float] = None
    scheme: str = "upwind"
    problem_kwargs: tuple = ()  # sorted (key, value) pairs
    #: strips for the intra-grid Schur decomposition (1 = unsplit; the
    #: sharded-job path — see :mod:`repro.sparsegrid.decompose`).  A
    #: defaulted field keeps old pickles and constructors valid, so the
    #: socket engine's wire format is unchanged for unsplit jobs.
    split_k: int = 1

    @property
    def grid(self) -> Grid:
        return Grid(self.root, self.l, self.m)

    def kwargs(self) -> dict:
        return dict(self.problem_kwargs)

    @property
    def cache_key(self) -> tuple:
        """Key into the process-local operator cache.  Tolerance and
        final time are excluded on purpose: the assembled operator does
        not depend on them."""
        return operator_key(
            self.problem_name, self.problem_kwargs, self.grid, self.scheme
        )


@dataclass(frozen=True)
class SubsolvePayload:
    """What a worker sends back: the grid solution plus its counters."""

    l: int
    m: int
    solution: np.ndarray
    steps_accepted: int
    steps_rejected: int
    factorizations: int
    solves: int
    wall_seconds: float
    work_units: float
    # ------------------------------------------------------------------
    # warm-path observability (defaults keep old constructors working)
    # ------------------------------------------------------------------
    #: the spatial operator came from the worker's process-local cache
    operator_cache_hit: bool = False
    #: ``prepare()`` calls on the linear solver (one per attempted step)
    prepare_calls: int = 0
    #: prepares served without a fresh LU (hold band or factor cache)
    factor_reuse_hits: int = 0
    #: the subset served by the cross-run factor cache
    factor_cache_hits: int = 0
    #: seconds spent assembling the operator (0.0 on a cache hit)
    assembly_seconds: float = 0.0
    # ------------------------------------------------------------------
    # trace observability: where and when this job actually ran.  On
    # Linux ``time.monotonic`` is CLOCK_MONOTONIC, shared across
    # processes, so these land on the master's trace timeline directly.
    # ------------------------------------------------------------------
    #: OS PID of the process that executed the job (0 = unknown)
    worker_pid: int = 0
    #: ``time.monotonic()`` just before / after the computation
    started_monotonic: float = 0.0
    finished_monotonic: float = 0.0
    # ------------------------------------------------------------------
    # zero-copy data plane: when the solution traveled through a shared
    # memory lease, ``descriptor`` names the segment and ``solution`` is
    # an empty placeholder — the master resolves it via
    # ``DataPlane.attach`` without a copy
    # ------------------------------------------------------------------
    #: the :class:`~repro.perf.dataplane.ShmDescriptor`, if any
    descriptor: Optional[object] = None
    #: worker-side seconds spent on the shm write + checksum
    shm_write_seconds: float = 0.0
    # ------------------------------------------------------------------
    # intra-grid decomposition counters (zeros / 1 on the unsplit path)
    # ------------------------------------------------------------------
    #: strips the stage systems were split into (1 = unsplit)
    split_k: int = 1
    interface_unknowns: int = 0
    strip_factorizations: int = 0
    strip_solves: int = 0
    interface_solves: int = 0
    halo_exchanges: int = 0
    halo_bytes: int = 0
    strip_factor_seconds: float = 0.0
    strip_solve_seconds: float = 0.0
    #: per-call max-over-strips sums: the k-lane critical-path seconds
    critical_strip_factor_seconds: float = 0.0
    critical_strip_solve_seconds: float = 0.0
    schur_factor_seconds: float = 0.0
    interface_solve_seconds: float = 0.0
    strip_respawns: int = 0

    @property
    def factor_reuse_ratio(self) -> float:
        """Factorization-cache effectiveness of this job."""
        if self.prepare_calls == 0:
            return 0.0
        return self.factor_reuse_hits / self.prepare_calls


def execute_job(spec: SubsolveJobSpec, *, use_cache: bool = True) -> SubsolvePayload:
    """Run one job — the function both engines ultimately call.

    Must stay importable at module top level so multiprocessing can
    pickle it by reference.  With ``use_cache`` (the default) the
    spatial operator and its LU factors come from the process-local
    warm-path cache; results are bitwise identical either way, only the
    assembly/factorization work is skipped on a hit.
    """
    started_monotonic = time.monotonic()
    if use_cache:
        cache = default_operator_cache()
        entry, hit = cache.get(
            spec.cache_key,
            lambda: SpatialOperator(
                spec.grid,
                make_problem(spec.problem_name, **spec.kwargs()),
                scheme=spec.scheme,
            ),
        )
        operator, factor_cache = entry.operator, entry.factor_cache
        problem = operator.problem
    else:
        hit = False
        operator = factor_cache = None
        problem = make_problem(spec.problem_name, **spec.kwargs())
    result = subsolve(
        problem,
        spec.grid,
        spec.tol,
        t_end=spec.t_end,
        scheme=spec.scheme,
        operator=operator,
        factor_cache=factor_cache,
        # a sharded job runs its strips serially inside this worker;
        # the per-strip timings travel home in the payload and the
        # k-lane critical path is composed master-side (the same
        # hindsight-schedule methodology dispatch_makespan uses)
        split_k=getattr(spec, "split_k", 1),
        strip_executor="serial",
    )
    stats = result.stats
    return SubsolvePayload(
        l=spec.l,
        m=spec.m,
        solution=result.solution,
        steps_accepted=stats.steps_accepted,
        steps_rejected=stats.steps_rejected,
        factorizations=stats.factorizations,
        solves=stats.solves,
        wall_seconds=result.wall_seconds,
        work_units=result.work_units,
        operator_cache_hit=hit,
        prepare_calls=stats.prepare_calls,
        factor_reuse_hits=stats.factor_reuse_hits,
        factor_cache_hits=stats.factor_cache_hits,
        assembly_seconds=0.0 if hit else stats.assembly_seconds,
        worker_pid=os.getpid(),
        started_monotonic=started_monotonic,
        finished_monotonic=time.monotonic(),
        split_k=stats.split_k,
        interface_unknowns=stats.interface_unknowns,
        strip_factorizations=stats.strip_factorizations,
        strip_solves=stats.strip_solves,
        interface_solves=stats.interface_solves,
        halo_exchanges=stats.halo_exchanges,
        halo_bytes=stats.halo_bytes,
        strip_factor_seconds=stats.strip_factor_seconds,
        strip_solve_seconds=stats.strip_solve_seconds,
        critical_strip_factor_seconds=stats.critical_strip_factor_seconds,
        critical_strip_solve_seconds=stats.critical_strip_solve_seconds,
        schur_factor_seconds=stats.schur_factor_seconds,
        interface_solve_seconds=stats.interface_solve_seconds,
        strip_respawns=stats.strip_respawns,
    )


def execute_job_uncached(spec: SubsolveJobSpec) -> SubsolvePayload:
    """The cold path: no operator or factor reuse (for measurement).

    Top-level so multiprocessing can pickle it by reference.
    """
    return execute_job(spec, use_cache=False)


#: placeholder solution of a payload whose data went through shm
_SHIPPED = np.empty((0, 0))


def ship_payload(payload: SubsolvePayload, lease) -> SubsolvePayload:
    """Move the payload's solution into its shared-memory lease.

    On success the returned payload carries only the descriptor — the
    array itself never enters the pickle channel.  When the write is
    impossible (``lease`` is ``None``, the array outgrew its block, the
    segment vanished with a closed plane) the payload is returned
    untouched and travels by pickle: the per-payload fallback that keeps
    every run correct whatever happens to the transport.
    """
    if lease is None:
        return payload
    # lazy: repro.perf pulls in the execution layer at package import
    from repro.perf.dataplane import write_through_lease

    t_write = time.perf_counter()
    descriptor = write_through_lease(lease, payload.solution)
    if descriptor is None:
        return payload
    return replace(
        payload,
        solution=_SHIPPED,
        descriptor=descriptor,
        shm_write_seconds=time.perf_counter() - t_write,
    )


def shm_entry(item: tuple) -> SubsolvePayload:
    """Pool entry point for the shm data plane (no fault machinery).

    ``item`` is ``(spec, lease, use_cache)``; top-level so
    multiprocessing pickles it by reference.  The resilient dispatch
    loop has its own entry point
    (:func:`repro.resilience.inject.resilient_entry`), which ships
    through the lease the same way.
    """
    spec, lease, use_cache = item
    return ship_payload(execute_job(spec, use_cache=use_cache), lease)


class ComputeEngine:
    """Strategy interface: how a worker executes its job."""

    def compute(self, spec: SubsolveJobSpec) -> SubsolvePayload:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; idempotent."""

    def __enter__(self) -> "ComputeEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class InlineEngine(ComputeEngine):
    """Compute in the calling worker thread (single task instance)."""

    def compute(self, spec: SubsolveJobSpec) -> SubsolvePayload:
        return execute_job(spec)


class ProcessPoolEngine(ComputeEngine):
    """Ship each job to a pool of worker OS processes.

    ``processes`` bounds the pool (defaults to the CPU count); with the
    paper's configuration of one worker per task instance the natural
    choice is one process per expected worker, capped by the hardware.

    By default the engine borrows the process-wide *persistent* pool of
    :mod:`repro.restructured.pool`: warm workers retain their operator
    caches between jobs, runs and engines, and ``close()`` merely
    detaches (the shared pool stays warm for the next engine).  With
    ``persistent=False`` the engine owns a private pool and ``close()``
    drains it gracefully — ``close()``/``join()``, never
    ``terminate()``, so in-flight jobs finish instead of being killed
    mid-computation.
    """

    def __init__(
        self, processes: Optional[int] = None, *, persistent: bool = True
    ) -> None:
        from .pool import acquire_pool

        self.processes = processes
        self.persistent = persistent
        if persistent:
            self._pool, self.warm_start = acquire_pool(processes)
            self._owned = None
        else:
            self._owned = multiprocessing.get_context("fork").Pool(processes)
            self._pool = None
            self.warm_start = False

    def compute(self, spec: SubsolveJobSpec) -> SubsolvePayload:
        if self._owned is not None:
            return self._owned.apply(execute_job, (spec,))
        if self._pool is None:
            raise RuntimeError("engine has been closed")
        return self._pool.apply(execute_job, (spec,))

    def close(self) -> None:
        if self._owned is not None:
            self._owned.close()
            self._owned.join()
            self._owned = None
        # a borrowed persistent pool is shared state: detach only, the
        # shared pool is wound down by pool.shutdown_pool()/atexit
        self._pool = None


def make_subsolve_worker(engine: ComputeEngine) -> AtomicDefinition:
    """The ``Worker`` manifold of §5: protocol-compliant wrapper whose
    computation is delegated to the chosen engine."""
    return make_worker_definition("Worker", engine.compute)
