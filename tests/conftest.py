"""Shared fixtures for the test suite."""

from __future__ import annotations

import math
import os
import random

import pytest

from repro.manifold import Runtime
from repro.perf.costmodel import CostModel, CostRecord


def pytest_collection_modifyitems(config, items):
    """Optionally shuffle collection order to flush order-dependent state.

    The shuffled CI job sets ``REPRO_TEST_SHUFFLE_SEED``; the permutation
    is a pure function of the seed, so any failing order can be replayed
    locally by exporting the same value.
    """
    seed = os.environ.get("REPRO_TEST_SHUFFLE_SEED")
    if not seed:
        return
    random.Random(seed).shuffle(items)


def pytest_report_header(config):
    seed = os.environ.get("REPRO_TEST_SHUFFLE_SEED")
    if seed:
        return f"shuffled collection order: REPRO_TEST_SHUFFLE_SEED={seed}"
    return None


@pytest.fixture()
def runtime():
    """A fresh coordination runtime, shut down after the test."""
    rt = Runtime("test")
    yield rt
    rt.shutdown()


def synthetic_records(
    root: int = 2,
    levels=range(2, 7),
    tols=(1.0e-3, 1.0e-4),
    *,
    gamma: float = 0.01,
    beta: float = 5.0e-7,
    alpha: float = 1.0e-7,
    s0: float = 1.0,
    s1: float = 0.11,
    s2: float = -0.04,
    s3: float = 1.2,
) -> list[CostRecord]:
    """Noise-free records generated from a known ground-truth model."""
    records = []
    for tol in tols:
        for level in levels:
            for l in range(level + 1):
                m = level - l
                n = (2 ** (root + l) - 1) * (2 ** (root + m) - 1)
                solves = math.exp(
                    s0 + s1 * (l + m) + s2 * abs(l - m) + s3 * math.log10(1.0 / tol)
                )
                wall = gamma + beta * n + alpha * n * solves
                records.append(
                    CostRecord(
                        l=l,
                        m=m,
                        tol=tol,
                        wall_seconds=wall,
                        solves=int(round(solves)),
                        steps_accepted=int(round(solves / 2)),
                        n_interior=n,
                    )
                )
    return records


@pytest.fixture(scope="session")
def synthetic_cost_model() -> CostModel:
    """A cost model fitted on synthetic ground-truth records.

    Fast (no real solves) and deterministic; used by simulator, harness
    and figure tests that only need *a* plausible model.
    """
    return CostModel.fit(synthetic_records(), root=2)


@pytest.fixture(scope="session")
def calibrated_cost_model() -> CostModel:
    """A cost model calibrated on the real solver at small levels.

    Session-scoped: the measurement (~2 s) runs once per test session.
    """
    from repro.perf.costmodel import measure_costs

    records = measure_costs(
        "rotating-cone", root=2, levels=[4, 5, 6], tols=[1.0e-3, 1.0e-4],
        repeats=2,
    )
    return CostModel.fit(records, root=2)
