"""The advection-dominated boundary-layer problem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import Grid, boundary_layer_problem, subsolve
from repro.sparsegrid.discretize import SpatialOperator


@pytest.fixture(scope="module")
def solved():
    problem = boundary_layer_problem()
    grid = Grid(2, 3, 3)
    return problem, grid, subsolve(problem, grid, tol=1e-3)


class TestProblemDefinition:
    def test_registered(self):
        from repro.sparsegrid.registry import make_problem

        problem = make_problem("boundary-layer", diffusion=0.01)
        assert problem.diffusion == 0.01

    def test_inflow_on_left_boundary_only(self):
        problem = boundary_layer_problem()
        y = np.linspace(0, 1, 9)
        left = problem.boundary(np.zeros_like(y), y, 0.0)
        right = problem.boundary(np.ones_like(y), y, 0.0)
        assert left.max() > 0.9
        assert np.all(right == 0.0)

    def test_zero_initial_condition(self):
        problem = boundary_layer_problem()
        x = np.linspace(0, 1, 5)
        assert np.all(problem.initial(x, x) == 0.0)

    def test_velocity_must_enter_domain(self):
        with pytest.raises(ValueError):
            boundary_layer_problem(velocity=(-1.0, 0.0))


class TestUpwindRobustness:
    def test_solution_monotone_bounded(self, solved):
        """Upwind keeps the advection-dominated solution within the
        data range: no oscillations, no overshoot."""
        _, _, result = solved
        assert result.solution.min() >= -1e-10
        assert result.solution.max() <= 1.0 + 1e-10

    def test_plume_travels_downstream(self, solved):
        """The inflow profile is carried in +x: interior values near the
        inflow exceed those near the outflow early in the transient."""
        problem, grid, _ = solved
        early = subsolve(problem, grid, tol=1e-3, t_end=0.3)
        mid = grid.ny // 2
        upstream = early.solution[2, mid]
        downstream = early.solution[-3, mid]
        assert upstream > downstream

    def test_steady_state_reached(self, solved):
        """By t_end the transient has settled: integrating longer
        changes almost nothing."""
        problem, grid, result = solved
        longer = subsolve(problem, grid, tol=1e-3, t_end=2.5)
        assert np.max(np.abs(longer.solution - result.solution)) < 0.02

    def test_central_scheme_oscillates_where_upwind_does_not(self):
        """The textbook contrast on a coarse, strongly advective grid:
        central differencing undershoots below the data range."""
        problem = boundary_layer_problem(diffusion=1e-3)
        grid = Grid(2, 2, 2)
        up = subsolve(problem, grid, tol=1e-3, scheme="upwind")
        ce = subsolve(problem, grid, tol=1e-3, scheme="central")
        assert up.solution.min() >= -1e-8
        assert ce.solution.min() < up.solution.min() - 1e-4

    def test_adaptive_steps_grow_into_steady_state(self):
        """The stiff transient then quiet tail: the controller's final
        step is much larger than its smallest."""
        problem = boundary_layer_problem()
        result = subsolve(problem, Grid(2, 3, 3), tol=1e-3, record_history=True)
        history = result.stats.h_history
        assert history[-1] > 5 * min(history)
