"""Plain-text rendering of tables and plots for the benchmark harness."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["render_table", "render_log_plot", "render_linear_plot"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """A padded, pipe-separated text table."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0.00"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def _plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    transform,
    *,
    width: int,
    height: int,
    title: str,
    ylabel: str,
) -> str:
    """Shared scatter-plot renderer; ``transform`` maps y to plot space."""
    markers = "o+x*#@%&"
    points: list[tuple[float, float, str]] = []
    for idx, (name, ys) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for xv, yv in zip(x, ys):
            ty = transform(yv)
            if ty is not None:
                points.append((float(xv), ty, marker))
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for xv, yv, marker in points:
        col = int((xv - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yv - y_lo) / y_span * (height - 1))
        canvas[row][col] = marker
    lines = [title]
    for idx, (name, _) in enumerate(series.items()):
        lines.append(f"  {markers[idx % len(markers)]} = {name}")
    lines.append(f"{ylabel} (top={_fmt(_untransform_label(y_hi, transform))}, "
                 f"bottom={_fmt(_untransform_label(y_lo, transform))})")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x: {x_lo:g} .. {x_hi:g}")
    return "\n".join(lines)


def _untransform_label(value: float, transform) -> float:
    # log plots transform with log10; recover the label value
    if getattr(transform, "_is_log", False):
        return 10.0 ** value
    return value


def render_log_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 20,
    title: str = "",
    ylabel: str = "y (log scale)",
) -> str:
    """Semilog-y scatter plot ("Because of the wide range ... we use the
    logarithmic scale in Figures 2 and 4")."""

    def transform(y: float):
        return math.log10(y) if y > 0 else None

    transform._is_log = True  # type: ignore[attr-defined]
    return _plot(x, series, transform, width=width, height=height, title=title, ylabel=ylabel)


def render_linear_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 20,
    title: str = "",
    ylabel: str = "y",
) -> str:
    """Linear-scale scatter plot (Figures 3 and 5)."""
    return _plot(
        x, series, lambda y: y, width=width, height=height, title=title, ylabel=ylabel
    )
