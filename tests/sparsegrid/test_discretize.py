"""Spatial operators: consistency, boundary coupling, schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import Grid, inhomogeneous_problem, manufactured_problem
from repro.sparsegrid.discretize import SpatialOperator


class TestStructure:
    def test_operator_shapes(self):
        grid = Grid(2, 1, 0)
        op = SpatialOperator(grid, manufactured_problem())
        n_int = grid.n_interior
        n_bnd = grid.n_nodes - n_int
        assert op.J.shape == (n_int, n_int)
        assert op.C.shape == (n_int, n_bnd)

    def test_index_partition_complete(self):
        grid = Grid(2, 0, 1)
        op = SpatialOperator(grid, manufactured_problem())
        all_idx = np.sort(np.concatenate([op.interior_idx, op.boundary_idx]))
        assert np.array_equal(all_idx, np.arange(grid.n_nodes))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            SpatialOperator(Grid(2, 0, 0), manufactured_problem(), scheme="magic")

    def test_assembly_time_recorded(self):
        op = SpatialOperator(Grid(2, 1, 1), manufactured_problem())
        assert op.assembly_seconds > 0

    def test_nnz_positive(self):
        op = SpatialOperator(Grid(2, 1, 1), manufactured_problem())
        assert op.nnz > 0


class TestConsistency:
    """Apply the discrete operator to the exact solution: the residual
    against the exact time derivative must shrink with refinement."""

    def truncation_error(self, problem, level, scheme):
        grid = Grid(2, level, level)
        op = SpatialOperator(grid, problem, scheme=scheme)
        t = 0.1
        xx, yy = grid.meshgrid()
        u_full = problem.exact(xx, yy, t)
        u_int = op.interior_of(u_full)
        # exact du/dt at interior nodes
        eps = 1e-6
        dudt = (
            problem.exact(xx, yy, t + eps) - problem.exact(xx, yy, t - eps)
        ) / (2 * eps)
        dudt_int = op.interior_of(dudt)
        residual = op.rhs(u_int, t) - dudt_int
        return float(np.max(np.abs(residual)))

    def test_upwind_first_order(self):
        problem = manufactured_problem(diffusion=0.05)
        errors = [self.truncation_error(problem, lvl, "upwind") for lvl in (1, 2, 3)]
        # halving h should roughly halve the upwind truncation error
        assert errors[1] < 0.7 * errors[0]
        assert errors[2] < 0.7 * errors[1]

    def test_central_second_order(self):
        problem = manufactured_problem(diffusion=0.05)
        errors = [self.truncation_error(problem, lvl, "central") for lvl in (1, 2, 3)]
        assert errors[1] < 0.35 * errors[0]
        assert errors[2] < 0.35 * errors[1]

    def test_central_more_accurate_than_upwind(self):
        problem = manufactured_problem(diffusion=0.05)
        up = self.truncation_error(problem, 3, "upwind")
        ce = self.truncation_error(problem, 3, "central")
        assert ce < up

    def test_anisotropic_grid_consistent(self):
        problem = manufactured_problem(diffusion=0.05)
        grid = Grid(2, 3, 0)
        op = SpatialOperator(grid, problem)
        xx, yy = grid.meshgrid()
        t = 0.1
        u_int = op.interior_of(problem.exact(xx, yy, t))
        eps = 1e-6
        dudt = op.interior_of(
            (problem.exact(xx, yy, t + eps) - problem.exact(xx, yy, t - eps))
            / (2 * eps)
        )
        residual = op.rhs(u_int, t) - dudt
        # consistency in the coarse (y) direction bounds the error
        assert np.max(np.abs(residual)) < 2.0


class TestBoundaryCoupling:
    def test_inhomogeneous_boundary_enters_forcing(self):
        problem = inhomogeneous_problem()
        op = SpatialOperator(Grid(2, 1, 1), problem)
        f_with = op.forcing(0.0)
        assert np.any(np.abs(op.C @ op.boundary_values(0.0)) > 0)
        assert np.linalg.norm(f_with) > 0

    def test_homogeneous_boundary_gives_zero_coupling(self):
        problem = manufactured_problem()
        op = SpatialOperator(Grid(2, 1, 1), problem)
        assert np.allclose(op.C @ op.boundary_values(0.3), 0.0)

    def test_full_solution_roundtrip(self):
        problem = inhomogeneous_problem()
        grid = Grid(2, 1, 2)
        op = SpatialOperator(grid, problem)
        u_int = np.arange(grid.n_interior, dtype=float)
        full = op.full_solution(u_int, t=0.2)
        assert full.shape == grid.shape
        assert np.array_equal(op.interior_of(full), u_int)

    def test_full_solution_boundary_values(self):
        problem = inhomogeneous_problem()
        grid = Grid(2, 1, 1)
        op = SpatialOperator(grid, problem)
        t = 0.4
        full = op.full_solution(np.zeros(grid.n_interior), t)
        xx, yy = grid.meshgrid()
        exact_boundary = problem.boundary(xx, yy, t)
        assert np.allclose(full[0, :], exact_boundary[0, :])
        assert np.allclose(full[-1, :], exact_boundary[-1, :])
        assert np.allclose(full[:, 0], exact_boundary[:, 0])
        assert np.allclose(full[:, -1], exact_boundary[:, -1])

    def test_initial_interior_matches_problem(self):
        problem = manufactured_problem()
        grid = Grid(2, 1, 1)
        op = SpatialOperator(grid, problem)
        xx, yy = grid.interior_meshgrid()
        assert np.allclose(
            op.initial_interior(), problem.initial(xx, yy).reshape(-1)
        )


class TestUpwindDirection:
    def test_upwind_follows_velocity_sign(self):
        """For pure advection with a > 0, the upwind operator uses the
        left neighbour: the row for node i has a negative coefficient on
        i-1 in x."""
        import scipy.sparse as sp

        from repro.sparsegrid.problem import AdvectionDiffusionProblem

        problem = AdvectionDiffusionProblem(
            name="pure-advection",
            velocity_x=lambda x, y: np.ones(np.broadcast(x, y).shape),
            velocity_y=lambda x, y: np.zeros(np.broadcast(x, y).shape),
            diffusion=0.0,
            initial=lambda x, y: np.zeros(np.broadcast(x, y).shape),
            boundary=lambda x, y, t: np.zeros(np.broadcast(x, y).shape),
        )
        grid = Grid(2, 0, 0)
        op = SpatialOperator(grid, problem, scheme="upwind")
        J = op.J.toarray()
        ny_int = grid.ny - 1
        # interior node (i, j) couples to (i-1, j): offset -ny_int
        diag_lower = np.diagonal(J, -ny_int)
        assert np.all(diag_lower >= 0)  # -a * (-1/h) > 0 on the left neighbour
        assert np.all(np.diagonal(J) <= 0)
