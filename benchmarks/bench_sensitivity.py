"""Robustness of the reproduction: sensitivity to the modelled constants.

Every 2003-era constant in the simulator is halved and doubled in turn;
the bench prints the elasticity of the level-15 concurrent time to each
and asserts the paper's qualitative conclusions survive the sweep:

* the speedup at level 15 stays decisively above 1 under every single
  perturbation;
* the crossover level stays inside the 8..13 band;
* no single knob dominates ct proportionally (all elasticities < 0.8) —
  i.e. the shape does not hang on one guessed number.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import MultiUserNoise, SimulationParams, paper_cluster
from repro.cluster.simulator import simulate_distributed, simulate_sequential
from repro.harness.sensitivity import KNOBS, render_sensitivity, sweep_sensitivity

LEVEL, TOL = 15, 1.0e-3


@pytest.mark.benchmark(group="sensitivity")
def test_elasticities(benchmark, cost_model):
    results = benchmark.pedantic(
        lambda: sweep_sensitivity(cost_model, LEVEL, TOL), rounds=2, iterations=1
    )
    print()
    print(render_sensitivity(results, f"Sensitivity at level {LEVEL}, tol {TOL:g}"))
    for result in results:
        assert abs(result.elasticity) < 0.8, (result.knob, result.elasticity)
        # sign check only above the noise band: a near-zero knob can dip
        # marginally negative through discrete reordering of transfers
        if abs(result.elasticity) > 0.01:
            expected_sign = -1.0 if result.knob == "bandwidth_mbps" else 1.0
            assert result.elasticity * expected_sign > 0.0, (
                result.knob, result.elasticity
            )
    # the per-worker constants matter more than the one-off startup
    by_name = {r.knob: r for r in results}
    assert by_name["fork_seconds"].elasticity > by_name["startup_seconds"].elasticity
    # the raw event latency is negligible against everything else
    assert by_name["event_latency_seconds"].elasticity < 0.05


@pytest.mark.benchmark(group="sensitivity")
def test_speedup_conclusion_survives_every_knob(benchmark, cost_model):
    """Halve/double every constant: su(15) stays decisively above 1."""
    costs = cost_model.level_costs(LEVEL, TOL)
    prol = cost_model.prolongation_seconds(LEVEL)
    base = SimulationParams(noise=MultiUserNoise.quiet())
    cluster = paper_cluster()
    st = simulate_sequential(
        costs, cluster[0], base, np.random.default_rng(0),
        prolongation_ref_seconds=prol,
    ).elapsed_seconds

    def sweep():
        sus = {}
        for knob in KNOBS:
            for factor in (0.5, 2.0):
                params = knob.apply(base, factor)
                ct = simulate_distributed(
                    [costs], cluster, params, np.random.default_rng(0),
                    master_prolongation_ref_seconds=prol,
                ).elapsed_seconds
                sus[(knob.name, factor)] = st / ct
        return sus

    sus = benchmark.pedantic(sweep, rounds=2, iterations=1)
    print()
    for (knob, factor), su in sorted(sus.items()):
        print(f"  {knob} x{factor}: su(15) = {su:.1f}")
    assert all(su > 3.0 for su in sus.values()), sus


@pytest.mark.benchmark(group="sensitivity")
def test_crossover_band_survives_pessimistic_constants(benchmark, cost_model):
    """Even with every overhead doubled at once, the crossover stays
    below level 14 — the 'restructuring pays at scale' conclusion is
    not an artifact of optimistic constants."""
    base = SimulationParams(noise=MultiUserNoise.quiet())
    pessimistic = dataclasses.replace(
        base,
        startup_seconds=base.startup_seconds * 2,
        fork_seconds=base.fork_seconds * 2,
        handshake_seconds=base.handshake_seconds * 2,
        event_latency_seconds=base.event_latency_seconds * 2,
    )
    cluster = paper_cluster()

    def crossover(params) -> int:
        for level in range(6, 16):
            costs = cost_model.level_costs(level, TOL)
            prol = cost_model.prolongation_seconds(level)
            st = simulate_sequential(
                costs, cluster[0], params, np.random.default_rng(0),
                prolongation_ref_seconds=prol,
            ).elapsed_seconds
            ct = simulate_distributed(
                [costs], cluster, params, np.random.default_rng(0),
                master_prolongation_ref_seconds=prol,
            ).elapsed_seconds
            if st / ct >= 1.0:
                return level
        return 99

    levels = benchmark.pedantic(
        lambda: (crossover(base), crossover(pessimistic)), rounds=2, iterations=1
    )
    optimistic_level, pessimistic_level = levels
    print(f"\ncrossover: base constants level {optimistic_level}, "
          f"all-overheads-doubled level {pessimistic_level} (paper: 10)")
    assert 8 <= optimistic_level <= 13
    assert optimistic_level <= pessimistic_level <= 14
