"""Streams — the asynchronous channels of MANIFOLD.

A stream connects the output port of one process (its *source*) to the
input port of another (its *sink*).  It is an unbounded FIFO buffer.

The subtlety the paper leans on is the *dismantling* behaviour when the
coordinator state that created a stream is preempted.  Each stream end
is either **B**reak or **K**eep:

* ``BK`` (the default): on dismantling the stream is *broken at its
  source* — the producer can no longer write into it — but *kept at its
  sink*: units already in transit remain deliverable.  Once drained, a
  source-broken stream disappears from the sink port.
* ``KK``: both ends survive preemption.  The protocol declares the
  worker→master.dataport connection ``KK`` so a remote worker's results
  still reach the master after the coordinator has moved on to creating
  the next worker.
* ``BB`` and ``KB`` complete the matrix for generality: a ``*B`` stream
  is also disconnected from its consumer on dismantling, discarding any
  units in transit.

Streams are created and wired exclusively by the coordination layer;
computation processes never touch them.
"""

from __future__ import annotations

import enum
import itertools
import threading
from collections import deque
from typing import TYPE_CHECKING, Optional

from .errors import StreamError
from .units import Unit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .ports import Port

__all__ = ["StreamType", "Stream"]


class StreamType(enum.Enum):
    """Dismantling behaviour: (source end, sink end), B=Break, K=Keep."""

    BK = "BK"
    KK = "KK"
    BB = "BB"
    KB = "KB"

    @property
    def breaks_source(self) -> bool:
        return self.value[0] == "B"

    @property
    def breaks_sink(self) -> bool:
        return self.value[1] == "B"


_stream_counter = itertools.count()


class Stream:
    """A FIFO channel between a source (output) port and a sink (input) port."""

    def __init__(self, type: StreamType = StreamType.BK, name: str = "") -> None:
        self.type = type
        self.id = next(_stream_counter)
        self.name = name or f"stream#{self.id}"
        self._lock = threading.Lock()
        self._buffer: deque[Unit] = deque()
        self._source: Optional["Port"] = None
        self._sink: Optional["Port"] = None
        self._source_broken = False
        self._sink_broken = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def connect(self, source: "Port", sink: "Port") -> "Stream":
        """Attach both ends; returns self for chaining."""
        from .ports import PortDirection

        if source.direction is not PortDirection.OUT:
            raise StreamError(f"stream source must be an output port, got {source!r}")
        if sink.direction is not PortDirection.IN:
            raise StreamError(f"stream sink must be an input port, got {sink!r}")
        with self._lock:
            if self._source is not None or self._sink is not None:
                raise StreamError(f"{self.name} is already connected")
            self._source = source
            self._sink = sink
        source.attach(self)
        sink.attach(self)
        return self

    @classmethod
    def literal(
        cls,
        payload: object,
        sink: "Port",
        type: StreamType = StreamType.BK,
        name: str = "",
    ) -> "Stream":
        """A one-shot stream delivering a single literal unit to ``sink``.

        This realizes MANIFOLD's ``value -> p`` form — in the protocol,
        ``&worker -> master`` sends the worker's process reference to the
        master.  The stream is born with the unit buffered and its source
        side already broken, so it disappears once the unit is read.
        """
        from .ports import PortDirection

        if sink.direction is not PortDirection.IN:
            raise StreamError(f"literal stream sink must be an input port, got {sink!r}")
        stream = cls(type, name=name or "literal")
        stream._sink = sink
        stream._buffer.append(Unit(payload))
        stream._source_broken = True
        sink.attach(stream)
        return stream

    @property
    def source(self) -> Optional["Port"]:
        return self._source

    @property
    def sink(self) -> Optional["Port"]:
        return self._sink

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def accepts_input(self) -> bool:
        """True while the producer may still push units."""
        with self._lock:
            return (
                self._source is not None
                and not self._source_broken
                and not self._sink_broken
            )

    def push(self, unit: Unit) -> None:
        with self._lock:
            if self._source_broken:
                raise StreamError(f"{self.name} is broken at its source")
            if self._sink_broken:
                raise StreamError(f"{self.name} is broken at its sink")
            self._buffer.append(unit)
            sink = self._sink
        if sink is not None:
            sink.notify()

    def peek_seq(self) -> Optional[int]:
        """Sequence number of the next deliverable unit, or ``None``."""
        with self._lock:
            if self._sink_broken or not self._buffer:
                return None
            return self._buffer[0].seq

    def pop(self) -> Unit:
        with self._lock:
            if not self._buffer:
                raise StreamError(f"{self.name} has no unit to deliver")
            return self._buffer.popleft()

    def pending(self) -> int:
        with self._lock:
            return 0 if self._sink_broken else len(self._buffer)

    def is_dead(self) -> bool:
        """True when the stream can never deliver another unit."""
        with self._lock:
            if self._sink_broken:
                return True
            return self._source_broken and not self._buffer

    # ------------------------------------------------------------------
    # dismantling
    # ------------------------------------------------------------------
    def dismantle(self) -> None:
        """Apply this stream's type-specific dismantling rule.

        Called by the state machinery when the coordinator state that
        set up the connection is preempted.  ``K`` ends are untouched.
        """
        if self.type.breaks_source:
            self.break_source()
        if self.type.breaks_sink:
            self.break_sink()

    def break_source(self) -> None:
        """Disconnect from the producer; in-transit units stay deliverable."""
        with self._lock:
            if self._source_broken:
                return
            self._source_broken = True
            source, sink = self._source, self._sink
        if source is not None:
            source.detach(self)
        if sink is not None:
            # Wake the reader: a drained source-broken stream is dead and
            # must not keep a reader waiting on it.
            sink.notify()

    def break_sink(self) -> None:
        """Disconnect from the consumer; in-transit units are discarded."""
        with self._lock:
            if self._sink_broken:
                return
            self._sink_broken = True
            self._buffer.clear()
            sink = self._sink
        if sink is not None:
            sink.detach(self)

    def break_both(self) -> None:
        self.break_source()
        self.break_sink()

    @property
    def source_broken(self) -> bool:
        with self._lock:
            return self._source_broken

    @property
    def sink_broken(self) -> bool:
        with self._lock:
            return self._sink_broken

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        src = self._source and f"{self._source.owner.name}.{self._source.name}"
        snk = self._sink and f"{self._sink.owner.name}.{self._sink.name}"
        return f"Stream({self.name}:{self.type.value} {src} -> {snk})"
