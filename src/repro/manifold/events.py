"""Events and per-process event memory.

In the IWIM model a process raises *events* into the environment; every
process that can observe the source receives an *event occurrence* — the
pair ``(event, source)`` — in its private *event memory*.  A coordinator
reacts to occurrences by preempting its current state and transitioning
to a state whose label matches.

This module implements:

* :class:`Event` — an interned event name.
* :class:`EventOccurrence` — an event together with the process that
  raised it.
* :class:`EventMemory` — the thread-safe occurrence store owned by each
  coordinator process, supporting the declarative statements the paper's
  protocol uses: ``save`` (retain unmatched occurrences), ``ignore``
  (drop named occurrences on block exit) and ``priority`` (order the
  choice among simultaneously available occurrences).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from .errors import EventError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import ProcessBase

__all__ = [
    "Event",
    "EventOccurrence",
    "EventMemory",
    "BEGIN",
    "END",
]


class Event:
    """An event name.

    Events are interned: constructing two events with the same name in
    the same namespace yields objects that compare (and hash) equal, so
    the protocol source and the worker wrappers can both say
    ``Event("death_worker")`` and mean the same thing.  Distinct *local*
    events (such as the ``death_worker`` event declared locally in
    ``Create_Worker_Pool``) are created with :meth:`local`, which gives
    the event a unique namespace.
    """

    __slots__ = ("name", "namespace")

    _local_counter = itertools.count()

    def __init__(self, name: str, namespace: str = "") -> None:
        if not name or not isinstance(name, str):
            raise EventError(f"event name must be a non-empty string, got {name!r}")
        self.name = name
        self.namespace = namespace

    @classmethod
    def local(cls, name: str) -> "Event":
        """Create a fresh event distinct from any other event of the same name."""
        return cls(name, namespace=f"local#{next(cls._local_counter)}")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Event)
            and self.name == other.name
            and self.namespace == other.namespace
        )

    def __hash__(self) -> int:
        return hash((self.name, self.namespace))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.namespace:
            return f"Event({self.name!r}@{self.namespace})"
        return f"Event({self.name!r})"


#: The predefined high-priority event posted automatically on block entry.
BEGIN = Event("begin")
#: The conventional terminal event used by several built-in blocks.
END = Event("end")


@dataclass(frozen=True)
class EventOccurrence:
    """An event together with the process instance that raised it.

    ``source`` is ``None`` for occurrences posted by the runtime itself
    (notably the automatic ``begin`` posting on block entry) and for
    self-posted transitions (``post(...)`` in the paper's notation).
    """

    event: Event
    source: Optional["ProcessBase"] = None
    seq: int = field(default_factory=itertools.count().__next__, compare=False)

    def matches(self, event: Event, source: Optional["ProcessBase"] = None) -> bool:
        """True when this occurrence matches a state label.

        A label may constrain just the event, or the ``event.source``
        pair (MANIFOLD's ``e.p`` label form).
        """
        if self.event != event:
            return False
        if source is not None and self.source is not source:
            return False
        return True


class EventMemory:
    """Thread-safe store of event occurrences for one coordinator.

    The memory is a FIFO multiset: occurrences are recorded in arrival
    order; when several occurrences can preempt the current state, the
    coordinator picks the one whose label has the highest declared
    priority, breaking ties by arrival order (matching the paper's
    ``priority create_worker > rendezvous`` declaration).
    """

    def __init__(self, owner_name: str = "?") -> None:
        self._owner_name = owner_name
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._occurrences: list[EventOccurrence] = []
        self._closed = False

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def deliver(self, occurrence: EventOccurrence) -> None:
        """Record an occurrence (called when an observed process raises)."""
        with self._cond:
            if self._closed:
                return
            self._occurrences.append(occurrence)
            self._cond.notify_all()

    def post(self, event: Event, source: Optional["ProcessBase"] = None) -> None:
        """Post an occurrence directly (MANIFOLD's ``post`` primitive)."""
        self.deliver(EventOccurrence(event, source))

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def snapshot(self) -> list[EventOccurrence]:
        """A copy of the pending occurrences, in arrival order."""
        with self._lock:
            return list(self._occurrences)

    def __len__(self) -> int:
        with self._lock:
            return len(self._occurrences)

    def take_match(
        self,
        matcher: Callable[[EventOccurrence], Optional[int]],
    ) -> Optional[EventOccurrence]:
        """Remove and return the best pending occurrence, if any.

        ``matcher`` maps an occurrence to a priority rank (higher wins)
        or ``None`` when the occurrence does not match any label.  Among
        equal ranks the earliest arrival wins.
        """
        with self._lock:
            best: Optional[EventOccurrence] = None
            best_rank = None
            for occ in self._occurrences:
                rank = matcher(occ)
                if rank is None:
                    continue
                if best_rank is None or rank > best_rank:
                    best, best_rank = occ, rank
            if best is not None:
                self._occurrences.remove(best)
            return best

    def wait_for_match(
        self,
        matcher: Callable[[EventOccurrence], Optional[int]],
        timeout: Optional[float] = None,
        extra_predicate: Optional[Callable[[], bool]] = None,
    ) -> Optional[EventOccurrence]:
        """Block until a matching occurrence arrives (or return ``None``).

        ``extra_predicate``, when given, also wakes the waiter; this is
        how blocking primitives such as ``terminated(p)`` share the wait:
        the call returns ``None`` when the predicate fired first.
        """
        deadline = None if timeout is None else threading.TIMEOUT_MAX
        with self._cond:
            while True:
                best = self._take_match_locked(matcher)
                if best is not None:
                    return best
                if extra_predicate is not None and extra_predicate():
                    return None
                if self._closed:
                    return None
                if not self._cond.wait(timeout if timeout is not None else deadline):
                    if timeout is not None:
                        return None

    def _take_match_locked(
        self, matcher: Callable[[EventOccurrence], Optional[int]]
    ) -> Optional[EventOccurrence]:
        best: Optional[EventOccurrence] = None
        best_rank = None
        for occ in self._occurrences:
            rank = matcher(occ)
            if rank is None:
                continue
            if best_rank is None or rank > best_rank:
                best, best_rank = occ, rank
        if best is not None:
            self._occurrences.remove(best)
        return best

    def notify(self) -> None:
        """Wake any waiter so it can re-evaluate its extra predicate."""
        with self._cond:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # block-scope maintenance
    # ------------------------------------------------------------------
    def discard(self, events: Iterable[Event]) -> int:
        """Drop all pending occurrences of the given events.

        Implements the ``ignore death`` declarative statement: death
        occurrences are removed from memory on departure from the block.
        Returns the number of occurrences dropped.
        """
        targets = set(events)
        with self._lock:
            before = len(self._occurrences)
            self._occurrences = [
                occ for occ in self._occurrences if occ.event not in targets
            ]
            return before - len(self._occurrences)

    def discard_where(
        self, predicate: Callable[[EventOccurrence], bool]
    ) -> int:
        """Drop all pending occurrences satisfying ``predicate``."""
        with self._lock:
            before = len(self._occurrences)
            self._occurrences = [
                occ for occ in self._occurrences if not predicate(occ)
            ]
            return before - len(self._occurrences)

    def close(self) -> None:
        """Shut the memory down; pending and future waiters return ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventMemory({self._owner_name}, pending={len(self)})"
