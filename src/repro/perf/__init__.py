"""Performance modelling and measurement.

* :mod:`costmodel` — measures real ``subsolve`` costs at calibration
  levels and fits an extrapolating model, so Table-1-scale sweeps
  (level 15 ~ half an hour of 2003 CPU time *per run*) stay tractable;
* :mod:`timing` — wall-clock measurement with n-run averaging (the
  paper's five-run ``/bin/time`` protocol);
* :mod:`metrics` — speedup and machine-usage summary statistics;
* :mod:`overhead` — the §7 overhead decomposition (multi-user effects,
  concurrency overhead, coordination-layer overhead).
"""

from .bridge import costs_from_run, records_from_run, replay_on_cluster
from .costmodel import CostModel, CostRecord, measure_costs
from .metrics import RunStatistics, speedup, summarize_runs
from .overhead import OverheadReport, decompose_run
from .timing import TimingResult, time_callable

__all__ = [
    "CostModel",
    "CostRecord",
    "OverheadReport",
    "RunStatistics",
    "TimingResult",
    "costs_from_run",
    "decompose_run",
    "measure_costs",
    "records_from_run",
    "replay_on_cluster",
    "speedup",
    "summarize_runs",
    "time_callable",
]
