"""Shared benchmark fixtures.

The cost model is calibrated once against the real solver (levels 4-6,
both tolerances) and cached to ``benchmarks/.calibration.json`` so
repeated benchmark invocations skip the ~10 s of measurement.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import Table1Experiment
from repro.perf.costmodel import CostModel, measure_costs

CACHE = Path(__file__).parent / ".calibration.json"
CALIBRATION_LEVELS = [4, 5, 6]
TOLS = [1.0e-3, 1.0e-4]

#: ``REPRO_WARM_PATH_FULL=1`` switches bench_warm_path from the fast
#: smoke mode (default, runs inside the tier-1 suite so the cold/warm
#: ratio lands in every bench JSON trajectory) to the full measurement.
WARM_PATH_FULL = os.environ.get("REPRO_WARM_PATH_FULL", "") not in ("", "0")

#: ``REPRO_FAULT_RECOVERY_FULL=1`` switches bench_fault_recovery from
#: the fast smoke mode to a bigger level and more rounds.
FAULT_RECOVERY_FULL = os.environ.get(
    "REPRO_FAULT_RECOVERY_FULL", ""
) not in ("", "0")

#: ``REPRO_DATA_PLANE_FULL=1`` switches bench_data_plane from the fast
#: smoke mode to a bigger level and more rounds.
DATA_PLANE_FULL = os.environ.get("REPRO_DATA_PLANE_FULL", "") not in ("", "0")

#: ``REPRO_SOCKET_ENGINE_FULL=1`` switches bench_socket_engine from the
#: fast smoke mode to a bigger level and more rounds.
SOCKET_ENGINE_FULL = os.environ.get(
    "REPRO_SOCKET_ENGINE_FULL", ""
) not in ("", "0")


@pytest.fixture(scope="session")
def warm_path_settings() -> dict:
    """Configuration of the warm-path bench: mid-size level either way,
    the full mode just runs more rounds and a tighter makespan tol."""
    if WARM_PATH_FULL:
        return {
            "full": True,
            "level": 5, "tol": 1.0e-3,
            "cold_rounds": 3, "warm_rounds": 5,
            "makespan_level": 6, "makespan_tol": 1.0e-4,
            "makespan_workers": 8,
        }
    return {
        "full": False,
        "level": 5, "tol": 1.0e-3,
        "cold_rounds": 2, "warm_rounds": 3,
        "makespan_level": 6, "makespan_tol": 1.0e-3,
        "makespan_workers": 8,
    }


@pytest.fixture(scope="session")
def fault_recovery_settings() -> dict:
    """Configuration of the fault-recovery bench: one seeded worker
    kill, recovery priced against the fault-free wall time."""
    if FAULT_RECOVERY_FULL:
        return {
            "full": True,
            "level": 5, "tol": 1.0e-3, "processes": 2,
            "rounds": 3, "fault": "crash@2,3",
        }
    return {
        "full": False,
        "level": 3, "tol": 1.0e-3, "processes": 2,
        "rounds": 2, "fault": "crash@1,2",
    }


@pytest.fixture(scope="session")
def data_plane_settings() -> dict:
    """Configuration of the data-plane bench: per-payload transport at
    the issue's level-5 floor either way, the full mode runs the
    end-to-end comparison at level 6 with more rounds."""
    if DATA_PLANE_FULL:
        return {
            "full": True,
            "payload_root": 6, "payload_level": 6,
            "run_level": 6, "tol": 1.0e-4,
            "transport_rounds": 30, "run_rounds": 5,
        }
    return {
        "full": False,
        "payload_root": 6, "payload_level": 5,
        "run_level": 5, "tol": 1.0e-3,
        "transport_rounds": 10, "run_rounds": 3,
    }


@pytest.fixture(scope="session")
def socket_engine_settings() -> dict:
    """Configuration of the socket-engine bench: daemons over loopback
    TCP against the in-process fork pool at the same level."""
    if SOCKET_ENGINE_FULL:
        return {
            "full": True,
            "level": 5, "tol": 1.0e-3, "processes": 2,
            "rounds": 3,
        }
    return {
        "full": False,
        "level": 3, "tol": 1.0e-3, "processes": 2,
        "rounds": 2,
    }


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    if CACHE.exists():
        try:
            return CostModel.from_json(CACHE)
        except (KeyError, ValueError):
            CACHE.unlink()
    records = measure_costs(
        "rotating-cone", root=2, levels=CALIBRATION_LEVELS, tols=TOLS,
        repeats=2,
    )
    model = CostModel.fit(records, root=2)
    model.to_json(CACHE)
    return model


@pytest.fixture(scope="session")
def experiment(cost_model) -> Table1Experiment:
    """The paper-configuration experiment: 32-host heterogeneous
    cluster, multi-user noise, 5-run averages."""
    return Table1Experiment(cost_model, runs=5, seed=20040101)


@pytest.fixture(scope="session")
def table1_rows(experiment):
    """The full Table 1 sweep, shared by the table and figure benches."""
    return experiment.run_all(levels=range(16), tols=(1.0e-3, 1.0e-4))
