"""The calibrated cost model for ``subsolve`` and the prolongation.

The Table-1 sweep covers levels 0..15 at two tolerances, five runs
each, sequential *and* concurrent — at level 15 a single sequential run
took the authors ~2000-4000 s.  Re-running that for real is neither
possible in a benchmark harness nor necessary: the timing *structure*
is what matters.  We therefore

1. **measure** real ``subsolve`` wall times *and solver counters* on
   every grid of the calibration levels (both tolerances) with the
   actual solver;
2. **fit** the linear-solve count ``S`` with a log-linear model
   ``log S = s0 + s1*(l+m) + s2*|l-m| + s3*log10(1/tol)`` — counts are
   exact integers, so this regression is noise-free and captures how
   the adaptive controller reacts to refinement, anisotropy and
   tolerance;
3. **fit** the wall time with the physically-structured form
   ``w = gamma + beta*N + alpha*N*S`` (``N`` = interior unknowns):
   ``gamma`` is the per-call constant, ``beta*N`` the assembly cost,
   ``alpha*N*S`` the time-stepping cost that dominates at scale;
4. **extrapolate** to the full sweep, preferring exact measurements
   wherever they exist.

Fit quality (R^2, holdout error) is checked by the test suite.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.cluster.simulator import GridCost
from repro.sparsegrid.grid import Grid, nested_loop_grids
from repro.sparsegrid.registry import make_problem
from repro.sparsegrid.subsolve import subsolve

__all__ = ["CalibrationError", "CostRecord", "CostModel", "measure_costs"]


class CalibrationError(ValueError):
    """The calibration data cannot support a usable wall-time fit.

    A ``ValueError`` subclass so existing guards keep working; carries
    the counts a caller needs to react usefully — how many records were
    supplied, how many cleared the noise floor, and the floor itself —
    instead of forcing them to parse the message.
    """

    def __init__(
        self,
        message: str,
        *,
        n_records: int = 0,
        n_usable: int = 0,
        noise_floor_seconds: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.n_records = n_records
        self.n_usable = n_usable
        self.noise_floor_seconds = noise_floor_seconds


@dataclass(frozen=True)
class CostRecord:
    """One measured ``subsolve`` execution.

    ``split_k`` records how many strips the solve was sharded into
    (1 = the unsplit direct solve).  ``solves`` is *system-level* on
    both paths — one Rosenbrock stage counts once however many strips
    it touched, and the strip slices together with the interface rows
    partition the interior exactly — so a split record carries the same
    work measure as an unsplit record of the identical grid: nothing is
    double-counted.  Only the *wall time* differs, which is why the
    wall regression in :meth:`CostModel.fit` uses unsplit records only.
    """

    l: int
    m: int
    tol: float
    wall_seconds: float
    solves: int
    steps_accepted: int
    n_interior: int
    split_k: int = 1

    @property
    def log_wall(self) -> float:
        return math.log(self.wall_seconds)


def measure_costs(
    problem_name: str,
    root: int,
    levels: Sequence[int],
    tols: Sequence[float],
    *,
    problem_kwargs: Optional[dict] = None,
    t_end: Optional[float] = None,
    repeats: int = 1,
) -> list[CostRecord]:
    """Run the real solver on every grid of the given levels/tolerances.

    With ``repeats > 1`` each grid is solved that many times and the
    fastest wall time kept: the minimum is the standard load-robust
    estimator for wall clocks (background load only ever *adds* time),
    while the solve counts are deterministic across repeats.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    problem = make_problem(problem_name, **(problem_kwargs or {}))
    records: list[CostRecord] = []
    seen: set[tuple[int, int, float]] = set()
    for tol in tols:
        for level in levels:
            for grid in nested_loop_grids(root, level):
                key = (grid.l, grid.m, tol)
                if key in seen:
                    continue
                seen.add(key)
                result = min(
                    (
                        subsolve(problem, grid, tol, t_end=t_end)
                        for _ in range(repeats)
                    ),
                    key=lambda r: r.wall_seconds,
                )
                records.append(
                    CostRecord(
                        l=grid.l,
                        m=grid.m,
                        tol=tol,
                        wall_seconds=result.wall_seconds,
                        solves=result.stats.solves,
                        steps_accepted=result.stats.steps_accepted,
                        n_interior=grid.n_interior,
                    )
                )
    return records


@dataclass
class CostModel:
    """Fitted cost model with exact-measurement pass-through."""

    root: int
    #: (s0, s1, s2, s3) of the log-linear solve-count model
    solve_coefficients: tuple[float, float, float, float]
    #: (gamma, beta, alpha) of ``w = gamma + beta*N + alpha*N*S``
    wall_coefficients: tuple[float, float, float]
    r_squared: float
    solves_r_squared: float
    noise_floor_seconds: float
    measured: dict[tuple[int, int, float], float] = field(default_factory=dict)
    #: prolongation cost per combined target node, per component grid
    prolongation_seconds_per_node_grid: float = 2.0e-8
    #: result-transport throughput per data plane, bytes/second: pickle
    #: pays serialize + pipe + deserialize, shm pays two memcpys (worker
    #: write + nothing on attach, which is a zero-copy map).  Defaults
    #: are conservative single-machine figures; the benchmark
    #: (benchmarks/bench_data_plane.py) measures the real ratio.
    pickle_bytes_per_second: float = 0.8e9
    shm_bytes_per_second: float = 4.0e9
    #: per-payload constant of a transport (pickle protocol overhead
    #: resp. segment attach + checksum page walk)
    transport_latency_seconds: float = 5.0e-5
    #: calibration machine → reference machine scale (1.0: report our
    #: own machine's seconds as "reference seconds"; the shape analysis
    #: is scale-free)
    reference_scale: float = 1.0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        records: Sequence[CostRecord],
        root: int,
        *,
        noise_floor_seconds: float = 5.0e-3,
    ) -> "CostModel":
        """Fit the solve-count and wall-time models.

        Raises :class:`CalibrationError` when the data cannot support a
        usable fit: too few records, too few above the noise floor, or
        a wall-time fit whose ``N*S`` term vanishes even on the
        large-grid subset (see below).
        """
        if len(records) < 8:
            raise CalibrationError(
                f"need >= 8 records to fit, got {len(records)}",
                n_records=len(records),
                noise_floor_seconds=noise_floor_seconds,
            )

        # --- solve-count regression (exact integer data) ---------------
        s_rows = np.array(
            [
                [1.0, r.l + r.m, abs(r.l - r.m), math.log10(1.0 / r.tol)]
                for r in records
            ]
        )
        s_target = np.array([math.log(max(r.solves, 1)) for r in records])
        s_coef, *_ = np.linalg.lstsq(s_rows, s_target, rcond=None)
        s_pred = s_rows @ s_coef
        s_res = float(np.sum((s_target - s_pred) ** 2))
        s_tot = float(np.sum((s_target - s_target.mean()) ** 2))
        solves_r2 = 1.0 - s_res / s_tot if s_tot > 0 else 1.0

        # --- wall-time regression (structured, dominated by large grids)
        # split solves have a different wall-time structure (per-strip
        # factors + interface solve), so they calibrate nothing here:
        # the regression stays load-robust when sharded jobs appear in
        # the feed by fitting unsplit executions only
        usable = [
            r
            for r in records
            if r.wall_seconds >= noise_floor_seconds
            and getattr(r, "split_k", 1) == 1
        ]
        if len(usable) < 4:
            raise CalibrationError(
                f"need >= 4 records above the {noise_floor_seconds}s noise "
                f"floor, got {len(usable)} of {len(records)}",
                n_records=len(records),
                n_usable=len(usable),
                noise_floor_seconds=noise_floor_seconds,
            )
        # non-negative least squares: every structural term is a cost,
        # so the physical constraint is part of the estimation (a plain
        # lstsq-then-clip biases the fit badly on single-tolerance data)
        from scipy.optimize import nnls

        def _nnls_wall(subset: Sequence[CostRecord]):
            rows = np.array(
                [
                    [
                        1.0,
                        float(r.n_interior),
                        float(r.n_interior) * float(r.solves),
                    ]
                    for r in subset
                ]
            )
            target = np.array([r.wall_seconds for r in subset])
            coef, _ = nnls(rows, target)
            return coef, rows, target

        def _degenerate(coef, rows) -> bool:
            # NNLS rarely returns an exact 0.0 — numerical dust like
            # 1e-24 survives — so test whether the N*S term contributes
            # measurably to even the largest grid's predicted time
            return float(coef[2]) * float(rows[:, 2].max()) < 1.0e-9

        w_coef, w_rows, w_target = _nnls_wall(usable)
        if _degenerate(w_coef, w_rows):
            # Degenerate under load: background machine noise inflates
            # the small-grid timings, so NNLS explains everything with
            # the constant and ``beta*N`` terms and zeroes ``alpha`` —
            # leaving a model that cannot extrapolate.  The ``N*S``
            # signal lives in the large grids, where noise is relatively
            # tiny; refit on the top half by unknown count.
            large = sorted(usable, key=lambda r: r.n_interior)
            large = large[len(large) // 2 :]
            if len(large) >= 4:
                coef, rows, target = _nnls_wall(large)
                if not _degenerate(coef, rows):
                    w_coef, w_rows, w_target = coef, rows, target
        if _degenerate(w_coef, w_rows):
            raise CalibrationError(
                "wall-time fit degenerate: the N*S term vanished even on "
                "the large-grid subset; calibrate on larger levels",
                n_records=len(records),
                n_usable=len(usable),
                noise_floor_seconds=noise_floor_seconds,
            )
        # fit quality on the records actually fitted (the large-grid
        # subset, when the refit path was taken)
        w_pred = w_rows @ w_coef
        w_res = float(np.sum((w_target - w_pred) ** 2))
        w_tot = float(np.sum((w_target - w_target.mean()) ** 2))
        r_squared = 1.0 - w_res / w_tot if w_tot > 0 else 1.0

        measured = {
            (r.l, r.m, r.tol): r.wall_seconds
            for r in records
            if getattr(r, "split_k", 1) == 1
        }
        return cls(
            root=root,
            solve_coefficients=tuple(float(c) for c in s_coef),  # type: ignore[arg-type]
            wall_coefficients=tuple(float(c) for c in w_coef),  # type: ignore[arg-type]
            r_squared=r_squared,
            solves_r_squared=solves_r2,
            noise_floor_seconds=noise_floor_seconds,
            measured=measured,
        )

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_solves(self, l: int, m: int, tol: float) -> float:
        """Predicted number of linear solves of one ``subsolve``."""
        s0, s1, s2, s3 = self.solve_coefficients
        return math.exp(
            s0 + s1 * (l + m) + s2 * abs(l - m) + s3 * math.log10(1.0 / tol)
        )

    def predict_seconds(self, l: int, m: int, tol: float) -> float:
        """Model prediction, ignoring any exact measurement."""
        gamma, beta, alpha = self.wall_coefficients
        grid = Grid(self.root, l, m)
        n = float(grid.n_interior)
        s = self.predict_solves(l, m, tol)
        return gamma + beta * n + alpha * n * s

    def predict_split_seconds(
        self, l: int, m: int, tol: float, k: int
    ) -> float:
        """Predicted per-lane critical-path seconds of a ``k``-strip
        split of ``subsolve(l, m)``.

        The fitted wall time splits into overhead (``gamma + beta*N``,
        which the master pays once) and the solve part
        (``alpha*N*S``).  Substructuring divides the solve part across
        ``k`` strips, but not perfectly: the Schur route re-does the
        coupling work as dense GEMVs, so the per-lane share is modeled
        as ``(1.35/k + 0.08)`` of the unsplit solve part — fitted to
        the measured per-stage critical paths on this machine (~0.65 at
        ``k=2``, ~0.44 at ``k=4``).  On top rides the interface cost per
        stage: ``2k`` halo exchanges at the transport latency plus the
        dense interface solve, quadratic in the ``(k-1)``-separator
        interface size.  Floored at a quarter of the unsplit prediction
        — diminishing returns keep any real ``k`` above that.
        """
        from repro.sparsegrid.decompose import StripPlan

        grid = Grid(self.root, l, m)
        base = self.predict_seconds(l, m, tol)
        plan = StripPlan.from_shape(grid.interior_shape, k)
        if plan.k < 2:
            return base
        gamma, beta, alpha = self.wall_coefficients
        n = float(grid.n_interior)
        s = self.predict_solves(l, m, tol)
        solve_part = alpha * n * s
        overhead_part = base - solve_part
        g = float(plan.n_interface)
        lane = overhead_part + solve_part * (1.35 / plan.k + 0.08)
        lane += s * (
            2.0 * plan.k * self.transport_latency_seconds + 2.0e-9 * g * g
        )
        return max(lane, 0.25 * base) * self.reference_scale

    def plan_split(
        self,
        level: int,
        tol: float,
        *,
        n_workers: int,
        k_options: Sequence[int] = (2, 4),
        max_split_grids: int = 2,
        min_gain: float = 1.05,
    ) -> dict[tuple[int, int], int]:
        """Where sharding the head-of-line grids beats LPT packing.

        Builds the level's predicted durations, then greedily tries
        splitting the largest ``max_split_grids`` grids: a candidate
        ``k`` replaces the grid's single job by ``k`` lane-jobs of
        :meth:`predict_split_seconds` duration, and is accepted only
        when the LPT makespan over ``n_workers`` drops by at least
        ``min_gain``.  Returns ``{(l, m): k}`` for the accepted splits —
        empty when packing already wins (small levels, one worker, or
        splits whose interface overhead eats the gain).
        """
        if n_workers < 2:
            return {}
        jobs: dict[tuple[int, int], list[float]] = {
            (c.l, c.m): [c.work_ref_seconds]
            for c in self.level_costs(level, tol)
        }

        def makespan() -> float:
            return _lpt_makespan(
                [d for parts in jobs.values() for d in parts], n_workers
            )

        chosen: dict[tuple[int, int], int] = {}
        current = makespan()
        order = sorted(jobs, key=lambda key: jobs[key][0], reverse=True)
        for key in order[:max_split_grids]:
            original = jobs[key]
            best: Optional[tuple[float, int, list[float]]] = None
            for k in k_options:
                lane = self.predict_split_seconds(key[0], key[1], tol, k)
                jobs[key] = [lane] * k
                trial = makespan()
                if best is None or trial < best[0]:
                    best = (trial, k, jobs[key])
            if best is not None and best[0] * min_gain <= current:
                jobs[key] = best[2]
                chosen[key] = best[1]
                current = best[0]
            else:
                jobs[key] = original
        return chosen

    def work_seconds(self, l: int, m: int, tol: float) -> float:
        """Reference-machine seconds for ``subsolve(l, m)`` at ``tol``.

        Prefers the exact measurement when one was recorded above the
        noise floor (small-grid measurements are timer noise; the model
        smooths them).
        """
        exact = self.measured.get((l, m, tol))
        if exact is not None and exact >= self.noise_floor_seconds:
            return exact * self.reference_scale
        return self.predict_seconds(l, m, tol) * self.reference_scale

    def grid_cost(self, l: int, m: int, tol: float) -> GridCost:
        grid = Grid(self.root, l, m)
        return GridCost(
            l=l,
            m=m,
            work_ref_seconds=self.work_seconds(l, m, tol),
            result_bytes=8 * grid.n_nodes,
        )

    def level_costs(self, level: int, tol: float) -> list[GridCost]:
        """Costs of every grid of the nested loop, in loop order."""
        return [
            self.grid_cost(g.l, g.m, tol)
            for g in nested_loop_grids(self.root, level)
        ]

    def prolongation_seconds(self, level: int, target_cap: int | None = 8) -> float:
        """Master-side combination cost: per target node, per grid."""
        target_level = level if target_cap is None else min(level, target_cap)
        target_nodes = (2 ** (self.root + target_level) + 1) ** 2
        n_grids = 2 * level + 1 if level > 0 else 1
        return self.prolongation_seconds_per_node_grid * target_nodes * n_grids

    def transport_seconds(
        self, payload_bytes: int, data_plane: str = "pickle"
    ) -> float:
        """Cost of moving one result payload master-ward.

        ``pickle``: serialize, push through the result pipe,
        deserialize.  ``shm``: the worker's copy into the shared block
        (the master attach is a zero-copy map, so only the latency
        constant remains on its side).
        """
        if data_plane == "shm":
            rate = self.shm_bytes_per_second
        elif data_plane == "pickle":
            rate = self.pickle_bytes_per_second
        else:
            raise ValueError(
                f"unknown data plane {data_plane!r}; choose 'pickle' or 'shm'"
            )
        return self.transport_latency_seconds + payload_bytes / rate

    def level_transport_seconds(
        self, level: int, tol: float, data_plane: str = "pickle"
    ) -> float:
        """Total result-transport cost of one level's fan-in."""
        return sum(
            self.transport_seconds(cost.result_bytes, data_plane)
            for cost in self.level_costs(level, tol)
        )

    # ------------------------------------------------------------------
    # diagnostics / persistence
    # ------------------------------------------------------------------
    def holdout_error(self, records: Sequence[CostRecord]) -> float:
        """Median relative |prediction - measurement| on given records.

        Split records are excluded for the same reason :meth:`fit`
        excludes them: the unsplit wall model is not supposed to
        predict a substructured solve's wall time.
        """
        errors = [
            abs(self.predict_seconds(r.l, r.m, r.tol) - r.wall_seconds)
            / r.wall_seconds
            for r in records
            if r.wall_seconds >= self.noise_floor_seconds
            and getattr(r, "split_k", 1) == 1
        ]
        if not errors:
            raise CalibrationError(
                "no records above the noise floor to validate on",
                n_records=len(records),
                noise_floor_seconds=self.noise_floor_seconds,
            )
        return float(np.median(errors))

    def to_json(self, path: str | Path) -> None:
        payload = {
            "root": self.root,
            "solve_coefficients": list(self.solve_coefficients),
            "wall_coefficients": list(self.wall_coefficients),
            "r_squared": self.r_squared,
            "solves_r_squared": self.solves_r_squared,
            "noise_floor_seconds": self.noise_floor_seconds,
            "prolongation_seconds_per_node_grid": self.prolongation_seconds_per_node_grid,
            "pickle_bytes_per_second": self.pickle_bytes_per_second,
            "shm_bytes_per_second": self.shm_bytes_per_second,
            "transport_latency_seconds": self.transport_latency_seconds,
            "reference_scale": self.reference_scale,
            "measured": [
                {"l": l, "m": m, "tol": tol, "wall_seconds": w}
                for (l, m, tol), w in sorted(self.measured.items())
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def from_json(cls, path: str | Path) -> "CostModel":
        payload = json.loads(Path(path).read_text())
        return cls(
            root=payload["root"],
            solve_coefficients=tuple(payload["solve_coefficients"]),
            wall_coefficients=tuple(payload["wall_coefficients"]),
            r_squared=payload["r_squared"],
            solves_r_squared=payload["solves_r_squared"],
            noise_floor_seconds=payload["noise_floor_seconds"],
            prolongation_seconds_per_node_grid=payload[
                "prolongation_seconds_per_node_grid"
            ],
            # transport terms are newer than the first saved models;
            # .get defaults keep old calibration files loadable
            pickle_bytes_per_second=payload.get("pickle_bytes_per_second", 0.8e9),
            shm_bytes_per_second=payload.get("shm_bytes_per_second", 4.0e9),
            transport_latency_seconds=payload.get(
                "transport_latency_seconds", 5.0e-5
            ),
            reference_scale=payload.get("reference_scale", 1.0),
            measured={
                (rec["l"], rec["m"], rec["tol"]): rec["wall_seconds"]
                for rec in payload["measured"]
            },
        )


def _lpt_makespan(durations: Sequence[float], n_workers: int) -> float:
    """Greedy longest-processing-time list-schedule makespan.

    Local twin of :func:`repro.perf.warmpath.simulate_makespan` — that
    module imports the execution layer, which imports this one, so the
    planner keeps its own ten-line copy instead of a circular import.
    """
    if not durations:
        return 0.0
    lanes = [0.0] * max(1, int(n_workers))
    for duration in sorted(durations, reverse=True):
        shortest = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[shortest] += duration
    return max(lanes)
