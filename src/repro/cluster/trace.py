"""Chronological run output and the machines-in-use timeline.

§6 of the paper shows the restructured application's chronological
output: every master/worker start and end prints a labelled line ::

    basfluit.sen.cwi.nl 1572865 79 1048087412 275851
      mainprog Worker(event) ResSourceCode.c 351 -> Welcome

(machine, task-instance id, process-instance id, seconds and
microseconds since the epoch, task name, manifold name, source file,
line, message).  "From the output, like above, we can make a graph that
shows the number of machines needed during the dynamic expansion and
shrinking of our application run" — Figure 1.

This module renders the same format from a simulated (or real) run and
derives the machine-count timeline: a machine counts as *in use* while
at least one process instance housed on it is alive (between its
Welcome and its Bye).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .simulator import DistributedRun

__all__ = [
    "TraceMessage",
    "MachinePoint",
    "trace_messages",
    "render_trace",
    "machines_timeline",
    "weighted_average_machines",
    "ascii_timeline",
]

#: epoch offset so simulated timestamps resemble the paper's (March 2003)
_EPOCH_BASE = 1048087412

#: source-line numbers quoted from the paper's ResSourceCode.c output
_LINE_MASTER_WELCOME = 136
_LINE_MASTER_BYE = 337
_LINE_WORKER_WELCOME = 351
_LINE_WORKER_BYE = 370


@dataclass(frozen=True)
class TraceMessage:
    """One chronological output line."""

    time: float
    host: str
    task_id: int
    process_id: int
    manifold: str          # "Master(port in)" or "Worker(event)"
    line: int
    text: str              # "Welcome" or "Bye"

    def render(self, task_name: str = "mainprog", source: str = "ResSourceCode.c") -> str:
        seconds = _EPOCH_BASE + int(self.time)
        micros = int((self.time % 1.0) * 1_000_000)
        label = (
            f"{self.host} {self.task_id} {self.process_id} {seconds} {micros}\n"
            f"  {task_name} {self.manifold} {source} {self.line}"
        )
        return f"{label} -> {self.text}"


@dataclass(frozen=True)
class MachinePoint:
    """One step of the machines-in-use staircase."""

    time: float
    machines: int


def trace_messages(run: DistributedRun) -> list[TraceMessage]:
    """All Welcome/Bye messages of a run, in chronological order."""
    messages: list[TraceMessage] = [
        TraceMessage(
            time=run.master_welcome,
            host=run.master_host.name,
            task_id=262146,
            process_id=140,
            manifold="Master(port in)",
            line=_LINE_MASTER_WELCOME,
            text="Welcome",
        ),
        TraceMessage(
            time=run.master_bye,
            host=run.master_host.name,
            task_id=262146,
            process_id=140,
            manifold="Master(port in)",
            line=_LINE_MASTER_BYE,
            text="Bye",
        ),
    ]
    for index, worker in enumerate(run.workers):
        task_id = 262144 * (worker.task_id + 4)
        process_id = 79 + index
        messages.append(
            TraceMessage(
                time=worker.welcome,
                host=worker.host.name,
                task_id=task_id,
                process_id=process_id,
                manifold="Worker(event)",
                line=_LINE_WORKER_WELCOME,
                text="Welcome",
            )
        )
        messages.append(
            TraceMessage(
                time=worker.bye,
                host=worker.host.name,
                task_id=task_id,
                process_id=process_id,
                manifold="Worker(event)",
                line=_LINE_WORKER_BYE,
                text="Bye",
            )
        )
    return sorted(messages, key=lambda msg: msg.time)


def render_trace(run: DistributedRun) -> str:
    """The full chronological output in the paper's format."""
    return "\n".join(msg.render() for msg in trace_messages(run))


def machines_timeline(run: DistributedRun) -> list[MachinePoint]:
    """Machines-in-use staircase derived from the Welcome/Bye messages.

    A machine is in use while >= 1 of its process instances is alive.
    The start-up machine is in use for the whole run: the first task
    instance (housing ``Main`` and the master) exists from launch.
    """
    per_host: dict[str, list[tuple[float, int]]] = {}

    def add(host: str, start: float, end: float) -> None:
        per_host.setdefault(host, []).append((start, +1))
        per_host[host].append((end, -1))

    add(run.master_host.name, 0.0, run.elapsed_seconds)
    for worker in run.workers:
        add(worker.host.name, worker.welcome, worker.bye)

    # per host: intervals where its live-process count > 0
    events: list[tuple[float, int]] = []
    for host, host_events in per_host.items():
        host_events.sort(key=lambda e: (e[0], -e[1]))
        count = 0
        for time_point, delta in host_events:
            was_positive = count > 0
            count += delta
            if not was_positive and count > 0:
                events.append((time_point, +1))
            elif was_positive and count == 0:
                events.append((time_point, -1))

    events.sort(key=lambda e: (e[0], -e[1]))
    timeline: list[MachinePoint] = [MachinePoint(0.0, 0)]
    machines = 0
    for time_point, delta in events:
        machines += delta
        timeline.append(MachinePoint(time_point, machines))
    return timeline


def weighted_average_machines(
    timeline: Sequence[MachinePoint], t_end: float
) -> float:
    """Time-weighted average of the machines-in-use staircase over
    ``[0, t_end]`` — the paper's ``m`` column."""
    if t_end <= 0:
        raise ValueError(f"t_end must be positive, got {t_end}")
    total = 0.0
    for current, nxt in zip(timeline, list(timeline[1:]) + [None]):
        start = min(current.time, t_end)
        end = t_end if nxt is None else min(nxt.time, t_end)
        if end > start:
            total += current.machines * (end - start)
    return total / t_end


def ascii_timeline(
    timeline: Sequence[MachinePoint],
    t_end: float,
    *,
    width: int = 72,
    height: int = 16,
) -> str:
    """A terminal rendering of Figure 1's ebb & flow staircase."""
    if not timeline:
        return "(empty timeline)"
    peak = max(p.machines for p in timeline)
    if peak == 0:
        return "(no machines ever in use)"

    def machines_at(t: float) -> int:
        current = 0
        for point in timeline:
            if point.time <= t:
                current = point.machines
            else:
                break
        return current

    columns = [
        machines_at(t_end * (i + 0.5) / width) for i in range(width)
    ]
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        row = "".join("#" if c >= threshold else " " for c in columns)
        axis = f"{threshold:5.1f} |"
        rows.append(axis + row)
    rows.append("      +" + "-" * width)
    rows.append(f"       0{'':{width - 12}}{t_end:8.1f}s")
    return "\n".join(rows)
