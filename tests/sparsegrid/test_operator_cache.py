"""Warm-path correctness: the operator/assembly cache and the
factorization cache.

The load-bearing claim is the paper's own: reuse must not change a
single bit of the answer.  Everything else — LRU bounds, counters,
process-local default — is bookkeeping the observability layer relies
on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import (
    FactorCache,
    Grid,
    OperatorCache,
    configure_default_operator_cache,
    default_operator_cache,
    reset_default_operator_cache,
    subsolve,
)
from repro.sparsegrid.cache import operator_key
from repro.sparsegrid.discretize import SpatialOperator
from repro.sparsegrid.linsolve import RosenbrockSystemSolver
from repro.sparsegrid.registry import make_problem


@pytest.fixture
def problem():
    return make_problem("rotating-cone")


class TestOperatorCache:
    def test_miss_builds_then_hit_returns_same_object(self, problem):
        cache = OperatorCache(maxsize=4)
        grid = Grid(2, 1, 1)
        entry, hit = cache.get_operator(problem, grid)
        assert not hit
        again, hit2 = cache.get_operator(problem, grid)
        assert hit2
        assert again.operator is entry.operator
        assert again.factor_cache is entry.factor_cache
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio == 0.5

    def test_key_separates_grid_scheme_and_problem(self, problem):
        cache = OperatorCache(maxsize=8)
        a, _ = cache.get_operator(problem, Grid(2, 1, 1))
        b, _ = cache.get_operator(problem, Grid(2, 1, 2))
        c, _ = cache.get_operator(problem, Grid(2, 1, 1), scheme="central")
        d, _ = cache.get_operator(
            make_problem("manufactured"), Grid(2, 1, 1)
        )
        operators = {id(a.operator), id(b.operator), id(c.operator), id(d.operator)}
        assert len(operators) == 4
        assert cache.misses == 4 and cache.hits == 0

    def test_tol_and_t_end_not_in_key(self):
        # the operator does not depend on them; the key must not either
        key_a = operator_key("rotating-cone", (), Grid(2, 1, 1), "upwind")
        key_b = operator_key("rotating-cone", (), Grid(2, 1, 1), "upwind")
        assert key_a == key_b

    def test_lru_eviction_bound(self, problem):
        cache = OperatorCache(maxsize=2)
        for m in range(4):
            cache.get_operator(problem, Grid(2, 0, m))
        assert len(cache) == 2
        assert cache.evictions == 2
        # oldest entries are gone: re-requesting them misses
        _, hit = cache.get_operator(problem, Grid(2, 0, 0))
        assert not hit
        # the most recent entry is still warm
        _, hit = cache.get_operator(problem, Grid(2, 0, 3))
        assert hit

    def test_lru_order_refreshes_on_hit(self, problem):
        cache = OperatorCache(maxsize=2)
        cache.get_operator(problem, Grid(2, 0, 0))
        cache.get_operator(problem, Grid(2, 0, 1))
        cache.get_operator(problem, Grid(2, 0, 0))  # refresh 0
        cache.get_operator(problem, Grid(2, 0, 2))  # evicts 1, not 0
        _, hit = cache.get_operator(problem, Grid(2, 0, 0))
        assert hit

    def test_factory_only_called_on_miss(self, problem):
        calls = []
        cache = OperatorCache(maxsize=4)

        def factory():
            calls.append(1)
            return problem

        cache.get_operator(factory, Grid(2, 1, 1), problem_name="p")
        cache.get_operator(factory, Grid(2, 1, 1), problem_name="p")
        assert len(calls) == 1

    def test_factory_requires_name(self, problem):
        cache = OperatorCache()
        with pytest.raises(ValueError, match="problem_name"):
            cache.get_operator(lambda: problem, Grid(2, 1, 1))

    def test_stats_dict(self, problem):
        cache = OperatorCache(maxsize=4)
        cache.get_operator(problem, Grid(2, 1, 1))
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["size"] == 1

    def test_clear(self, problem):
        cache = OperatorCache()
        cache.get_operator(problem, Grid(2, 1, 1))
        cache.clear()
        assert len(cache) == 0


class TestBitwiseIdentity:
    """Cached-vs-uncached ``subsolve`` must agree to the last bit."""

    def test_cached_operator_identical_solution(self, problem):
        grid = Grid(2, 2, 1)
        cold = subsolve(problem, grid, 1.0e-3, t_end=0.25)
        cache = OperatorCache()
        entry, _ = cache.get_operator(problem, grid)
        warm = subsolve(
            problem, grid, 1.0e-3, t_end=0.25,
            operator=entry.operator, factor_cache=entry.factor_cache,
        )
        assert np.array_equal(cold.solution, warm.solution)
        assert cold.stats.steps_accepted == warm.stats.steps_accepted

    def test_factor_cache_replay_identical_and_hit(self, problem):
        grid = Grid(2, 1, 2)
        cache = OperatorCache()
        entry, _ = cache.get_operator(problem, grid)
        first = subsolve(
            problem, grid, 1.0e-3, t_end=0.25,
            operator=entry.operator, factor_cache=entry.factor_cache,
        )
        second = subsolve(
            problem, grid, 1.0e-3, t_end=0.25,
            operator=entry.operator, factor_cache=entry.factor_cache,
        )
        assert np.array_equal(first.solution, second.solution)
        # the replayed h sequence is identical, so every factorization
        # of the second run is served from the cache
        assert first.stats.factorizations > 0
        assert second.stats.factorizations == 0
        assert second.stats.factor_cache_hits >= 1
        assert second.stats.factor_reuse_ratio == 1.0

    def test_mismatched_operator_rejected(self, problem):
        cache = OperatorCache()
        entry, _ = cache.get_operator(problem, Grid(2, 1, 1))
        with pytest.raises(ValueError, match="cached operator"):
            subsolve(problem, Grid(2, 1, 2), 1e-3, operator=entry.operator)
        with pytest.raises(ValueError, match="cached operator"):
            subsolve(
                problem, Grid(2, 1, 1), 1e-3,
                scheme="central", operator=entry.operator,
            )


class TestFactorCache:
    def test_lru_bound_and_counters(self):
        cache = FactorCache(maxsize=2)
        problem = make_problem("rotating-cone")
        op = SpatialOperator(Grid(2, 0, 0), problem)
        solver = RosenbrockSystemSolver(op.J, 1.7, factor_cache=cache)
        for h in (0.1, 0.2, 0.3):
            solver.prepare(h)
        assert len(cache) == 2
        assert cache.evictions == 1
        # 0.1 was evicted; 0.3 is warm
        fresh = RosenbrockSystemSolver(op.J, 1.7, factor_cache=cache)
        fresh.prepare(0.3)
        assert fresh.factor_cache_hits == 1
        fresh.prepare(0.1)
        assert fresh.factorizations == 1

    def test_reuse_ratio_property(self):
        problem = make_problem("rotating-cone")
        op = SpatialOperator(Grid(2, 0, 0), problem)
        solver = RosenbrockSystemSolver(op.J, 1.7)
        assert solver.reuse_ratio == 0.0
        solver.prepare(0.1)
        solver.prepare(0.1)
        solver.prepare(0.2)
        solver.prepare(0.2)
        assert solver.prepare_calls == 4
        assert solver.reuse_hits == 2
        assert solver.reuse_ratio == 0.5

    def test_cached_factor_solves_identically(self):
        problem = make_problem("rotating-cone")
        op = SpatialOperator(Grid(2, 1, 1), problem)
        rhs = op.initial_interior()
        shared = FactorCache()
        a = RosenbrockSystemSolver(op.J, 1.7, factor_cache=shared)
        a.prepare(0.05)
        x_fresh = a.solve(rhs)
        b = RosenbrockSystemSolver(op.J, 1.7, factor_cache=shared)
        b.prepare(0.05)  # served from the shared cache
        assert b.factor_cache_hits == 1
        assert np.array_equal(b.solve(rhs), x_fresh)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            FactorCache(maxsize=0)
        with pytest.raises(ValueError):
            OperatorCache(maxsize=0)


class TestDefaultCache:
    def test_default_is_process_local_singleton(self):
        reset_default_operator_cache()
        a = default_operator_cache()
        assert default_operator_cache() is a

    def test_configure_replaces_and_sets_bound(self):
        cache = configure_default_operator_cache(3)
        assert default_operator_cache() is cache
        assert cache.maxsize == 3
        reset_default_operator_cache()
        assert default_operator_cache().maxsize == 3  # bound sticks

    def teardown_method(self):
        configure_default_operator_cache(32)
