"""The adaptive Rosenbrock (ROS2) time integrator.

The original program integrates each grid's semi-discrete system with a
Rosenbrock solver whose "adaptive time step ... must be computed again
and again".  We implement the classical two-stage, second-order,
L-stable ROS2 scheme of Verwer et al. (developed at CWI, like the paper
itself), for the linear system ``du/dt = J u + b(t)``::

    (I - gamma*h*J) k1 = f(u_n, t_n)
    (I - gamma*h*J) k2 = f(u_n + h*k1, t_n + h) - 2*k1
    u_{n+1} = u_n + (3/2) h k1 + (1/2) h k2        gamma = 1 + 1/sqrt(2)

Step control is the standard embedded-pair strategy: the first-order
result ``u_n + h k1`` provides the error estimate ``(h/2)||k1 + k2||``
in a mixed absolute/relative norm with tolerance ``le_tol`` (the
program's third command-line argument); accepted/rejected steps resize
``h`` by the usual safety-factored square-root rule.  All counters are
exposed for the performance model.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from .discretize import SpatialOperator
from .linsolve import FactorCache, RosenbrockSystemSolver

__all__ = ["StepStats", "Ros2Integrator"]

#: The L-stability parameter of ROS2.
GAMMA = 1.0 + 1.0 / math.sqrt(2.0)


@dataclass
class StepStats:
    """Counters accumulated over one integration."""

    steps_accepted: int = 0
    steps_rejected: int = 0
    factorizations: int = 0
    solves: int = 0
    rhs_evaluations: int = 0
    #: ``prepare()`` calls on the linear solver (one per attempted step)
    prepare_calls: int = 0
    #: prepares served without computing a fresh LU (same-``h`` hold or
    #: a warm-path factor-cache hit)
    factor_reuse_hits: int = 0
    #: the subset of reuse hits served by a cross-run factor cache
    factor_cache_hits: int = 0
    assembly_seconds: float = 0.0
    factor_seconds: float = 0.0
    solve_seconds: float = 0.0
    total_seconds: float = 0.0
    final_h: float = 0.0
    min_h: float = math.inf
    max_h: float = 0.0
    #: accepted step sizes, for diagnostics (kept small: bounded runs)
    h_history: list[float] = field(default_factory=list)
    #: intra-grid decomposition counters (1 / zeros on the unsplit path;
    #: filled from ``SchurSplitSolver.split_stats`` when the solve is
    #: strip-substructured — see :mod:`repro.sparsegrid.decompose`)
    split_k: int = 1
    interface_unknowns: int = 0
    strip_factorizations: int = 0
    strip_solves: int = 0
    interface_solves: int = 0
    halo_exchanges: int = 0
    halo_bytes: int = 0
    strip_factor_seconds: float = 0.0
    strip_solve_seconds: float = 0.0
    critical_strip_factor_seconds: float = 0.0
    critical_strip_solve_seconds: float = 0.0
    schur_factor_seconds: float = 0.0
    interface_solve_seconds: float = 0.0
    strip_respawns: int = 0

    @property
    def steps_total(self) -> int:
        return self.steps_accepted + self.steps_rejected

    @property
    def factor_reuse_ratio(self) -> float:
        """Fraction of prepares that reused a factorization — the
        factorization-cache effectiveness the cost model reports."""
        if self.prepare_calls == 0:
            return 0.0
        return self.factor_reuse_hits / self.prepare_calls


class Ros2Integrator:
    """Integrate one grid's semi-discrete system from ``t0`` to ``t_end``."""

    #: step-size controller constants
    SAFETY = 0.9
    GROW_MAX = 2.0
    SHRINK_MIN = 0.2
    MAX_REJECTS = 60
    #: hold the current step while the proposed change is within this
    #: band — refactorizing (I - gamma*h*J) costs far more than the
    #: accuracy a few-percent step tweak buys, so the controller only
    #: moves ``h`` when it pays for a new factorization
    HOLD_LO = 1.0
    HOLD_HI = 1.35

    def __init__(
        self,
        operator: SpatialOperator,
        tol: float,
        *,
        h0: float | None = None,
        h_min: float = 1.0e-12,
        h_max: float | None = None,
        record_history: bool = False,
        factor_cache: FactorCache | None = None,
        solver=None,
    ) -> None:
        if tol <= 0:
            raise ValueError(f"tolerance must be positive, got {tol}")
        self.operator = operator
        self.tol = tol
        self.h_min = h_min
        self.h_max = h_max
        self.record_history = record_history
        #: ``solver`` injects an alternative stage-system solver with the
        #: same prepare/solve/counters protocol (the split path passes a
        #: :class:`~repro.sparsegrid.decompose.SchurSplitSolver`); the
        #: default is the direct single-factor solver.
        if solver is None:
            solver = RosenbrockSystemSolver(
                operator.J, GAMMA, factor_cache=factor_cache
            )
        self.solver = solver
        self._h0 = h0

    # ------------------------------------------------------------------
    def _initial_step(self, u: np.ndarray, t0: float, t_end: float) -> float:
        """A conservative initial step: limited by the RHS magnitude."""
        if self._h0 is not None:
            return min(self._h0, t_end - t0)
        f0 = self.operator.rhs(u, t0)
        scale = np.linalg.norm(f0) / math.sqrt(max(1, f0.size))
        span = t_end - t0
        if scale <= 0:
            return span / 16.0
        h = math.sqrt(self.tol) / scale
        return float(min(max(h, self.h_min), span / 4.0))

    def _error_norm(self, est: np.ndarray, u: np.ndarray, u_new: np.ndarray) -> float:
        """Mixed norm: RMS of est / (atol + rtol*|u|), tol plays both roles."""
        scale = self.tol + self.tol * np.maximum(np.abs(u), np.abs(u_new))
        return float(np.sqrt(np.mean((est / scale) ** 2)))

    # ------------------------------------------------------------------
    def integrate(
        self, u0: np.ndarray, t0: float, t_end: float
    ) -> tuple[np.ndarray, StepStats]:
        """Run the adaptive loop; returns the final state and counters."""
        if t_end <= t0:
            raise ValueError(f"t_end ({t_end}) must exceed t0 ({t0})")
        started = time.perf_counter()
        stats = StepStats(assembly_seconds=self.operator.assembly_seconds)
        u = np.asarray(u0, dtype=float).copy()
        t = t0
        h = self._initial_step(u, t0, t_end)
        if self.h_max is not None:
            h = min(h, self.h_max)
        rejects_in_a_row = 0

        while t < t_end - 1.0e-14 * max(1.0, abs(t_end)):
            h = min(h, t_end - t)
            h = max(h, self.h_min)
            self.solver.prepare(h)

            f1 = self.operator.rhs(u, t)
            k1 = self.solver.solve(f1)
            f2 = self.operator.rhs(u + h * k1, t + h)
            k2 = self.solver.solve(f2 - 2.0 * k1)
            u_new = u + h * (1.5 * k1 + 0.5 * k2)
            stats.rhs_evaluations += 2

            est = 0.5 * h * (k1 + k2)
            err = self._error_norm(est, u, u_new)

            if err <= 1.0 or h <= self.h_min * (1 + 1e-12):
                # accept
                t += h
                u = u_new
                stats.steps_accepted += 1
                stats.min_h = min(stats.min_h, h)
                stats.max_h = max(stats.max_h, h)
                if self.record_history:
                    stats.h_history.append(h)
                rejects_in_a_row = 0
                factor = self.SAFETY * (1.0 / max(err, 1.0e-10)) ** 0.5
                factor = min(self.GROW_MAX, max(self.SHRINK_MIN, factor))
                if not (self.HOLD_LO <= factor <= self.HOLD_HI):
                    h *= factor
            else:
                stats.steps_rejected += 1
                rejects_in_a_row += 1
                if rejects_in_a_row > self.MAX_REJECTS:
                    raise RuntimeError(
                        f"ROS2 rejected {rejects_in_a_row} consecutive steps on "
                        f"{self.operator.grid} (h={h:.3e}, err={err:.3e})"
                    )
                factor = self.SAFETY * (1.0 / err) ** 0.5
                h *= max(self.SHRINK_MIN, factor)
                h = max(h, self.h_min)
            if self.h_max is not None:
                h = min(h, self.h_max)

        stats.final_h = h
        stats.factorizations = self.solver.factorizations
        stats.prepare_calls = self.solver.prepare_calls
        stats.factor_reuse_hits = self.solver.reuse_hits
        stats.factor_cache_hits = self.solver.factor_cache_hits
        stats.solves = self.solver.solves
        stats.factor_seconds = self.solver.factor_seconds
        stats.solve_seconds = self.solver.solve_seconds
        split = getattr(self.solver, "split_stats", None)
        if split is not None:
            stats.split_k = split.split_k
            stats.interface_unknowns = split.interface_unknowns
            stats.strip_factorizations = split.strip_factorizations
            stats.strip_solves = split.strip_solves
            stats.interface_solves = split.interface_solves
            stats.halo_exchanges = split.halo_exchanges
            stats.halo_bytes = split.halo_bytes
            stats.strip_factor_seconds = split.strip_factor_seconds
            stats.strip_solve_seconds = split.strip_solve_seconds
            stats.critical_strip_factor_seconds = (
                split.critical_strip_factor_seconds
            )
            stats.critical_strip_solve_seconds = (
                split.critical_strip_solve_seconds
            )
            stats.schur_factor_seconds = split.schur_factor_seconds
            stats.interface_solve_seconds = split.interface_solve_seconds
            stats.strip_respawns = split.strip_respawns
        stats.total_seconds = time.perf_counter() - started
        if stats.min_h is math.inf:
            stats.min_h = 0.0
        return u, stats
