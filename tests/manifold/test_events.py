"""Events and event memories: identity, delivery, matching, scoping."""

from __future__ import annotations

import threading
import time

import pytest

from repro.manifold import BEGIN, Event, EventMemory, EventOccurrence
from repro.manifold.errors import EventError


class TestEvent:
    def test_same_name_is_equal(self):
        assert Event("go") == Event("go")

    def test_same_name_hashes_equal(self):
        assert hash(Event("go")) == hash(Event("go"))

    def test_different_names_differ(self):
        assert Event("go") != Event("stop")

    def test_local_events_with_same_name_differ(self):
        a = Event.local("death_worker")
        b = Event.local("death_worker")
        assert a != b

    def test_local_event_differs_from_global(self):
        assert Event.local("death_worker") != Event("death_worker")

    def test_local_event_keeps_its_name(self):
        assert Event.local("death_worker").name == "death_worker"

    def test_empty_name_rejected(self):
        with pytest.raises(EventError):
            Event("")

    def test_non_string_name_rejected(self):
        with pytest.raises(EventError):
            Event(42)  # type: ignore[arg-type]

    def test_usable_as_dict_key(self):
        table = {Event("a"): 1, Event("b"): 2}
        assert table[Event("a")] == 1


class TestEventOccurrence:
    def test_matches_same_event(self):
        occ = EventOccurrence(Event("go"))
        assert occ.matches(Event("go"))

    def test_does_not_match_other_event(self):
        occ = EventOccurrence(Event("go"))
        assert not occ.matches(Event("stop"))

    def test_source_filter(self):
        source = object()
        occ = EventOccurrence(Event("go"), source)  # type: ignore[arg-type]
        assert occ.matches(Event("go"), source)
        assert not occ.matches(Event("go"), object())

    def test_sequence_numbers_increase(self):
        a = EventOccurrence(Event("go"))
        b = EventOccurrence(Event("go"))
        assert b.seq > a.seq


class TestEventMemory:
    def match_any(self, *events: Event):
        targets = set(events)

        def matcher(occ: EventOccurrence):
            return 0 if occ.event in targets else None

        return matcher

    def test_post_then_take(self):
        memory = EventMemory()
        memory.post(Event("go"))
        occ = memory.take_match(self.match_any(Event("go")))
        assert occ is not None and occ.event == Event("go")

    def test_take_removes_occurrence(self):
        memory = EventMemory()
        memory.post(Event("go"))
        memory.take_match(self.match_any(Event("go")))
        assert memory.take_match(self.match_any(Event("go"))) is None

    def test_non_matching_events_are_retained(self):
        memory = EventMemory()
        memory.post(Event("other"))
        assert memory.take_match(self.match_any(Event("go"))) is None
        assert len(memory) == 1

    def test_fifo_among_equal_priority(self):
        memory = EventMemory()
        first = EventOccurrence(Event("go"))
        second = EventOccurrence(Event("go"))
        memory.deliver(first)
        memory.deliver(second)
        taken = memory.take_match(self.match_any(Event("go")))
        assert taken is first

    def test_priority_beats_arrival_order(self):
        memory = EventMemory()
        memory.post(Event("rendezvous"))
        memory.post(Event("create_worker"))

        def matcher(occ: EventOccurrence):
            if occ.event == Event("create_worker"):
                return 2
            if occ.event == Event("rendezvous"):
                return 1
            return None

        taken = memory.take_match(matcher)
        assert taken is not None and taken.event == Event("create_worker")

    def test_wait_returns_matching_event(self):
        memory = EventMemory()

        def poster():
            time.sleep(0.02)
            memory.post(Event("go"))

        threading.Thread(target=poster).start()
        occ = memory.wait_for_match(self.match_any(Event("go")), timeout=2.0)
        assert occ is not None and occ.event == Event("go")

    def test_wait_timeout_returns_none(self):
        memory = EventMemory()
        assert memory.wait_for_match(self.match_any(Event("go")), timeout=0.05) is None

    def test_wait_wakes_on_extra_predicate(self):
        memory = EventMemory()
        flag = threading.Event()

        def setter():
            time.sleep(0.02)
            flag.set()
            memory.notify()

        threading.Thread(target=setter).start()
        result = memory.wait_for_match(
            self.match_any(Event("go")), timeout=2.0, extra_predicate=flag.is_set
        )
        assert result is None
        assert flag.is_set()

    def test_discard_drops_named_events(self):
        memory = EventMemory()
        memory.post(Event("death"))
        memory.post(Event("death"))
        memory.post(Event("keep"))
        dropped = memory.discard([Event("death")])
        assert dropped == 2
        assert len(memory) == 1

    def test_discard_where_predicate(self):
        memory = EventMemory()
        memory.post(Event("a"))
        memory.post(Event("b"))
        dropped = memory.discard_where(lambda occ: occ.event.name == "a")
        assert dropped == 1

    def test_snapshot_preserves_order(self):
        memory = EventMemory()
        memory.post(Event("a"))
        memory.post(Event("b"))
        names = [occ.event.name for occ in memory.snapshot()]
        assert names == ["a", "b"]

    def test_closed_memory_drops_deliveries(self):
        memory = EventMemory()
        memory.close()
        memory.post(Event("go"))
        assert len(memory) == 0

    def test_closed_memory_wait_returns_none(self):
        memory = EventMemory()
        memory.close()
        assert memory.wait_for_match(self.match_any(Event("go"))) is None

    def test_begin_is_predefined(self):
        assert BEGIN == Event("begin")
