"""Prolongation and the sparse-grid combination formula.

After the nested loop "the coarse approximations on the visited grids
are known and are prolongated onto the finest grid used in the
application to obtain a more accurate solution".  The combination
technique forms::

    u_c = sum_{l+m = L} P u_{l,m}  -  sum_{l+m = L-1} P u_{l,m}

where ``P`` prolongates (bilinear interpolation; the grid families are
nested, so coarse nodes map onto fine nodes exactly) each anisotropic
solution onto the target grid.

For large ``L`` the full isotropic target grid ``(L, L)`` would have
``(2**(root+L)+1)**2`` nodes — astronomically more memory than all the
component grids combined (their total is ``O(L * 2**(root+L))``).  The
driver therefore accepts a ``target_cap``: the combined solution is
represented on grid ``(min(L, cap), min(L, cap))``, with component
solutions prolongated up or *resampled* down (exact nodal subsampling —
the families are nested) as needed.  This preserves the structure and
cost profile of the original prolongation phase while keeping memory
bounded; the paper's own runs at ``level = 15`` cannot have materialized
a ``131073^2`` target either.
"""

from __future__ import annotations

import numpy as np

from .grid import Grid, combination_grids

__all__ = [
    "resample_1d",
    "resample_2d",
    "combination_coefficients",
    "combine",
    "IncrementalCombiner",
    "combine_incremental",
]


def resample_1d(values: np.ndarray, levels_up: int, axis: int) -> np.ndarray:
    """Resample nodal data along ``axis`` by ``levels_up`` dyadic levels.

    Positive ``levels_up`` prolongates (linear interpolation, doubling
    the cell count per level); negative restricts by exact nodal
    subsampling (stride ``2**(-levels_up)``), which is injective on the
    nested node families.  ``levels_up == 0`` returns the input.
    """
    result = np.asarray(values, dtype=float)
    if levels_up == 0:
        return result
    if levels_up < 0:
        stride = 1 << (-levels_up)
        index = [slice(None)] * result.ndim
        index[axis] = slice(None, None, stride)
        return result[tuple(index)]
    for _ in range(levels_up):
        n = result.shape[axis]
        new_shape = list(result.shape)
        new_shape[axis] = 2 * n - 1
        out = np.empty(new_shape, dtype=float)
        even = [slice(None)] * result.ndim
        even[axis] = slice(0, None, 2)
        odd = [slice(None)] * result.ndim
        odd[axis] = slice(1, None, 2)
        lo = [slice(None)] * result.ndim
        lo[axis] = slice(0, n - 1)
        hi = [slice(None)] * result.ndim
        hi[axis] = slice(1, n)
        out[tuple(even)] = result
        out[tuple(odd)] = 0.5 * (result[tuple(lo)] + result[tuple(hi)])
        result = out
    return result


def resample_2d(values: np.ndarray, source: Grid, target: Grid) -> np.ndarray:
    """Map nodal data from ``source`` onto ``target`` (same root)."""
    if source.root != target.root:
        raise ValueError(
            f"grids must share a root: {source.root} != {target.root}"
        )
    expected = source.shape
    if values.shape != expected:
        raise ValueError(
            f"solution shape {values.shape} does not match {source} nodes {expected}"
        )
    out = resample_1d(values, target.l - source.l, axis=0)
    out = resample_1d(out, target.m - source.m, axis=1)
    return out


def combination_coefficients(level: int) -> dict[int, int]:
    """Combination coefficients by diagonal: ``{level: +1, level-1: -1}``."""
    coefficients = {level: 1}
    if level > 0:
        coefficients[level - 1] = -1
    return coefficients


class IncrementalCombiner:
    """Streaming combination with a deterministic accumulation order.

    Solutions may be fed in *any* arrival order (this is what lets the
    master overlap combination with outstanding subsolves): each
    :meth:`add` resamples the grid onto the preallocated target buffer's
    geometry immediately — the expensive part — and the cheap in-place
    accumulation is *folded* strictly in the nested-loop order of
    :func:`combination_grids`.  Out-of-order arrivals are parked
    (already resampled) until their turn.  Because the fold order is
    fixed and every fold is an in-place ``np.add``/``np.subtract`` into
    the single accumulation buffer, the result is bitwise identical to
    the batch :func:`combine` regardless of arrival order — IEEE
    addition is not associative, so order discipline, not tolerance, is
    what preserves the paper's exact-equality claim.
    """

    def __init__(
        self, root: int, level: int, target_cap: int | None = None
    ) -> None:
        target_level = level if target_cap is None else min(level, target_cap)
        self.level = level
        self.target = Grid(root, target_level, target_level)
        #: the preallocated accumulation buffer — every fold lands here
        #: in place; no per-grid temporaries are materialized
        self.combined = np.zeros(self.target.shape)
        self._grids: dict[tuple[int, int], Grid] = {}
        self._coefficients: dict[tuple[int, int], int] = {}
        self._sequence: list[tuple[int, int]] = []
        for grid, coefficient in combination_grids(root, level):
            key = (grid.l, grid.m)
            self._grids[key] = grid
            self._coefficients[key] = coefficient
            self._sequence.append(key)
        self._parked: dict[tuple[int, int], np.ndarray] = {}
        self._added: set[tuple[int, int]] = set()
        self._next = 0

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def expected_keys(self) -> list[tuple[int, int]]:
        """Every grid of the formula, in fold (nested-loop) order."""
        return list(self._sequence)

    @property
    def remaining(self) -> list[tuple[int, int]]:
        """Keys not yet fed, in fold order."""
        return [k for k in self._sequence if k not in self._added]

    @property
    def complete(self) -> bool:
        return self._next == len(self._sequence)

    def add(self, key: tuple[int, int], values: np.ndarray) -> int:
        """Feed one grid's solution; returns how many grids folded.

        ``values`` may be a view into a caller-owned buffer (e.g. a
        shared-memory segment): anything parked for a later fold is
        copied, so the buffer can be reclaimed as soon as ``add``
        returns.
        """
        key = tuple(key)
        grid = self._grids.get(key)
        if grid is None:
            raise KeyError(
                f"grid {key} is not part of the level-{self.level} "
                "combination formula"
            )
        if key in self._added:
            raise ValueError(f"grid {key} was already added")
        resampled = resample_2d(values, grid, self.target)
        if np.shares_memory(resampled, values):
            # pure-subsample (or identity) resampling returns a view of
            # the input; park a copy so the caller may free its buffer
            resampled = np.array(resampled, dtype=float)
        self._parked[key] = resampled
        self._added.add(key)
        return self._fold()

    def _fold(self) -> int:
        folded = 0
        while self._next < len(self._sequence):
            key = self._sequence[self._next]
            values = self._parked.pop(key, None)
            if values is None:
                break
            # in place into the preallocated buffer; ``a - b`` is IEEE
            # ``a + (-b)`` exactly, so +=/-= of the ±1 coefficients is
            # reproduced bit for bit without the scaled temporary
            if self._coefficients[key] == 1:
                np.add(self.combined, values, out=self.combined)
            else:
                np.subtract(self.combined, values, out=self.combined)
            self._next += 1
            folded += 1
        return folded

    def result(self) -> tuple[Grid, np.ndarray]:
        """The target grid and combined solution; every grid required."""
        if not self.complete:
            missing = self.remaining[0]
            raise KeyError(
                f"missing solution for grid {missing} at level {self.level}"
            )
        return self.target, self.combined


def combine_incremental(
    root: int, level: int, target_cap: int | None = None
) -> IncrementalCombiner:
    """A streaming combiner for the given run (see
    :class:`IncrementalCombiner`)."""
    return IncrementalCombiner(root, level, target_cap=target_cap)


def combine(
    solutions: dict[tuple[int, int], np.ndarray],
    root: int,
    level: int,
    target_cap: int | None = None,
) -> tuple[Grid, np.ndarray]:
    """Apply the combination formula to per-grid solutions.

    ``solutions`` maps ``(l, m)`` to the full nodal solution of that
    grid.  Every grid of both diagonals must be present.  Returns the
    target grid and the combined nodal array on it.

    The accumulation buffer is preallocated and every grid is folded in
    place (no ``coefficient * resampled`` temporaries); the batch path
    is the incremental combiner fed in loop order, so the two are
    bitwise identical by construction.
    """
    combiner = IncrementalCombiner(root, level, target_cap=target_cap)
    for key in combiner.expected_keys():
        if key not in solutions:
            raise KeyError(f"missing solution for grid {key} at level {level}")
        combiner.add(key, solutions[key])
    return combiner.result()
