"""CONFIG — the runtime-configuration stage: mapping tasks onto hosts.

The final stage of application construction assigns task instances to
machines.  The input is the brace notation of the paper::

    {host host1 diplice.sen.cwi.nl}
    {host host2 alboka.sen.cwi.nl}
    {locus mainprog $host1 $host2}

* ``{host <var> <hostname>}`` binds a variable to a machine name;
* ``{locus <task> $v1 $v2 ...}`` states that instances of the task may
  be started on any of those machines.

The :class:`HostMapper` realizes the policy: the first task instance
runs on the start-up machine; further instances are assigned the first
locus host with free capacity (each paper host is a single-processor
workstation ⇒ capacity one task instance at a time, configurable).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigError
from .mlink import parse_braces
from .task import TaskInstance

__all__ = ["ConfigSpec", "parse_config", "HostMapper"]


@dataclass
class ConfigSpec:
    """Parsed CONFIG input."""

    hosts: dict[str, str] = field(default_factory=dict)  # var -> hostname
    loci: dict[str, list[str]] = field(default_factory=dict)  # task -> hostnames

    def locus_hosts(self, task_name: str) -> list[str]:
        try:
            return list(self.loci[task_name])
        except KeyError:
            raise ConfigError(f"no {{locus}} declared for task {task_name!r}") from None


def parse_config(text: str) -> ConfigSpec:
    """Parse CONFIG text into a :class:`ConfigSpec`."""
    spec = ConfigSpec()
    for expr in parse_braces(text):
        atoms = expr.atoms()
        if expr.head == "host":
            if len(atoms) != 3:
                raise ConfigError(f"{{host}} expects a variable and a hostname: {atoms!r}")
            _, var, hostname = atoms
            if var in spec.hosts:
                raise ConfigError(f"host variable {var!r} bound twice")
            spec.hosts[var] = hostname
        elif expr.head == "locus":
            if len(atoms) < 3:
                raise ConfigError(f"{{locus}} expects a task and at least one host: {atoms!r}")
            task, refs = atoms[1], atoms[2:]
            resolved = []
            for ref in refs:
                if ref.startswith("$"):
                    var = ref[1:]
                    if var not in spec.hosts:
                        raise ConfigError(f"{{locus}} references unbound host variable {ref}")
                    resolved.append(spec.hosts[var])
                else:
                    resolved.append(ref)
            spec.loci.setdefault(task, []).extend(resolved)
        else:
            raise ConfigError(f"unknown CONFIG clause {{{expr.head} ...}}")
    return spec


class HostMapper:
    """Assigns task instances to machines per a :class:`ConfigSpec`.

    ``startup_host`` plays the role of "the machine we are sitting
    behind": it always receives the first task instance.  Every other
    host accepts at most ``capacity`` concurrent task instances
    (single-processor workstations ⇒ 1).
    """

    def __init__(
        self,
        spec: ConfigSpec,
        startup_host: str,
        capacity: int = 1,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"host capacity must be >= 1, got {capacity}")
        self.spec = spec
        self.startup_host = startup_host
        self.capacity = capacity
        self._lock = threading.Lock()
        self._occupancy: dict[str, int] = {}
        self._assignments: dict[int, str] = {}  # task instance id -> hostname
        self._startup_used = False

    def assign(self, task: TaskInstance) -> str:
        """Choose a machine for a freshly forked task instance."""
        with self._lock:
            if not self._startup_used:
                self._startup_used = True
                return self._take_locked(task, self.startup_host)
            for hostname in self.spec.locus_hosts(task.task_name):
                if self._occupancy.get(hostname, 0) < self.capacity:
                    return self._take_locked(task, hostname)
            raise ConfigError(
                f"no host with free capacity for task instance {task.name}; "
                f"locus = {self.spec.locus_hosts(task.task_name)}"
            )

    def _take_locked(self, task: TaskInstance, hostname: str) -> str:
        self._occupancy[hostname] = self._occupancy.get(hostname, 0) + 1
        self._assignments[task.id] = hostname
        task.host = hostname
        return hostname

    def free(self, task: TaskInstance) -> None:
        """Release the machine of a dead task instance."""
        with self._lock:
            hostname = self._assignments.pop(task.id, None)
            if hostname is None:
                return
            self._occupancy[hostname] = max(0, self._occupancy.get(hostname, 0) - 1)

    def host_of(self, task: TaskInstance) -> Optional[str]:
        with self._lock:
            return self._assignments.get(task.id)

    def hosts_in_use(self) -> list[str]:
        with self._lock:
            return sorted(h for h, n in self._occupancy.items() if n > 0)
