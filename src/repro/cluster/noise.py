"""Multi-user perturbations: the "unpredictable effects" of §7.

"There are always unpredictable effects such as network traffic and
file server delays ... some users ... run their own job(s) at night,
run screen savers or have runaway Netscape jobs."  The model is a
per-(host, run) multiplicative slowdown:

* a baseline lognormal jitter (file server delays, cache effects) with
  a small sigma — the paper found the five-run spread "not so big";
* with small probability, a *background job* on the host (screen saver,
  runaway browser) stealing a uniform slice of the CPU.

All randomness flows through one seeded ``numpy.random.Generator``, so
simulated experiments are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseSample", "MultiUserNoise"]


@dataclass(frozen=True)
class NoiseSample:
    """The perturbation drawn for one host in one run."""

    slowdown: float          # >= 1: multiply work durations by this
    background_job: bool     # a heavier co-tenant was present

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")


@dataclass
class MultiUserNoise:
    """Noise model; ``quiet()`` gives the dedicated-machine ablation."""

    #: sigma of the baseline lognormal jitter
    jitter_sigma: float = 0.04
    #: probability a host carries a background job during the run
    background_probability: float = 0.06
    #: CPU share stolen by a background job: uniform in this range
    background_steal: tuple[float, float] = (0.10, 0.45)

    @classmethod
    def quiet(cls) -> "MultiUserNoise":
        """Dedicated machines: no perturbation at all."""
        return cls(jitter_sigma=0.0, background_probability=0.0)

    def sample(self, rng: np.random.Generator) -> NoiseSample:
        """Draw one host's perturbation for one run."""
        jitter = float(np.exp(abs(rng.normal(0.0, self.jitter_sigma)))) if self.jitter_sigma > 0 else 1.0
        background = bool(rng.random() < self.background_probability)
        slowdown = jitter
        if background:
            lo, hi = self.background_steal
            steal = float(rng.uniform(lo, hi))
            slowdown /= (1.0 - steal)
        return NoiseSample(slowdown=slowdown, background_job=background)
