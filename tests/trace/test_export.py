"""Exporters: JSONL round-trip fidelity and the Chrome trace format."""

from __future__ import annotations

import json

import pytest

from repro.trace import (
    TraceAnalysis,
    TraceRecorder,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)

from .test_analysis import build_two_worker_timeline


class TestJsonlRoundTrip:
    def test_events_survive_round_trip(self, tmp_path):
        rec = build_two_worker_timeline()
        path = tmp_path / "run.jsonl"
        count = write_jsonl(rec.events(), path)
        assert count == len(rec)
        assert read_jsonl(path) == rec.events()

    def test_analysis_identical_after_round_trip(self, tmp_path):
        rec = build_two_worker_timeline()
        path = tmp_path / "run.jsonl"
        write_jsonl(rec.events(), path)
        direct = TraceAnalysis(rec.events())
        reloaded = TraceAnalysis(read_jsonl(path))
        assert reloaded.worker_utilization() == direct.worker_utilization()
        assert reloaded.critical_path_seconds == direct.critical_path_seconds
        assert (
            reloaded.total_queue_wait_seconds == direct.total_queue_wait_seconds
        )

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"t": 1.0, "kind": "rendezvous"}\n\n\n')
        assert len(read_jsonl(path)) == 1

    def test_bad_line_reported_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1.0, "kind": "rendezvous"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_jsonl(path)

    def test_missing_fields_reported(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 1}\n')
        with pytest.raises(ValueError, match="not a trace event"):
            read_jsonl(path)


class TestChromeTrace:
    def test_jobs_become_duration_events(self, tmp_path):
        rec = build_two_worker_timeline()
        path = tmp_path / "chrome.json"
        write_chrome_trace(rec.events(), path)
        payload = json.loads(path.read_text())
        jobs = [e for e in payload["traceEvents"] if e.get("cat") == "job"]
        assert len(jobs) == 3
        assert all(e["ph"] == "X" for e in jobs)
        assert all(e["dur"] >= 0 for e in jobs)

    def test_one_lane_per_worker_with_names(self, tmp_path):
        rec = build_two_worker_timeline()
        path = tmp_path / "chrome.json"
        write_chrome_trace(rec.events(), path)
        payload = json.loads(path.read_text())
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M"
        }
        assert {"worker A", "worker B", "master"} <= names

    def test_timestamps_relative_to_origin(self, tmp_path):
        rec = build_two_worker_timeline()
        path = tmp_path / "chrome.json"
        write_chrome_trace(rec.events(), path)
        payload = json.loads(path.read_text())
        stamps = [
            e["ts"] for e in payload["traceEvents"] if e["ph"] in ("X", "i")
        ]
        assert min(stamps) >= 0.0

    def test_instants_included(self, tmp_path):
        rec = TraceRecorder()
        rec.record("worker_spawn", worker=1, t=0.0)
        rec.record("retry", key=(1, 1), attempt=2, t=1.0)
        path = tmp_path / "chrome.json"
        write_chrome_trace(rec.events(), path)
        payload = json.loads(path.read_text())
        cats = {e["cat"] for e in payload["traceEvents"] if e["ph"] == "i"}
        assert cats == {"worker_spawn", "retry"}
