#!/usr/bin/env python
"""Reusing the glue for a different computation: Monte Carlo pi.

The paper's point about exogenous coordination is that the protocol
modules are *reusable*: "it is irrelevant to know what kind of
computation is performed in the master or the worker".  This example
proves it — the very same ``ProtocolMW`` manner that coordinates the
CFD solver here coordinates a Monte Carlo estimator, with no changes to
the protocol code.

Usage::

    python examples/custom_coordination.py [n_workers] [samples_per_worker]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    Runtime,
    run_application,
)
from repro.protocol import (
    MasterProtocolClient,
    WorkerJob,
    make_worker_definition,
    protocol_mw,
)


def monte_carlo_hits(job: tuple[int, int]) -> int:
    """Count darts landing inside the unit quarter-circle."""
    seed, n_samples = job
    rng = np.random.default_rng(seed)
    x = rng.random(n_samples)
    y = rng.random(n_samples)
    return int(np.count_nonzero(x * x + y * y <= 1.0))


def main() -> int:
    n_workers = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    per_worker = int(sys.argv[2]) if len(sys.argv) > 2 else 200_000

    worker_defn = make_worker_definition("PiWorker", monte_carlo_hits)
    estimate: dict[str, float] = {}

    def master_body(proc):
        client = MasterProtocolClient(proc, timeout=120)
        jobs = [WorkerJob(i, (i, per_worker)) for i in range(n_workers)]
        results = client.run_pool(jobs)
        hits = sum(r.payload for r in results)
        estimate["pi"] = 4.0 * hits / (n_workers * per_worker)
        client.finished()

    master_defn = AtomicDefinition(
        "PiMaster", master_body, in_ports=("input", "dataport")
    )

    runtime = Runtime("pi")

    def main_block():
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            master = ctx.spawn(master_defn)
            # the untouched CFD protocol, coordinating darts instead
            ctx.run_block(protocol_mw(master, worker_defn))
            ctx.terminated(master)
            ctx.halt()

        return block

    main = Coordinator(runtime, "Main", main_block, deadline=120)
    run_application(runtime, main, timeout=120)

    pi = estimate["pi"]
    error = abs(pi - np.pi)
    print(f"pi ~ {pi:.5f} from {n_workers} workers x {per_worker} samples "
          f"(error {error:.2e})")
    print("coordinated by the unmodified ProtocolMW manner")
    return 0 if error < 0.05 else 1


if __name__ == "__main__":
    raise SystemExit(main())
