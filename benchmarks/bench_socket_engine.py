"""The socket engine's coordination tax, priced against the fork pool.

The distributed configuration pays for what the in-process pool gets
free: daemon spawn (process + import, not just a fork), a framed TCP
round trip per job, and heartbeat traffic.  This bench measures that
tax end to end — same problem, same level, ``engine="socket"`` over
loopback daemons vs the warm fork pool — and itemizes the network side
from the engine's own accounting (framed bytes, send/recv seconds,
daemon spawn time).

There is no speedup claim here: on one machine the socket engine is
strictly overhead, and the point of the measurement is that the
overhead is (a) bounded and (b) fully accounted for — the wire seconds
plus spawn cost explain the gap.  Bitwise identity is asserted both
ways.

Runs in a fast smoke mode inside the tier-1 suite; set
``REPRO_SOCKET_ENGINE_FULL=1`` for the full measurement.
"""

from __future__ import annotations

import importlib.util
import json
import time
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

from repro.restructured import run_multiprocessing, shutdown_pool

ROOT = 2
_BENCH_DIR = Path(__file__).parent


def _bench_tools():
    """The shared bench recorder (``record_bench_run``), loaded by path
    so it resolves regardless of which conftest owns ``sys.modules``."""
    spec = importlib.util.spec_from_file_location(
        "repro_bench_conftest", _BENCH_DIR / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _threaded_dispatch_baseline() -> float | None:
    """The best thread-per-link-era dispatch time (wall minus daemon
    spawn) recorded in this bench's own trajectory file.  Reactor-era
    entries carry ``dispatch_model`` in ``extra_info``; the baseline is
    whatever predates that marker."""
    path = _BENCH_DIR / "BENCH_socket_engine.json"
    if not path.exists():
        return None
    try:
        runs = json.loads(path.read_text()).get("runs", [])
    except (ValueError, OSError):
        return None
    best = None
    for run in runs:
        for bench in run.get("benchmarks", []):
            if bench.get("name") != "test_socket_engine_vs_fork_pool":
                continue
            info = bench.get("extra_info") or {}
            if "dispatch_model" in info:
                continue  # reactor-era entry, not the baseline
            try:
                dispatch = float(info["socket_seconds"]) - float(
                    info["daemon_spawn_seconds"]
                )
            except (KeyError, TypeError, ValueError):
                continue
            best = dispatch if best is None else min(best, dispatch)
    return best


@pytest.mark.benchmark(group="socket-engine")
def test_socket_engine_vs_fork_pool(benchmark, socket_engine_settings):
    """Whole runs through each engine, identity asserted."""
    level = socket_engine_settings["level"]
    tol = socket_engine_settings["tol"]
    processes = socket_engine_settings["processes"]
    rounds = socket_engine_settings["rounds"]

    shutdown_pool()
    reference = run_multiprocessing(
        root=ROOT, level=level, tol=tol, processes=processes
    )
    pool_samples: list[float] = []

    def timed_pool_run():
        # per-round setup: interleave the engines so load hits both
        started = time.perf_counter()
        result = run_multiprocessing(
            root=ROOT, level=level, tol=tol, processes=processes
        )
        pool_samples.append(time.perf_counter() - started)
        assert np.array_equal(result.combined, reference.combined)

    result = benchmark.pedantic(
        lambda: run_multiprocessing(
            root=ROOT, level=level, tol=tol, processes=processes,
            engine="socket", hosts=f"localhost:{processes}",
        ),
        setup=timed_pool_run,
        rounds=rounds,
        iterations=1,
    )
    shutdown_pool()

    assert np.array_equal(result.combined, reference.combined)
    assert result.engine == "socket"
    assert result.daemons == processes
    assert result.reconnects == 0
    assert result.net_bytes_received > result.net_bytes_sent > 0

    pool_seconds = min(pool_samples)
    socket_seconds = min(benchmark.stats.stats.data)
    wire_seconds = result.net_send_seconds + result.net_recv_seconds
    spawn_seconds = result.pool_cold_start_seconds
    benchmark.extra_info["level"] = level
    benchmark.extra_info["dispatch_model"] = "reactor"
    benchmark.extra_info["pool_seconds"] = pool_seconds
    benchmark.extra_info["socket_seconds"] = socket_seconds
    benchmark.extra_info["daemon_spawn_seconds"] = spawn_seconds
    benchmark.extra_info["wire_seconds"] = wire_seconds
    benchmark.extra_info["framed_bytes"] = (
        result.net_bytes_sent + result.net_bytes_received
    )
    print(f"\nsocket engine at level {level}: pool {pool_seconds:.3f}s vs "
          f"socket {socket_seconds:.3f}s (daemon spawn {spawn_seconds:.3f}s, "
          f"wire {wire_seconds * 1e3:.1f} ms, "
          f"{result.net_bytes_sent + result.net_bytes_received} framed bytes)")
    # the tax must stay bounded: daemon spawn dominates, the wire is
    # milliseconds — the socket run may not cost more than the pool run
    # plus the spawn it visibly paid, with generous headroom for noise
    assert socket_seconds <= pool_seconds + spawn_seconds + 2.0


@pytest.mark.benchmark(group="socket-engine")
def test_reactor_vs_threaded_baseline(benchmark, socket_engine_settings):
    """The reactor rewrite's acceptance bench: dispatch at 4 daemons is
    no worse than the thread-per-link era, read from this bench's own
    recorded trajectory.  The comparison is on dispatch time (wall minus
    daemon spawn): spawn scales with the daemon count by construction,
    dispatch is where the reader threads and the blocking sleeps lived.
    The verdict is persisted to ``BENCH_socket_engine.json`` as a
    ``reactor_vs_threaded`` record."""
    level = socket_engine_settings["level"]
    tol = socket_engine_settings["tol"]
    rounds = socket_engine_settings["rounds"]
    daemons = 4

    shutdown_pool()
    reference = run_multiprocessing(root=ROOT, level=level, tol=tol, processes=2)
    shutdown_pool()
    baseline = _threaded_dispatch_baseline()

    result = benchmark.pedantic(
        lambda: run_multiprocessing(
            root=ROOT, level=level, tol=tol, processes=daemons,
            engine="socket", hosts=f"localhost:{daemons}",
        ),
        rounds=rounds,
        iterations=1,
    )
    assert np.array_equal(result.combined, reference.combined)
    assert result.daemons == daemons
    assert result.reconnects == 0

    socket_seconds = min(benchmark.stats.stats.data)
    spawn_seconds = result.pool_cold_start_seconds
    dispatch_seconds = socket_seconds - spawn_seconds
    benchmark.extra_info["dispatch_model"] = "reactor"
    benchmark.extra_info["daemons"] = daemons
    benchmark.extra_info["dispatch_seconds"] = dispatch_seconds
    benchmark.extra_info["daemon_spawn_seconds"] = spawn_seconds
    comparison = {
        "dispatch_model": "reactor",
        "daemons": daemons,
        "level": level,
        "reactor_dispatch_seconds": dispatch_seconds,
    }
    if baseline is not None:
        comparison["threaded_dispatch_seconds"] = baseline
        benchmark.extra_info["threaded_dispatch_seconds"] = baseline
    _bench_tools().record_bench_run(
        "socket_engine",
        [SimpleNamespace(
            name="reactor_vs_threaded",
            group="socket-engine",
            extra_info=comparison,
        )],
    )
    print(
        f"\nreactor dispatch at {daemons} daemons: {dispatch_seconds:.3f}s"
        + (
            f" vs threaded baseline {baseline:.3f}s"
            if baseline is not None
            else " (no threaded baseline recorded)"
        )
    )
    if baseline is not None:
        # throughput no worse than the threaded engine, with headroom
        # for a single-core CI machine's scheduling noise
        assert dispatch_seconds <= baseline + 1.0
