"""Real OS task instances with perpetual reuse."""

from __future__ import annotations

import numpy as np
import pytest

import os
import signal
import time

from repro.restructured import TaskInstanceDied, TaskInstanceEngine, run_concurrent
from repro.restructured.worker import SubsolveJobSpec, execute_job
from repro.sparsegrid import SequentialApplication


def spec(l=1, m=1, tol=1e-3):
    return SubsolveJobSpec(
        problem_name="rotating-cone", root=2, l=l, m=m, tol=tol, t_end=0.25
    )


class TestComputation:
    def test_matches_in_process_execution(self):
        with TaskInstanceEngine() as engine:
            payload = engine.compute(spec())
        assert np.array_equal(payload.solution, execute_job(spec()).solution)

    def test_sequential_jobs_reuse_one_instance(self):
        """The §6 effect, on real processes: five workers, one task
        instance, because each worker dies before the next arrives."""
        with TaskInstanceEngine() as engine:
            for l in range(3):
                engine.compute(spec(l=l, m=0))
            stats = engine.stats
        assert stats.jobs == 3
        assert stats.spawned == 1
        assert stats.reused == 2

    def test_non_perpetual_spawns_per_job(self):
        with TaskInstanceEngine(perpetual=False) as engine:
            for l in range(3):
                engine.compute(spec(l=l, m=0))
            stats = engine.stats
        assert stats.spawned == 3
        assert stats.reused == 0

    def test_instance_accounting(self):
        engine = TaskInstanceEngine()
        try:
            engine.compute(spec())
            assert engine.live_instances == 1
            assert engine.idle_instances == 1
        finally:
            engine.close()

    def test_worker_exception_propagates_and_instance_discarded(self):
        bad = SubsolveJobSpec(
            problem_name="no-such-problem", root=2, l=0, m=0, tol=1e-3
        )
        with TaskInstanceEngine() as engine:
            with pytest.raises(RuntimeError, match="task instance failed"):
                engine.compute(bad)
            assert engine.live_instances == 0
            # the engine still works afterwards
            engine.compute(spec())

    def test_closed_engine_rejects_jobs(self):
        engine = TaskInstanceEngine()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.compute(spec())

    def test_close_idempotent(self):
        engine = TaskInstanceEngine()
        engine.compute(spec())
        engine.close()
        engine.close()

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            TaskInstanceEngine(max_instances=0)


class TestLifecycleFaults:
    """Regressions for the shutdown race and the died-worker traceback.

    Before the fix, ``stop()`` sent ``_STOP`` and closed the channel
    with a reply still in flight (child traceback, nonzero exit), and a
    task instance that died between or under jobs surfaced as a raw
    ``EOFError``/``BrokenPipeError`` escaping the engine.
    """

    def _kill_and_reap(self, pid: int) -> None:
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return
            time.sleep(0.01)

    def test_stop_drains_inflight_result(self):
        """A reply larger than the pipe buffer is in flight when stop()
        arrives: the serve loop must still exit cleanly (the drain reads
        the reply; the _STOP never interleaves with it)."""
        import multiprocessing

        from repro.restructured.taskengine import _TaskInstance

        instance = _TaskInstance(multiprocessing.get_context("fork"))
        try:
            # ~130 KB solution — the child's send blocks until drained
            instance.channel.send(spec(l=5, m=5))
            instance.stop()
            assert instance.process.exitcode == 0
        finally:
            if instance.process.is_alive():  # pragma: no cover - cleanup
                instance.process.terminate()

    def test_death_between_jobs_is_structured_fault(self):
        with TaskInstanceEngine() as engine:
            engine.compute(spec(l=0, m=0))  # warm one perpetual instance
            pid = engine._idle[0].process.pid
            self._kill_and_reap(pid)
            with pytest.raises(TaskInstanceDied) as exc_info:
                engine.compute(spec(l=0, m=0))
            assert exc_info.value.fault_kind == "death_worker"
            assert engine.live_instances == 0
            # the engine recovers with a fresh instance
            payload = engine.compute(spec(l=0, m=0))
            assert payload.solution.shape == (5, 5)

    def test_crash_under_job_is_structured_fault(self):
        import threading

        with TaskInstanceEngine() as engine:
            engine.compute(spec(l=0, m=0))
            pid = engine._idle[0].process.pid
            raised: list[BaseException] = []

            def run_long_job():
                try:
                    engine.compute(spec(l=5, m=5))  # ~0.7 s of compute
                except BaseException as exc:  # noqa: BLE001
                    raised.append(exc)

            thread = threading.Thread(target=run_long_job)
            thread.start()
            time.sleep(0.2)  # let the job reach the child
            self._kill_and_reap(pid)
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert len(raised) == 1
            assert isinstance(raised[0], TaskInstanceDied)
            # a dead instance is never reused
            assert engine.live_instances == 0
            engine.compute(spec(l=0, m=0))


class TestThroughProtocol:
    def test_full_application_bitwise_identical(self):
        """The complete stack: MANIFOLD coordination, each worker's
        computation in its own (reusable) OS task instance."""
        seq = SequentialApplication(root=2, level=1, tol=1e-3).run()
        with TaskInstanceEngine(max_instances=2) as engine:
            result, _ = run_concurrent(
                root=2, level=1, tol=1e-3, engine=engine, timeout=240
            )
            stats = engine.stats
        assert np.array_equal(seq.combined, result.combined)
        assert stats.jobs == 3
        assert stats.spawned <= 2  # the cap held; reuse covered the rest
