"""Validating the cluster simulator against the socket engine.

The simulator (:mod:`repro.cluster.simulator`) predicts the overhead
decomposition of a distributed run — startup, send wait, result wait,
critical-path work, prolongation, recovery — from timing constants and
a network model.  Until now those predictions could only be compared
with the *paper's* numbers.  The socket engine
(:mod:`repro.restructured.netengine`) closes the loop: the same
master/worker protocol runs over real TCP on this machine, and its
trace records where the time actually went.

:func:`validate_socket_engine` runs one problem through both paths:

1. the **socket engine** on localhost daemons, traced, yielding the
   *measured* decomposition (spawn cost, framed-byte send/recv time,
   compute critical path, master-side combination);
2. the **simulator**, fed per-grid :class:`~repro.cluster.simulator.
   GridCost` records built from the measured payloads themselves (wall
   seconds and result bytes), with this machine's constants — measured
   daemon spawn time, gigabit-class loopback, no multi-user noise —
   yielding the *predicted* decomposition for the identical workload.

The two decompositions are reported side by side.  They will not agree
to the digit — the simulator models a 2003 machine room, the loopback
run measures one 2026 host — but the *shape* must match: work dominates,
network time is small against compute, and the constants sit where the
constants were measured.  The harness also asserts the part that must
be exact: the socket run's combined solution is bitwise identical to
the sequential application's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .host import uniform_cluster
from .network import EthernetModel
from .noise import MultiUserNoise
from .simulator import GridCost, SimulationParams, simulate_distributed

__all__ = ["ValidationReport", "validate_socket_engine"]

#: the decomposition rows, in report order
_CATEGORIES = (
    "startup",
    "master_init",
    "fork",
    "handshake",
    "events",
    "send_wait",
    "result_wait",
    "work_critical",
    "prolongation",
    "recovery",
    "shutdown",
)


@dataclass
class ValidationReport:
    """Predicted-vs-measured decomposition of one localhost run."""

    root: int
    level: int
    tol: float
    processes: int
    n_grids: int
    bitwise_identical: bool
    predicted: dict[str, float]
    measured: dict[str, float]
    predicted_elapsed: float
    measured_elapsed: float
    reconnects: int = 0
    network_bytes: int = 0
    notes: list[str] = field(default_factory=list)

    def lines(self) -> list[str]:
        out = [
            f"socket-engine validation: root={self.root} level={self.level} "
            f"tol={self.tol:g}, {self.n_grids} grids on "
            f"{self.processes} localhost daemon(s)",
            f"bitwise identical to sequential: {self.bitwise_identical}",
            f"{'category':<14} {'predicted':>12} {'measured':>12}",
        ]
        for cat in _CATEGORIES:
            p = self.predicted.get(cat, 0.0)
            m = self.measured.get(cat, 0.0)
            if p == 0.0 and m == 0.0:
                continue
            out.append(f"{cat:<14} {p:>11.3f}s {m:>11.3f}s")
        out.append(
            f"{'elapsed':<14} {self.predicted_elapsed:>11.3f}s "
            f"{self.measured_elapsed:>11.3f}s"
        )
        out.append(
            f"network: {self.network_bytes} framed bytes, "
            f"{self.reconnects} reconnect(s)"
        )
        out.extend(self.notes)
        return out


def validate_socket_engine(
    root: int = 2,
    level: int = 5,
    tol: float = 1.0e-3,
    problem_name: str = "rotating-cone",
    processes: int = 2,
    seed: int = 20040101,
) -> ValidationReport:
    """Run one problem through the socket engine and the simulator.

    The socket run comes first — its payloads provide the per-grid
    costs the simulator is then fed, so both decompositions describe
    the *same* workload.  Uses the pickle data plane so every result
    byte actually crosses the socket (the shm path would hide the
    result transfer from the network accounting).
    """
    from repro.sparsegrid import SequentialApplication
    from repro.sparsegrid.registry import make_problem
    from repro.restructured import run_multiprocessing
    from repro.trace import TraceAnalysis, TraceRecorder

    recorder = TraceRecorder()
    result = run_multiprocessing(
        root=root,
        level=level,
        tol=tol,
        problem_name=problem_name,
        processes=processes,
        engine="socket",
        hosts=f"localhost:{processes}",
        data_plane="pickle",
        trace=recorder,
    )
    analysis = TraceAnalysis(recorder.events())

    sequential = SequentialApplication(
        root=root, level=level, tol=tol, problem=make_problem(problem_name)
    ).run()
    bitwise = bool(np.array_equal(sequential.combined, result.combined))

    measured = {cat: 0.0 for cat in _CATEGORIES}
    measured["startup"] = result.pool_cold_start_seconds
    measured["send_wait"] = analysis.net_send_seconds
    measured["result_wait"] = analysis.net_recv_seconds
    measured["work_critical"] = analysis.critical_path_seconds
    measured["prolongation"] = result.combine_seconds
    if analysis.n_faults:
        measured["recovery"] = analysis.recovery_overhead_seconds

    # the simulator's workload: the measured jobs themselves.  The
    # cluster clocks at the 1200 MHz reference, so measured wall
    # seconds pass through as reference seconds unscaled.
    costs = [
        GridCost(
            l=payload.l,
            m=payload.m,
            work_ref_seconds=payload.wall_seconds,
            result_bytes=int(payload.solution.nbytes),
        )
        for payload in result.payloads.values()
    ]
    cluster = uniform_cluster(processes + 1, clock_mhz=1200)
    params = SimulationParams(
        # this machine's constants, not the 2003 testbed's
        startup_seconds=result.pool_cold_start_seconds,
        master_init_seconds=0.0,
        event_latency_seconds=0.0001,
        fork_seconds=0.05,
        handshake_seconds=0.005,
        ship_initial_data=False,
        shutdown_seconds=0.0,
        network=EthernetModel(bandwidth_mbps=1000, latency_s=0.05e-3),
        noise=MultiUserNoise.quiet(),
    )
    run = simulate_distributed(
        [costs],
        cluster,
        params,
        np.random.default_rng(seed),
        master_prolongation_ref_seconds=result.combine_seconds,
    )
    predicted = {cat: run.breakdown.get(cat, 0.0) for cat in _CATEGORIES}

    notes = [
        "note: master dispatch is a single-threaded selectors reactor — "
        "wire time is multiplexed, never serialized behind a sleeping "
        "retry or reconnect"
    ]
    if result.reconnects:
        notes.append(
            f"note: {result.reconnects} reconnect(s) occurred — the "
            "measured decomposition includes real recovery time"
        )
    return ValidationReport(
        root=root,
        level=level,
        tol=tol,
        processes=processes,
        n_grids=len(result.payloads),
        bitwise_identical=bitwise,
        predicted=predicted,
        measured=measured,
        predicted_elapsed=run.elapsed_seconds,
        measured_elapsed=result.total_seconds,
        reconnects=result.reconnects,
        network_bytes=analysis.network_bytes,
        notes=notes,
    )
