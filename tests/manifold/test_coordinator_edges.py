"""Coordinator and runtime edge cases not covered elsewhere."""

from __future__ import annotations

import time

import pytest

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    Event,
    ProcessError,
    ProcessState,
    Runtime,
    StateMachineError,
    run_application,
)
from repro.manifold.units import ProcessReference, Unit


class TestUnits:
    def test_unit_sequence_increases(self):
        a, b = Unit("x"), Unit("y")
        assert b.seq > a.seq

    def test_reference_detection(self, runtime):
        proc = runtime.create(AtomicDefinition("p", lambda p: None))
        assert Unit(ProcessReference(proc)).is_reference()
        assert not Unit("plain").is_reference()

    def test_reference_name(self, runtime):
        proc = runtime.create(AtomicDefinition("p", lambda p: None))
        assert ProcessReference(proc).name == proc.name


class TestCoordinatorLifecycle:
    def test_prebuilt_block_accepted(self, runtime):
        block = Block("ready")

        @block.state(BEGIN)
        def begin(ctx):
            ctx.halt()

        coordinator = Coordinator(runtime, "C", block)
        coordinator.activate()
        assert coordinator.join(timeout=5)
        assert coordinator.state is ProcessState.TERMINATED

    def test_failure_traceback_recorded(self, runtime):
        def factory():
            block = Block("bad")

            @block.state(BEGIN)
            def begin(ctx):
                raise ValueError("inside state body")

            return block

        coordinator = Coordinator(runtime, "C", factory)
        coordinator.activate()
        coordinator.join(timeout=5)
        assert isinstance(coordinator.failure, ValueError)
        assert "inside state body" in coordinator.failure_traceback

    def test_kill_unblocks_coordinator(self, runtime):
        def factory():
            block = Block("hang")

            @block.state(BEGIN)
            def begin(ctx):
                ctx.idle()

            return block

        coordinator = Coordinator(runtime, "C", factory)
        coordinator.activate()
        time.sleep(0.05)
        coordinator.kill()
        assert coordinator.join(timeout=5)

    def test_deadline_inside_nested_block(self, runtime):
        def factory():
            outer = Block("outer")

            @outer.state(BEGIN)
            def begin(ctx):
                inner = Block("inner", save_all=True)

                @inner.state(BEGIN)
                def inner_begin(ictx):
                    ictx.idle()  # nothing can preempt: save_all shields

                ctx.run_block(inner)

            return outer

        coordinator = Coordinator(
            runtime, "C", factory, deadline=0.2, poll_interval=0.02
        )
        coordinator.activate()
        assert coordinator.join(timeout=5)
        assert isinstance(coordinator.failure, StateMachineError)

    def test_top_level_unhandled_event_ends_cleanly(self, runtime):
        """An event matching no label of the outermost block while it
        idles must not crash the coordinator (documented as a clean
        top-level end)."""
        surprise = Event("surprise")

        def factory():
            block = Block("only-begin")

            @block.state(BEGIN)
            def begin(ctx):
                ctx.halt()

            return block

        coordinator = Coordinator(runtime, "C", factory)
        runtime.raise_event(surprise)
        coordinator.activate()
        assert coordinator.join(timeout=5)
        assert coordinator.failure is None


class TestRunApplication:
    def test_raises_unhandled_worker_failure(self, runtime):
        def bad_worker(proc):
            raise RuntimeError("unhandled")

        def factory():
            block = Block("Main")

            @block.state(BEGIN)
            def begin(ctx):
                worker = ctx.spawn(AtomicDefinition("W", bad_worker))
                ctx.terminated(worker)
                ctx.halt()

            return block

        main = Coordinator(runtime, "Main", factory, deadline=10)
        with pytest.raises(RuntimeError, match="unhandled"):
            run_application(runtime, main, timeout=10)

    def test_skips_handled_worker_failure(self, runtime):
        def bad_worker(proc):
            raise RuntimeError("handled elsewhere")

        def factory():
            block = Block("Main")

            @block.state(BEGIN)
            def begin(ctx):
                worker = ctx.spawn(AtomicDefinition("W", bad_worker))
                ctx.terminated(worker)
                worker.failure_handled = True
                ctx.halt()

            return block

        main = Coordinator(runtime, "Main", factory, deadline=10)
        run_application(runtime, main, timeout=10)  # must not raise

    def test_timeout_reported(self, runtime):
        def factory():
            block = Block("hang")

            @block.state(BEGIN)
            def begin(ctx):
                ctx.idle()

            return block

        main = Coordinator(runtime, "Main", factory)
        with pytest.raises(ProcessError, match="did not finish"):
            run_application(runtime, main, timeout=0.3)


class TestRuntimeTrace:
    def test_trace_callback_records_lifecycle(self):
        lines: list[str] = []
        with Runtime("traced", trace=lines.append) as runtime:
            proc = runtime.spawn(AtomicDefinition("quick", lambda p: None))
            proc.join(timeout=5)
            runtime.raise_event(Event("ping"))
        text = "\n".join(lines)
        assert "create quick" in text
        assert "activate quick" in text
        assert "death quick" in text
        assert "event ping" in text
        assert "shutdown" in text
