"""Real multi-core execution via ``multiprocessing`` — the GIL workaround.

The coordination-faithful configurations in :mod:`mainprog` demonstrate
the protocol; this module is the measurement configuration for *actual*
speedup on the present machine: the same grids, the same ``subsolve``,
fanned out over a process pool, with the same prolongation at the end.
Because ``subsolve`` touches only its own grid (the paper's cut
criterion), the fan-out is embarrassingly parallel and results are
bitwise identical to the sequential loop.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sparsegrid.combination import combine
from repro.sparsegrid.grid import Grid, nested_loop_grids

from .worker import SubsolveJobSpec, SubsolvePayload, execute_job

__all__ = ["MultiprocessingResult", "run_multiprocessing"]


@dataclass
class MultiprocessingResult:
    root: int
    level: int
    tol: float
    processes: int
    payloads: dict[tuple[int, int], SubsolvePayload]
    target_grid: Grid
    combined: np.ndarray
    total_seconds: float
    pool_seconds: float

    @property
    def n_workers(self) -> int:
        return len(self.payloads)


def run_multiprocessing(
    root: int = 2,
    level: int = 2,
    tol: float = 1.0e-3,
    problem_name: str = "rotating-cone",
    problem_kwargs: Optional[dict] = None,
    *,
    processes: Optional[int] = None,
    t_end: Optional[float] = None,
    scheme: str = "upwind",
    target_cap: int | None = 8,
) -> MultiprocessingResult:
    """Run the whole application with a process pool over the grids."""
    t_start = time.perf_counter()
    kw_pairs = tuple(sorted((problem_kwargs or {}).items()))
    specs = [
        SubsolveJobSpec(
            problem_name=problem_name,
            root=root,
            l=g.l,
            m=g.m,
            tol=tol,
            t_end=t_end,
            scheme=scheme,
            problem_kwargs=kw_pairs,
        )
        for g in nested_loop_grids(root, level)
    ]
    n_proc = processes or min(len(specs), multiprocessing.cpu_count())
    t_pool = time.perf_counter()
    with multiprocessing.get_context("fork").Pool(n_proc) as pool:
        payload_list = pool.map(execute_job, specs)
    pool_seconds = time.perf_counter() - t_pool

    payloads = {(p.l, p.m): p for p in payload_list}
    solutions = {key: p.solution for key, p in payloads.items()}
    target_grid, combined = combine(solutions, root, level, target_cap=target_cap)
    return MultiprocessingResult(
        root=root,
        level=level,
        tol=tol,
        processes=n_proc,
        payloads=payloads,
        target_grid=target_grid,
        combined=combined,
        total_seconds=time.perf_counter() - t_start,
        pool_seconds=pool_seconds,
    )
