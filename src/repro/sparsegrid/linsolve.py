"""The linear-system layer of the implicit time integrator.

Every Rosenbrock stage solves ``(I - gamma*h*J) k = rhs``.  The original
program's profile note — "this A matrix must be built up in the program
which takes a lot of time" — corresponds here to the sparse LU
factorization.  Because ``J`` is constant (the problem is linear) the
factorization depends only on the step size ``h``; the cache refactors
only when the adaptive controller actually changes ``h``, and counts
factorizations and triangular solves for the cost model.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Hashable, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["FactorCache", "RosenbrockSystemSolver"]


class FactorCache:
    """A bounded LRU of LU factors keyed by any hashable key.

    The unsplit path keys by step size ``h`` alone: the factor of
    ``(I - gamma*h*J)`` depends only on ``(J, gamma, h)`` — not on the
    tolerance or the time span — so one cache instance can outlive many
    integrations of the same operator (the warm path: the n-run
    averaging protocol re-solves the identical grid and replays the
    identical ``h`` sequence).  The split path
    (:mod:`repro.sparsegrid.decompose`) stores strip and interface
    factors in the *same* cache under composite keys
    ``(split-signature, strip, h)`` / ``(split-signature, 'schur', h)``,
    so the two never collide and a grid's split and unsplit factors
    share one eviction budget.  Reusing a factor is bitwise safe:
    ``splu`` is deterministic, the cached object *is* the object a fresh
    factorization would produce.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._factors: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._factors)

    def get(self, h: Hashable) -> Optional[object]:
        lu = self._factors.get(h)
        if lu is None:
            self.misses += 1
            return None
        self._factors.move_to_end(h)
        self.hits += 1
        return lu

    def put(self, h: Hashable, lu: object) -> None:
        self._factors[h] = lu
        self._factors.move_to_end(h)
        while len(self._factors) > self.maxsize:
            self._factors.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._factors.clear()


class RosenbrockSystemSolver:
    """Factorization cache for ``(I - gamma*h*J)``."""

    def __init__(
        self,
        J: sp.spmatrix,
        gamma: float,
        *,
        factor_cache: Optional[FactorCache] = None,
    ) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.J = J.tocsc()
        self.gamma = gamma
        self.n = J.shape[0]
        self._identity = sp.identity(self.n, format="csc")
        self._lu: Optional[spla.SuperLU] = None
        self._h: Optional[float] = None
        #: optional cross-run factor store (the warm path); ``None``
        #: keeps the original single-factor behaviour
        self._factor_cache = factor_cache
        #: statistics for the cost model
        self.factorizations = 0
        self.solves = 0
        self.factor_seconds = 0.0
        self.solve_seconds = 0.0
        #: reuse accounting for the E9 overhead decomposition
        self.prepare_calls = 0
        self.reuse_hits = 0
        self.factor_cache_hits = 0

    @property
    def reuse_ratio(self) -> float:
        """Fraction of ``prepare()`` calls served without a fresh LU."""
        if self.prepare_calls == 0:
            return 0.0
        return self.reuse_hits / self.prepare_calls

    def prepare(self, h: float) -> None:
        """(Re)factorize for step size ``h`` if it changed."""
        if h <= 0:
            raise ValueError(f"step size must be positive, got {h}")
        self.prepare_calls += 1
        if self._h is not None and h == self._h:
            self.reuse_hits += 1
            return
        if self._factor_cache is not None:
            cached = self._factor_cache.get(h)
            if cached is not None:
                self._lu = cached
                self._h = h
                self.reuse_hits += 1
                self.factor_cache_hits += 1
                return
        started = time.perf_counter()
        matrix = (self._identity - (self.gamma * h) * self.J).tocsc()
        self._lu = spla.splu(matrix)
        self._h = h
        self.factorizations += 1
        self.factor_seconds += time.perf_counter() - started
        if self._factor_cache is not None:
            self._factor_cache.put(h, self._lu)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - gamma*h*J) x = rhs`` with the current factor."""
        if self._lu is None:
            raise RuntimeError("prepare(h) must be called before solve()")
        started = time.perf_counter()
        x = self._lu.solve(rhs)
        self.solves += 1
        self.solve_seconds += time.perf_counter() - started
        return x

    @property
    def current_h(self) -> Optional[float]:
        return self._h
