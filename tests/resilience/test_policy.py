"""Retry/deadline/escalation policies and the structured fault record."""

from __future__ import annotations

import pytest

from repro.resilience import (
    DeadlinePolicy,
    EscalationPolicy,
    EscalationStep,
    FaultEvent,
    FaultLog,
    FaultReport,
    FaultToleranceExhausted,
    RetryPolicy,
    deterministic_fraction,
)


class TestDeterministicFraction:
    def test_in_unit_interval_and_reproducible(self):
        a = deterministic_fraction(0, (3, 2), 1)
        b = deterministic_fraction(0, (3, 2), 1)
        assert 0.0 <= a < 1.0
        assert a == b

    def test_distinct_inputs_give_distinct_draws(self):
        draws = {deterministic_fraction(0, k, 1) for k in range(50)}
        assert len(draws) == 50


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay_seconds(0)

    def test_backoff_grows_exponentially_up_to_cap(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_factor=2.0,
            max_backoff_seconds=0.3, jitter=0.0,
        )
        assert policy.delay_seconds(1) == pytest.approx(0.1)
        assert policy.delay_seconds(2) == pytest.approx(0.2)
        assert policy.delay_seconds(3) == pytest.approx(0.3)  # capped
        assert policy.delay_seconds(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_seconds=1.0, jitter=0.25)
        d1 = policy.delay_seconds(1, key=(3, 2))
        d2 = policy.delay_seconds(1, key=(3, 2))
        assert d1 == d2
        assert 0.75 <= d1 <= 1.25
        # a different key jitters differently
        assert d1 != policy.delay_seconds(1, key=(2, 3))


class TestDeadlinePolicy:
    def test_scales_with_prediction_above_floor(self):
        policy = DeadlinePolicy(factor=8.0, floor_seconds=2.0)
        assert policy.deadline_seconds(10.0) == pytest.approx(80.0)
        assert policy.deadline_seconds(0.001) == pytest.approx(2.0)

    def test_default_without_prediction(self):
        policy = DeadlinePolicy(default_seconds=60.0, floor_seconds=2.0)
        assert policy.deadline_seconds(None) == pytest.approx(60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(factor=0.0)
        with pytest.raises(ValueError):
            DeadlinePolicy(floor_seconds=0.0)


class _Stall:
    """Duck-typed stand-in for a watchdog StallReport."""

    def __init__(self, seconds: float) -> None:
        self.stalled_for_seconds = seconds
        self.live_processes = ("Master", "Worker-1")

    def describe(self) -> str:
        return f"stalled {self.stalled_for_seconds:.1f}s"


class TestDeadlinePolicyStallBridge:
    def test_short_stalls_filtered_out(self):
        policy = DeadlinePolicy(floor_seconds=2.0)
        assert policy.report_from_stalls([_Stall(0.5)]) is None

    def test_qualifying_stall_becomes_fault_report(self):
        policy = DeadlinePolicy(floor_seconds=2.0)
        report = policy.report_from_stalls([_Stall(0.5), _Stall(5.0)])
        assert isinstance(report, FaultReport)
        assert report.faults == 1
        event = report.events[0]
        assert event.kind == "stall"
        assert event.detected_by == "watchdog"
        assert event.seconds_lost == pytest.approx(5.0)
        assert "stalled 5.0s" in event.error


class TestEscalationPolicy:
    def test_transient_faults_retry_in_place(self):
        policy = EscalationPolicy(retry=RetryPolicy(max_attempts=3))
        assert policy.decide(1, "exception") is EscalationStep.RETRY
        assert policy.decide(2, "exception") is EscalationStep.RETRY

    def test_worker_loss_reassigns(self):
        policy = EscalationPolicy(retry=RetryPolicy(max_attempts=3))
        for kind in ("crash", "hang", "deadline", "death_worker"):
            assert policy.decide(1, kind) is EscalationStep.REASSIGN

    def test_exhausted_attempts_fall_back_then_fail(self):
        policy = EscalationPolicy(retry=RetryPolicy(max_attempts=2))
        assert policy.decide(2, "crash") is EscalationStep.FALLBACK
        strict = EscalationPolicy(
            retry=RetryPolicy(max_attempts=2), sequential_fallback=False
        )
        assert strict.decide(2, "crash") is EscalationStep.FAIL


class TestFaultRecord:
    def _event(self, **kw) -> FaultEvent:
        base = dict(
            key=(3, 2), kind="crash", attempt=1,
            action="reassign", detected_by="liveness",
        )
        base.update(kw)
        return FaultEvent(**base)

    def test_event_describe_names_everything(self):
        text = self._event(error="pid 42 died").describe()
        assert "crash" in text and "(3, 2)" in text
        assert "reassign" in text and "pid 42 died" in text

    def test_log_is_ordered_and_reportable(self):
        log = FaultLog()
        log.record(self._event(attempt=1))
        log.record(self._event(attempt=2, kind="deadline"))
        assert len(log) == 2
        report = log.report(recovered_keys=[(3, 2)])
        assert report.faults == 2
        assert report.recovered == 1
        assert report.survived
        assert [e.attempt for e in report.events] == [1, 2]

    def test_exhaustion_carries_the_report(self):
        report = FaultReport(
            events=(self._event(action="fail"),), failed_key=(3, 2)
        )
        exc = FaultToleranceExhausted(report)
        assert exc.report is report
        assert not report.survived
        assert "crash" in str(exc)

    def test_report_describe_has_summary_line(self):
        report = FaultReport(
            events=(self._event(),), recovered_keys=((3, 2),)
        )
        lines = report.lines()
        assert "faults: 1" in lines[0]
        assert "recovered: 1" in lines[0]
        assert len(lines) == 2
