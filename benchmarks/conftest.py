"""Shared benchmark fixtures.

The cost model is calibrated once against the real solver (levels 4-6,
both tolerances) and cached to ``benchmarks/.calibration.json`` so
repeated benchmark invocations skip the ~10 s of measurement.

Every bench run also persists its perf trajectory: a
``pytest_sessionfinish`` hook groups the session's benchmark stats by
module and appends one run record (git rev, timestamp, medians, the
speedup ratios carried in ``extra_info``) to ``BENCH_<name>.json``
next to the bench files, so speedups and regressions are tracked
across PRs instead of claimed in commit messages.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.harness import Table1Experiment
from repro.perf.costmodel import CostModel, measure_costs

CACHE = Path(__file__).parent / ".calibration.json"
CALIBRATION_LEVELS = [4, 5, 6]
TOLS = [1.0e-3, 1.0e-4]

BENCH_DIR = Path(__file__).parent
#: runs retained per ``BENCH_<name>.json`` trajectory file
BENCH_HISTORY_CAP = 50


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_DIR, capture_output=True, text=True, check=True,
            timeout=10,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def _jsonable(value):
    """Coerce ``extra_info`` values (possibly numpy scalars) to JSON."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _bench_entry(bench) -> dict:
    """One benchmark's record: name, stats medians, extra_info ratios."""
    entry: dict = {"name": getattr(bench, "name", "") or ""}
    group = getattr(bench, "group", None)
    if group:
        entry["group"] = group
    stats = getattr(bench, "stats", None)
    if stats is not None:
        for field in ("median", "mean", "stddev", "rounds"):
            value = getattr(stats, field, None)
            if value is not None:
                entry[field] = (
                    int(value) if field == "rounds" else float(value)
                )
    extra = dict(getattr(bench, "extra_info", None) or {})
    if extra:
        entry["extra_info"] = {
            key: _jsonable(val) for key, val in sorted(extra.items())
        }
    return entry


def record_bench_run(name: str, benches, *, directory: Path = None) -> Path:
    """Append one run record to ``BENCH_<name>.json`` (capped history).

    The shared writer behind the session hook; benches (or tests) can
    call it directly to persist out-of-band measurements.
    """
    directory = BENCH_DIR if directory is None else directory
    path = directory / f"BENCH_{name}.json"
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text()).get("runs", [])
        except (ValueError, OSError):
            history = []
    history.append({
        "git_rev": _git_rev(),
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "benchmarks": [_bench_entry(b) for b in benches],
    })
    payload = {
        "benchmark": name,
        "runs": history[-BENCH_HISTORY_CAP:],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def pytest_sessionfinish(session, exitstatus):
    """Persist the session's benchmark stats as per-module trajectories."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module: dict[str, list] = {}
    for bench in bench_session.benchmarks:
        fullname = getattr(bench, "fullname", "") or ""
        stem = Path(fullname.split("::")[0]).stem
        name = stem[len("bench_"):] if stem.startswith("bench_") else stem
        if name:
            by_module.setdefault(name, []).append(bench)
    for name, benches in sorted(by_module.items()):
        record_bench_run(name, benches)

#: ``REPRO_WARM_PATH_FULL=1`` switches bench_warm_path from the fast
#: smoke mode (default, runs inside the tier-1 suite so the cold/warm
#: ratio lands in every bench JSON trajectory) to the full measurement.
WARM_PATH_FULL = os.environ.get("REPRO_WARM_PATH_FULL", "") not in ("", "0")

#: ``REPRO_FAULT_RECOVERY_FULL=1`` switches bench_fault_recovery from
#: the fast smoke mode to a bigger level and more rounds.
FAULT_RECOVERY_FULL = os.environ.get(
    "REPRO_FAULT_RECOVERY_FULL", ""
) not in ("", "0")

#: ``REPRO_DATA_PLANE_FULL=1`` switches bench_data_plane from the fast
#: smoke mode to a bigger level and more rounds.
DATA_PLANE_FULL = os.environ.get("REPRO_DATA_PLANE_FULL", "") not in ("", "0")

#: ``REPRO_SOCKET_ENGINE_FULL=1`` switches bench_socket_engine from the
#: fast smoke mode to a bigger level and more rounds.
SOCKET_ENGINE_FULL = os.environ.get(
    "REPRO_SOCKET_ENGINE_FULL", ""
) not in ("", "0")

#: ``REPRO_SPLIT_SOLVE_FULL=1`` switches bench_split_solve from the
#: fast smoke mode (short integration window, tier-1 suite) to the full
#: measurement (whole integration window, more rounds).
SPLIT_SOLVE_FULL = os.environ.get(
    "REPRO_SPLIT_SOLVE_FULL", ""
) not in ("", "0")


@pytest.fixture(scope="session")
def warm_path_settings() -> dict:
    """Configuration of the warm-path bench: mid-size level either way,
    the full mode just runs more rounds and a tighter makespan tol."""
    if WARM_PATH_FULL:
        return {
            "full": True,
            "level": 5, "tol": 1.0e-3,
            "cold_rounds": 3, "warm_rounds": 5,
            "makespan_level": 6, "makespan_tol": 1.0e-4,
            "makespan_workers": 8,
        }
    return {
        "full": False,
        "level": 5, "tol": 1.0e-3,
        "cold_rounds": 2, "warm_rounds": 3,
        "makespan_level": 6, "makespan_tol": 1.0e-3,
        "makespan_workers": 8,
    }


@pytest.fixture(scope="session")
def fault_recovery_settings() -> dict:
    """Configuration of the fault-recovery bench: one seeded worker
    kill, recovery priced against the fault-free wall time."""
    if FAULT_RECOVERY_FULL:
        return {
            "full": True,
            "level": 5, "tol": 1.0e-3, "processes": 2,
            "rounds": 3, "fault": "crash@2,3",
        }
    return {
        "full": False,
        "level": 3, "tol": 1.0e-3, "processes": 2,
        "rounds": 2, "fault": "crash@1,2",
    }


@pytest.fixture(scope="session")
def data_plane_settings() -> dict:
    """Configuration of the data-plane bench: per-payload transport at
    the issue's level-5 floor either way, the full mode runs the
    end-to-end comparison at level 6 with more rounds."""
    if DATA_PLANE_FULL:
        return {
            "full": True,
            "payload_root": 6, "payload_level": 6,
            "run_level": 6, "tol": 1.0e-4,
            "transport_rounds": 30, "run_rounds": 5,
        }
    return {
        "full": False,
        "payload_root": 6, "payload_level": 5,
        "run_level": 5, "tol": 1.0e-3,
        "transport_rounds": 10, "run_rounds": 3,
    }


@pytest.fixture(scope="session")
def socket_engine_settings() -> dict:
    """Configuration of the socket-engine bench: daemons over loopback
    TCP against the in-process fork pool at the same level."""
    if SOCKET_ENGINE_FULL:
        return {
            "full": True,
            "level": 5, "tol": 1.0e-3, "processes": 2,
            "rounds": 3,
        }
    return {
        "full": False,
        "level": 3, "tol": 1.0e-3, "processes": 2,
        "rounds": 2,
    }


@pytest.fixture(scope="session")
def split_solve_settings() -> dict:
    """Configuration of the split-solve bench: unsplit vs k-strip Schur
    substructuring on the critical-path grids of the level-5 family at
    root 5 (the anisotropic long-axis shapes the decomposition targets).
    ``makespan_workers`` puts the schedule in the worker-rich regime
    (``w >= 2*level + 1``, the paper's worker-count relation) where LPT
    is pinned to the longest job and only splitting it helps.  The
    smoke mode shortens the integration window; the full mode runs the
    whole window with more rounds."""
    if SPLIT_SOLVE_FULL:
        return {
            "full": True,
            "root": 5, "level": 5, "tol": 1.0e-3,
            "t_end": 0.25, "rounds": 3,
            "k_options": (2, 4), "makespan_workers": 16,
            "top_fraction": 0.5, "min_reduction": 1.3,
        }
    # the smoke floor is slightly relaxed: the short integration window
    # leaves ~5% machine noise on the lane projection, and the issue's
    # 1.3x figure is asserted (and recorded) by the full mode
    return {
        "full": False,
        "root": 5, "level": 5, "tol": 1.0e-3,
        "t_end": 0.12, "rounds": 3,
        "k_options": (2, 4), "makespan_workers": 16,
        "top_fraction": 0.5, "min_reduction": 1.2,
    }


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    if CACHE.exists():
        try:
            return CostModel.from_json(CACHE)
        except (KeyError, ValueError):
            CACHE.unlink()
    records = measure_costs(
        "rotating-cone", root=2, levels=CALIBRATION_LEVELS, tols=TOLS,
        repeats=2,
    )
    model = CostModel.fit(records, root=2)
    model.to_json(CACHE)
    return model


@pytest.fixture(scope="session")
def experiment(cost_model) -> Table1Experiment:
    """The paper-configuration experiment: 32-host heterogeneous
    cluster, multi-user noise, 5-run averages."""
    return Table1Experiment(cost_model, runs=5, seed=20040101)


@pytest.fixture(scope="session")
def table1_rows(experiment):
    """The full Table 1 sweep, shared by the table and figure benches."""
    return experiment.run_all(levels=range(16), tols=(1.0e-3, 1.0e-4))
