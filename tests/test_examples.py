"""Every example script must run cleanly end to end.

Examples are executed as subprocesses with small parameters so the
whole file stays under a minute; each one's key output lines are
checked, not just the exit code.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 240.0):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "2")
        assert "results bitwise identical: True" in out
        assert "grids solved: 5" in out

    def test_transport_solver(self):
        out = run_example("transport_solver.py", "3")
        assert "convergence" in out
        assert "better" in out
        assert "imbalance" in out

    def test_custom_coordination(self):
        out = run_example("custom_coordination.py", "4", "20000")
        assert "pi ~" in out
        assert "unmodified ProtocolMW" in out

    def test_distributed_cluster_demo(self):
        out = run_example("distributed_cluster_demo.py", "8")
        assert "-> Welcome" in out
        assert "ebb & flow" in out
        assert "overhead decomposition" in out

    def test_failure_handling(self):
        out = run_example("failure_handling.py")
        assert "watchdog: no coordination activity" in out
        assert "failure handled" in out
        # the escalation-ladder demo: a real worker killed at level 5,
        # detected by liveness, recovered, bitwise-identical result
        assert "crash on (2, 3)" in out
        assert "-> reassign" in out
        assert "faults: 1, recovered: 1" in out
        assert "combined solution identical to fault-free run: True" in out

    def test_table1_reproduction_small(self):
        out = run_example("table1_reproduction.py", "6", timeout=300)
        assert "st(paper)" in out
        assert "Figure 5" in out
