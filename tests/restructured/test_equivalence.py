"""The headline correctness claim of §6: the restructured application's
results "are exactly the same as in the sequential version"."""

from __future__ import annotations

import numpy as np
import pytest

from repro.restructured import run_concurrent, run_multiprocessing
from repro.restructured.mainprog import DEFAULT_MLINK
from repro.sparsegrid import SequentialApplication

ROOT, LEVEL, TOL = 2, 2, 1.0e-3


@pytest.fixture(scope="module")
def sequential_result():
    return SequentialApplication(root=ROOT, level=LEVEL, tol=TOL).run()


class TestBitwiseEquivalence:
    def test_concurrent_threads_identical(self, sequential_result):
        concurrent, _ = run_concurrent(root=ROOT, level=LEVEL, tol=TOL, timeout=120)
        assert np.array_equal(sequential_result.combined, concurrent.combined)

    def test_multiprocessing_identical(self, sequential_result):
        mp = run_multiprocessing(root=ROOT, level=LEVEL, tol=TOL, processes=2)
        assert np.array_equal(sequential_result.combined, mp.combined)

    def test_per_grid_solutions_identical(self, sequential_result):
        concurrent, _ = run_concurrent(root=ROOT, level=LEVEL, tol=TOL, timeout=120)
        for key, payload in concurrent.payloads.items():
            assert np.array_equal(
                payload.solution, sequential_result.data.results[key].solution
            ), f"grid {key} differs"

    def test_pool_per_diagonal_identical(self, sequential_result):
        concurrent, _ = run_concurrent(
            root=ROOT, level=LEVEL, tol=TOL, pool_per_diagonal=True, timeout=120
        )
        assert np.array_equal(sequential_result.combined, concurrent.combined)

    def test_manufactured_problem_identical(self):
        seq = SequentialApplication(
            root=2, level=2, tol=1e-4,
            problem=None,  # default
        )
        seq_result = SequentialApplication(root=2, level=2, tol=1e-4).run()
        conc, _ = run_concurrent(root=2, level=2, tol=1e-4, timeout=120)
        assert np.array_equal(seq_result.combined, conc.combined)


class TestConcurrentStructure:
    def test_worker_count_matches_paper_relation(self):
        concurrent, _ = run_concurrent(root=2, level=3, tol=TOL, timeout=120)
        assert concurrent.n_workers == 2 * 3 + 1

    def test_pool_per_diagonal_runs_two_pools(self):
        single, _ = run_concurrent(root=2, level=2, tol=TOL, timeout=120)
        double, _ = run_concurrent(
            root=2, level=2, tol=TOL, pool_per_diagonal=True, timeout=120
        )
        assert single.n_workers == double.n_workers == 5

    def test_task_manager_records_bundling(self):
        _, task_manager = run_concurrent(
            root=2, level=2, tol=TOL, link_spec_text=DEFAULT_MLINK, timeout=120
        )
        assert task_manager is not None
        assert task_manager.peak_instances() >= 1
        # after wind-down every perpetual task was ended
        assert not task_manager.alive_instances()

    def test_result_fields_populated(self):
        concurrent, _ = run_concurrent(root=2, level=2, tol=TOL, timeout=120)
        assert concurrent.total_seconds > 0
        assert concurrent.pool_seconds > 0
        assert concurrent.prolongation_seconds >= 0
        assert set(concurrent.grid_seconds) == set(concurrent.payloads)

    def test_level_zero_single_worker(self):
        seq = SequentialApplication(root=2, level=0, tol=TOL).run()
        conc, _ = run_concurrent(root=2, level=0, tol=TOL, timeout=120)
        assert conc.n_workers == 1
        assert np.array_equal(seq.combined, conc.combined)
