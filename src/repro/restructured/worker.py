"""The worker wrapper and its compute engines.

A worker's contract is fixed by the protocol (read job, compute, write
result, raise ``death_worker``); *where* the computation runs is the
task-composition decision of §6.  Two engines realize the two
configurations of the paper:

* :class:`InlineEngine` — the worker thread computes in place.  All
  workers share one OS process: the "parallel" (single task instance)
  configuration.  CPython's GIL limits the speedup to what NumPy/SciPy
  release — this is the repro-band caveat; measured honestly in the
  benchmarks.
* :class:`ProcessPoolEngine` — each job is shipped to a pool of worker
  OS processes: the "distributed" (one worker per task instance)
  configuration, and the GIL workaround.  Only the small job spec and
  the result arrays cross the process boundary, exactly the data the
  paper's master passes to and from its workers.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.manifold import AtomicDefinition
from repro.protocol import make_worker_definition
from repro.sparsegrid.grid import Grid
from repro.sparsegrid.registry import make_problem
from repro.sparsegrid.subsolve import subsolve

__all__ = [
    "SubsolveJobSpec",
    "SubsolvePayload",
    "execute_job",
    "ComputeEngine",
    "InlineEngine",
    "ProcessPoolEngine",
    "make_subsolve_worker",
]


@dataclass(frozen=True)
class SubsolveJobSpec:
    """Everything a worker needs to run ``subsolve(l, m)``.

    Deliberately small and picklable: the problem travels by registry
    name, not by object.
    """

    problem_name: str
    root: int
    l: int
    m: int
    tol: float
    t_end: Optional[float] = None
    scheme: str = "upwind"
    problem_kwargs: tuple = ()  # sorted (key, value) pairs

    @property
    def grid(self) -> Grid:
        return Grid(self.root, self.l, self.m)

    def kwargs(self) -> dict:
        return dict(self.problem_kwargs)


@dataclass(frozen=True)
class SubsolvePayload:
    """What a worker sends back: the grid solution plus its counters."""

    l: int
    m: int
    solution: np.ndarray
    steps_accepted: int
    steps_rejected: int
    factorizations: int
    solves: int
    wall_seconds: float
    work_units: float


def execute_job(spec: SubsolveJobSpec) -> SubsolvePayload:
    """Run one job — the function both engines ultimately call.

    Must stay importable at module top level so multiprocessing can
    pickle it by reference.
    """
    problem = make_problem(spec.problem_name, **spec.kwargs())
    result = subsolve(
        problem, spec.grid, spec.tol, t_end=spec.t_end, scheme=spec.scheme
    )
    return SubsolvePayload(
        l=spec.l,
        m=spec.m,
        solution=result.solution,
        steps_accepted=result.stats.steps_accepted,
        steps_rejected=result.stats.steps_rejected,
        factorizations=result.stats.factorizations,
        solves=result.stats.solves,
        wall_seconds=result.wall_seconds,
        work_units=result.work_units,
    )


class ComputeEngine:
    """Strategy interface: how a worker executes its job."""

    def compute(self, spec: SubsolveJobSpec) -> SubsolvePayload:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; idempotent."""

    def __enter__(self) -> "ComputeEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class InlineEngine(ComputeEngine):
    """Compute in the calling worker thread (single task instance)."""

    def compute(self, spec: SubsolveJobSpec) -> SubsolvePayload:
        return execute_job(spec)


class ProcessPoolEngine(ComputeEngine):
    """Ship each job to a pool of worker OS processes.

    ``processes`` bounds the pool (defaults to the CPU count); with the
    paper's configuration of one worker per task instance the natural
    choice is one process per expected worker, capped by the hardware.
    """

    def __init__(self, processes: Optional[int] = None) -> None:
        self._pool = multiprocessing.get_context("fork").Pool(processes)
        self.processes = processes

    def compute(self, spec: SubsolveJobSpec) -> SubsolvePayload:
        return self._pool.apply(execute_job, (spec,))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


def make_subsolve_worker(engine: ComputeEngine) -> AtomicDefinition:
    """The ``Worker`` manifold of §5: protocol-compliant wrapper whose
    computation is delegated to the chosen engine."""
    return make_worker_definition("Worker", engine.compute)
