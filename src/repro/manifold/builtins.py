"""Built-in and predefined processes of the MANIFOLD library.

The paper's protocol uses two of these directly:

* ``variable`` — MANIFOLD has no data structures, "not even the simplest
  kind, a variable"; a variable is a *process* holding the last unit
  written to it.  ``Create_Worker_Pool`` counts created workers (`now`)
  and dead workers (`t`) with two variable instances.
* ``void`` — the special predefined process that never terminates;
  ``terminated(void)`` is the idiom for IDLE.

We also provide the conventional ``sink`` (swallows all input) and
``printer`` (logs every unit) processes, which are handy in examples and
tests.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from .process import AtomicDefinition, AtomicProcess
from .scheduler import Runtime

__all__ = [
    "Variable",
    "make_variable",
    "make_void",
    "make_sink",
    "make_printer",
    "VOID_DEFINITION",
]


class Variable(AtomicProcess):
    """A process-that-is-a-variable.

    The canonical protocol usage is through the thread-safe value
    interface (:meth:`get`, :meth:`set`, :meth:`increment`); the port
    interface is also live: any unit written into the variable's input
    port replaces the value, and the variable echoes each new value on
    its output port when connected, so streams can observe updates.
    """

    def __init__(self, runtime: Runtime, name: str, initial: object = None) -> None:
        super().__init__(runtime, name, lambda proc: _variable_body(proc))
        self._value = initial
        self._value_lock = threading.Lock()

    def get(self) -> object:
        with self._value_lock:
            return self._value

    def set(self, value: object) -> None:
        with self._value_lock:
            self._value = value

    def increment(self, delta: int = 1) -> int:
        """Atomic add (counting workers); returns the new value."""
        with self._value_lock:
            self._value = (self._value or 0) + delta
            return self._value


def _variable_body(proc: AtomicProcess) -> None:
    # Serve the port interface until interrupted at shutdown.
    assert isinstance(proc, Variable)
    while True:
        value = proc.read()
        proc.set(value)
        for stream in proc.output.attached_streams():
            if stream.accepts_input():
                proc.write(value)
                break


def make_variable(runtime: Runtime, initial: object = None, name: str = "variable") -> Variable:
    """``auto process v is variable(initial)`` — created *and* activated."""
    var = Variable(runtime, name, initial)
    runtime.adopt(var)
    var.activate()
    return var


def _void_body(proc: AtomicProcess) -> None:
    # Never terminates on its own; unwinds only when interrupted.
    proc.read()  # blocks forever: nothing is ever connected to void


VOID_DEFINITION = AtomicDefinition("void", _void_body)


def make_void(runtime: Runtime) -> AtomicProcess:
    """The special predefined process that never terminates."""
    return runtime.spawn(VOID_DEFINITION)


def _sink_body(proc: AtomicProcess) -> None:
    while True:
        proc.read()


def make_sink(runtime: Runtime) -> AtomicProcess:
    """A process that swallows every unit delivered to it."""
    return runtime.spawn(AtomicDefinition("sink", _sink_body))


def make_printer(
    runtime: Runtime, emit: Optional[Callable[[str], None]] = None
) -> AtomicProcess:
    """A process printing (or logging) every unit it reads."""
    emit = emit or print

    def body(proc: AtomicProcess) -> None:
        while True:
            unit = proc.read()
            emit(f"{proc.name}: {unit!r}")

    return runtime.spawn(AtomicDefinition("printer", body))
