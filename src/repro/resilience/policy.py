"""Declarative fault-tolerance policies and the structured fault record.

The paper's protocol is *built* around failure signals — the coordinator
counts ``death_worker`` occurrences and organizes a rendezvous before
acknowledging — yet it has no recovery story: a worker that dies without
raising the event deadlocks the run.  Following Jongmans & Arbab's
argument for keeping protocol concerns out of computation code, every
failure-handling decision of this repository lives here, as data:

* :class:`RetryPolicy` — how often to re-attempt a failed job and how
  long to wait between attempts (exponential backoff with
  *deterministic* jitter, so two runs with the same seed replay the
  same schedule);
* :class:`DeadlinePolicy` — when a silent job is declared hung.  The
  per-job budget scales with the PR-1 cost model's predicted seconds
  where a calibration exists, so a deliberately heavy grid is not
  mistaken for a stuck one;
* :class:`EscalationPolicy` — the ladder: retry → reassign to a new
  worker (respawning the pool if the old one is wedged) → fall back to
  an in-master sequential subsolve → fail the run with a structured
  :class:`FaultReport`.

The same ladder serves the OS-level path (crashed/hung fork-pool
workers, :mod:`repro.restructured.parallel`) and the MANIFOLD-level path
(``death_worker`` supervision, :mod:`repro.protocol.supervision`); both
record what happened as :class:`FaultEvent` entries so a run's failure
history is one auditable object either way.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional, Sequence

__all__ = [
    "deterministic_fraction",
    "RetryPolicy",
    "DeadlinePolicy",
    "EscalationStep",
    "EscalationPolicy",
    "FaultEvent",
    "FaultReport",
    "FaultLog",
    "FaultToleranceExhausted",
]


def deterministic_fraction(*parts: object) -> float:
    """A reproducible draw in ``[0, 1)`` from arbitrary hashable parts.

    Used for retry jitter and the injector's ``rate=`` rules: the same
    ``(seed, key, attempt)`` always yields the same fraction, on any
    machine and in any process, so fault schedules replay exactly.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a job gets and how long to wait between them."""

    #: total attempts per job, the first included (1 = never retry)
    max_attempts: int = 3
    #: backoff before attempt 2
    backoff_seconds: float = 0.05
    #: multiplier per further attempt (exponential backoff)
    backoff_factor: float = 2.0
    #: backoff ceiling
    max_backoff_seconds: float = 2.0
    #: +/- fraction of deterministic jitter applied to the backoff
    jitter: float = 0.25
    #: jitter seed; same seed -> same delays, run after run
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_seconds(self, attempt: int, key: object = ()) -> float:
        """Backoff before re-dispatching after failed ``attempt``.

        Deterministic: the jitter is a hash of ``(seed, key, attempt)``,
        not a random draw, so recovery timing is replayable.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.max_backoff_seconds,
            self.backoff_seconds * self.backoff_factor ** (attempt - 1),
        )
        swing = 2.0 * deterministic_fraction(self.seed, key, attempt) - 1.0
        return max(0.0, base * (1.0 + self.jitter * swing))


@dataclass(frozen=True)
class DeadlinePolicy:
    """When a silent job is declared hung.

    With a calibrated cost model the budget is ``factor`` times the
    predicted wall seconds of the specific grid (a heavy diagonal gets
    a proportionally long leash); without a prediction the flat
    ``default_seconds`` applies.  ``floor_seconds`` guards against a
    prediction so small that scheduling noise alone would trip it.
    """

    #: deadline = max(floor, factor * predicted_seconds)
    factor: float = 8.0
    #: minimum budget for any job
    floor_seconds: float = 2.0
    #: budget when no cost-model prediction is available
    default_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")
        if self.floor_seconds <= 0:
            raise ValueError(
                f"floor_seconds must be positive, got {self.floor_seconds}"
            )

    def deadline_seconds(self, predicted_seconds: Optional[float] = None) -> float:
        """Wall budget for one job attempt."""
        if predicted_seconds is None:
            return max(self.floor_seconds, self.default_seconds)
        return max(self.floor_seconds, self.factor * predicted_seconds)

    # ------------------------------------------------------------------
    # MANIFOLD-level stalls (the Watchdog path)
    # ------------------------------------------------------------------
    def stall_events(self, stalls: Iterable[object]) -> list["FaultEvent"]:
        """Convert watchdog :class:`~repro.manifold.watchdog.StallReport`
        entries that exceed this policy's floor into fault events.

        Duck-typed on purpose: anything with ``stalled_for_seconds`` and
        ``describe()`` qualifies, so the coordination layer needs no
        import of this module to produce evidence.
        """
        return [
            FaultEvent.from_stall(stall)
            for stall in stalls
            if stall.stalled_for_seconds >= self.floor_seconds
        ]

    def report_from_stalls(self, stalls: Iterable[object]) -> Optional["FaultReport"]:
        """A structured report of the qualifying stalls, or ``None``.

        This is how a stalled scheduler surfaces as a
        :class:`FaultReport` instead of a silent hang.
        """
        events = self.stall_events(stalls)
        if not events:
            return None
        return FaultReport(events=tuple(events))


class EscalationStep(Enum):
    """What the ladder prescribes after one more fault."""

    RETRY = "retry"              # re-dispatch to the (repopulated) pool
    REASSIGN = "reassign"        # new worker; respawn the pool if wedged
    FALLBACK = "fallback"        # in-master sequential subsolve
    FAIL = "fail"                # structured failure of the whole run


@dataclass(frozen=True)
class EscalationPolicy:
    """The escalation ladder: retry → reassign → sequential → fail."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline: DeadlinePolicy = field(default_factory=DeadlinePolicy)
    #: when retries are exhausted, degrade to an in-master sequential
    #: subsolve instead of failing the run
    sequential_fallback: bool = True

    #: fault kinds that imply the worker (or its slot) is unusable, so
    #: the retry must land on a fresh worker — the OS-level kinds plus
    #: the MANIFOLD supervisor's ``death_worker``
    REASSIGN_KINDS = frozenset({"crash", "hang", "deadline", "death_worker"})

    def decide(self, attempt: int, kind: str) -> EscalationStep:
        """Next step after ``attempt`` failed with a ``kind`` fault."""
        if attempt < self.retry.max_attempts:
            if kind in self.REASSIGN_KINDS:
                return EscalationStep.REASSIGN
            return EscalationStep.RETRY
        if self.sequential_fallback:
            return EscalationStep.FALLBACK
        return EscalationStep.FAIL


# ----------------------------------------------------------------------
# the structured fault record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One observed fault and the action the ladder took."""

    #: what failed — a grid ``(l, m)`` on the pool path, a worker name
    #: on the MANIFOLD path, a process tuple on the watchdog path
    key: tuple
    #: crash | hang | deadline | exception | death_worker | stall
    kind: str
    #: the attempt that failed (1-based)
    attempt: int
    #: retry | reassign | fallback | fail | report
    action: str
    #: liveness | deadline | exception | supervisor | watchdog
    detected_by: str
    error: str = ""
    seconds_lost: float = 0.0

    def describe(self) -> str:
        tail = f": {self.error}" if self.error else ""
        return (
            f"{self.kind} on {self.key} (attempt {self.attempt}, "
            f"detected by {self.detected_by}) -> {self.action}{tail}"
        )

    @classmethod
    def from_stall(cls, stall: object) -> "FaultEvent":
        """Lift a watchdog stall report into the shared fault record."""
        live = tuple(getattr(stall, "live_processes", ()))
        return cls(
            key=live or ("scheduler",),
            kind="stall",
            attempt=1,
            action="report",
            detected_by="watchdog",
            error=stall.describe(),
            seconds_lost=float(stall.stalled_for_seconds),
        )


@dataclass(frozen=True)
class FaultReport:
    """A run's complete failure history, in detection order."""

    events: tuple[FaultEvent, ...] = ()
    #: keys that faulted at least once but ultimately completed
    recovered_keys: tuple[tuple, ...] = ()
    #: keys completed via the in-master sequential fallback
    fallback_keys: tuple[tuple, ...] = ()
    #: the key that exhausted the ladder (None if the run survived)
    failed_key: Optional[tuple] = None

    @property
    def faults(self) -> int:
        return len(self.events)

    @property
    def recovered(self) -> int:
        return len(self.recovered_keys)

    @property
    def fallbacks(self) -> int:
        return len(self.fallback_keys)

    @property
    def survived(self) -> bool:
        return self.failed_key is None

    def lines(self) -> list[str]:
        out = [
            f"faults: {self.faults}, recovered: {self.recovered}, "
            f"sequential fallbacks: {self.fallbacks}, "
            f"survived: {self.survived}"
        ]
        out.extend(f"  {event.describe()}" for event in self.events)
        return out

    def describe(self) -> str:
        return "\n".join(self.lines())


class FaultLog:
    """Thread-safe fault-event accumulator shared across detectors.

    The pool master, the MANIFOLD supervisor and the watchdog bridge all
    append here, so one run has one failure history regardless of which
    layer noticed each fault.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[FaultEvent] = []

    def record(self, event: FaultEvent) -> FaultEvent:
        with self._lock:
            self._events.append(event)
        return event

    def events(self) -> list[FaultEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def report(
        self,
        *,
        recovered_keys: Sequence[tuple] = (),
        fallback_keys: Sequence[tuple] = (),
        failed_key: Optional[tuple] = None,
    ) -> FaultReport:
        return FaultReport(
            events=tuple(self.events()),
            recovered_keys=tuple(recovered_keys),
            fallback_keys=tuple(fallback_keys),
            failed_key=failed_key,
        )


class FaultToleranceExhausted(RuntimeError):
    """The escalation ladder ran out of rungs; carries the full report."""

    def __init__(self, report: FaultReport, message: str = "") -> None:
        self.report = report
        super().__init__(
            message or f"fault tolerance exhausted:\n{report.describe()}"
        )
