"""Exception hierarchy for the MANIFOLD/IWIM coordination runtime.

Every error raised by :mod:`repro.manifold` derives from
:class:`ManifoldError`, so applications embedding the runtime can catch
coordination failures without masking unrelated bugs.
"""

from __future__ import annotations


class ManifoldError(Exception):
    """Base class for all coordination-runtime errors."""


class PortError(ManifoldError):
    """Raised for illegal port operations.

    Examples: writing to an input port, reading from an output port, or
    referring to a port name a process does not declare.
    """


class StreamError(ManifoldError):
    """Raised for illegal stream operations.

    Examples: reconnecting an already-connected stream end, writing into
    a stream whose source side has been broken, or draining a stream that
    was never connected.
    """


class ProcessError(ManifoldError):
    """Raised for illegal process lifecycle transitions.

    Examples: activating a process twice, or reading a port of a process
    that was never activated.
    """


class EventError(ManifoldError):
    """Raised for malformed event declarations or postings."""


class StateMachineError(ManifoldError):
    """Raised when a coordinator block is structurally invalid.

    The canonical case, mirroring the language rule quoted in the paper
    ("There must always be a ``begin`` state ... in every block"), is a
    block without a ``begin`` state.
    """


class LinkError(ManifoldError):
    """Raised by the MLINK stage for malformed composition specs."""


class ConfigError(ManifoldError):
    """Raised by the CONFIG stage for malformed host-mapping specs."""


class DeadlockError(ManifoldError):
    """Raised when the runtime detects that no progress is possible.

    The detector is conservative: it only fires when *every* live process
    is blocked on a coordination primitive and no timer or external input
    can unblock any of them.
    """


class RuntimeShutdown(ManifoldError):
    """Internal signal used to unwind process threads at shutdown.

    User code never needs to catch this; the runtime converts it into a
    clean thread exit.
    """
