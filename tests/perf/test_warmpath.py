"""The deterministic scheduling metric and the warm-path report.

Hand-checkable examples pin down the simulator (greedy list schedule)
and the ``pool.map`` chunk formula; the LPT-beats-static property is
then asserted on a synthetic geometrically-skewed duration family like
the grid family's, and on a real (tiny) run.
"""

from __future__ import annotations

import pytest

from repro.perf.warmpath import (
    dispatch_makespan,
    simulate_makespan,
    static_chunk_makespan,
    static_chunks,
    warm_path_report,
)
from repro.restructured import run_multiprocessing, shutdown_pool


class TestSimulateMakespan:
    def test_hand_example_two_workers(self):
        # worker A: 3, then 1 (free at t=3 vs B free at t=2) -> 4
        # worker B: 2, then 2 -> 4
        assert simulate_makespan([3, 2, 2, 1], 2) == 4.0

    def test_single_worker_is_sum(self):
        assert simulate_makespan([1, 2, 3], 1) == 6.0

    def test_more_workers_than_jobs(self):
        assert simulate_makespan([5, 1], 8) == 5.0

    def test_empty(self):
        assert simulate_makespan([], 4) == 0.0

    def test_order_matters(self):
        # shortest-first strands the long job at the end...
        worst = simulate_makespan([1, 1, 1, 1, 4], 2)
        # ...longest-first overlaps it with everything else
        best = simulate_makespan([4, 1, 1, 1, 1], 2)
        assert worst == 6.0 and best == 4.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 0)
        with pytest.raises(ValueError):
            simulate_makespan([-1.0], 2)


class TestStaticChunks:
    def test_pool_map_formula(self):
        # divmod(13, 8*4) = (0, 13) -> chunksize 1: every job its own unit
        assert static_chunks(13, 8) == [1] * 13
        # divmod(13, 2*4) = (1, 5) -> chunksize 2
        assert static_chunks(13, 2) == [2, 2, 2, 2, 2, 2, 1]

    def test_explicit_chunksize(self):
        assert static_chunks(5, 4, chunksize=3) == [3, 2]

    def test_empty(self):
        assert static_chunks(0, 4) == []

    def test_chunking_penalty_on_skewed_tail(self):
        # the paper loop puts the heavy diagonal last; with chunksize 2
        # the two heaviest jobs land in one chunk on one worker
        durations = [1, 1, 1, 1, 4, 4]  # sum 12
        chunked = static_chunk_makespan(durations, 2, chunksize=2)
        per_job = simulate_makespan(sorted(durations, reverse=True), 2)
        assert chunked == 10.0  # chunk sums [2, 2, 8] -> worker A: 2+8
        assert per_job == 6.0  # LPT balances both workers at the bound
        assert chunked > per_job


class TestDispatchMakespan:
    @pytest.fixture(scope="class")
    def result(self):
        shutdown_pool()
        try:
            # processes=1 keeps the cache counters deterministic (caches
            # are per worker process)
            run_multiprocessing(root=2, level=3, tol=1.0e-3, processes=1)
            yield run_multiprocessing(root=2, level=3, tol=1.0e-3, processes=1)
        finally:
            shutdown_pool()

    def test_geometric_family_lpt_beats_static(self):
        # synthetic stand-in for the grid family: two diagonals, the
        # heavier one ~2x, near-square grids heaviest within a diagonal,
        # loop order puts the heavy diagonal last
        light = [1.0, 1.6, 2.0, 1.6, 1.0]
        heavy = [2.0, 3.2, 4.0, 3.2, 2.0]
        loop_order = light + heavy
        lpt = sorted(loop_order, reverse=True)
        assert simulate_makespan(lpt, 4) < static_chunk_makespan(loop_order, 4)

    def test_real_run_metric_is_consistent(self, result):
        span = dispatch_makespan(result, n_workers=8)
        assert span.n_workers == 8
        assert span.lower_bound_seconds <= span.longest_first_seconds
        assert span.lower_bound_seconds <= span.dispatched_seconds
        assert span.dispatched_seconds > 0.0
        assert span.static_chunk_seconds > 0.0
        assert span.gain_over_static == pytest.approx(
            span.static_chunk_seconds / span.dispatched_seconds
        )

    def test_default_worker_count_floor(self, result):
        span = dispatch_makespan(result)
        assert span.n_workers == max(2, result.processes)

    def test_report_lines_render(self, result):
        report = warm_path_report(result, n_workers=8)
        text = "\n".join(report.lines())
        assert "operator cache" in text
        assert "makespan @8 workers" in text
        assert report.warm_pool
        assert report.operator_cache_hit_ratio == 1.0
        assert report.level == 3 and report.tol == 1.0e-3
