"""``protocolMW.m`` — the generic master/worker coordination protocol.

This module is a line-for-line port of the MANIFOLD source in §4.2 of
the paper.  The comments quote the original lines so the correspondence
can be audited.  Both manners are *generic*: the master process instance
and the worker manifold definition are parameters; the protocol knows
nothing about the computation they perform.

Protocol summary (§4.1):

1. The coordinator waits on the running ``master``.
2. ``create_pool`` → enter :func:`create_worker_pool`.
3. Inside the pool manner, each ``create_worker`` occurrence creates a
   worker, sends its reference to the master (``&worker -> master``),
   wires ``master -> worker`` (job data) and ``worker ->
   master.dataport`` (results; a **KK** stream so it survives the next
   preemption — a remote worker's results must still reach the master).
4. ``rendezvous`` → count ``death_worker`` occurrences until every
   created worker has died, then raise ``a_rendezvous`` and return.
5. Back in ``ProtocolMW``, ``post(begin)`` — ready for another pool.
6. ``finished`` → ``halt``: flow of control returns to the caller.
"""

from __future__ import annotations

from typing import Optional

from repro.manifold import (
    BEGIN,
    DEATH,
    END,
    AtomicDefinition,
    Block,
    Event,
    ProcessBase,
    StateContext,
    StreamType,
    make_variable,
)

from .events import events_for
from .supervision import SupervisionRegistry, make_supervisor

__all__ = ["create_worker_pool", "protocol_mw"]


def create_worker_pool(
    master: ProcessBase,
    worker_defn: AtomicDefinition,
    *,
    registry: Optional["SupervisionRegistry"] = None,
) -> Block:
    """The ``Create_Worker_Pool`` manner (lines 12–51 of protocolMW.m).

    Conducts the workers in the pool: creates a worker per
    ``create_worker`` occurrence, wires it to the master, and organizes
    the rendezvous counting ``death_worker`` events.

    ``registry``, when given, enables the failure extension (not in
    the paper, where a crashed worker deadlocks the run): every created
    worker is registered with the supervisor coordinator (see
    :mod:`repro.protocol.supervision`), which converts a worker failure
    into a dataport failure unit plus a ``death_worker`` raise so the
    rendezvous still closes.
    """
    # step 1: the extern events of *this* master (see events.py)
    ev = events_for(master)
    # line 21: `event death_worker.` — local to this pool instance.
    death_worker = Event.local("death_worker")

    def setup(ctx: StateContext) -> dict:
        # lines 18-19: `auto process now is variable(0).` / `... t is variable(0).`
        runtime = ctx.coordinator.runtime
        now = make_variable(runtime, 0, name="now")
        t = make_variable(runtime, 0, name="t")
        return {"now": now, "t": t}

    block = Block(
        "Create_Worker_Pool",
        save_all=True,                      # line 15: `save *.`
        ignore=(DEATH,),                    # line 16: `ignore death.`
        # line 22: `priority create_worker > rendezvous.`
        priority={ev.create_worker: 2, ev.rendezvous: 1},
        setup=setup,
    )

    @block.state(BEGIN)
    def begin(ctx: StateContext) -> None:
        # line 25: `begin: (MES("begin"), preemptall, IDLE).`
        ctx.message("begin")
        ctx.idle()

    @block.state(ev.create_worker)
    def create_worker_state(ctx: StateContext) -> None:
        # lines 27-37: the create_worker state is itself a block.
        inner = Block("create_worker")

        worker = ctx.create(worker_defn, death_worker)  # line 30
        if registry is not None:
            registry.register(worker, master, death_worker)

        @inner.state(BEGIN)
        def inner_begin(inner_ctx: StateContext) -> None:
            # line 34: `begin: now = now + 1;`
            inner_ctx.local("now").increment()
            inner_ctx.message("create_worker: begin")
            # line 36: the stream configuration, verbatim; line 32
            # declares the worker -> master.dataport connection KK
            inner_ctx.wire(
                "&worker -> master -> worker -> master.dataport",
                env={"worker": worker, "master": master},
                types={2: StreamType.KK},
            )
            inner_ctx.idle()  # IDLE until the next create_worker/rendezvous

        ctx.run_block(inner)

    @block.state(ev.rendezvous)
    def rendezvous_state(ctx: StateContext) -> None:
        # lines 39-48: the rendezvous state, with begin and death_worker
        # (sub)states.
        inner = Block("rendezvous")

        @inner.state(BEGIN)
        def inner_begin(inner_ctx: StateContext) -> None:
            inner_ctx.idle()  # line 40: wait for death_worker events

        @inner.state(death_worker)
        def on_death_worker(inner_ctx: StateContext) -> None:
            # lines 42-47
            t = inner_ctx.local("t")
            now = inner_ctx.local("now")
            if t.increment() < now.get():
                inner_ctx.post(BEGIN)
            else:
                inner_ctx.post(END)

        ctx.run_block(inner)

    @block.state(END)
    def end(ctx: StateContext) -> None:
        # line 50: `end: (MES("rendezvous acknowledged"), raise(a_rendezvous)).`
        ctx.message("rendezvous acknowledged")
        ctx.raise_event(ev.a_rendezvous)
        ctx.halt()  # the Create_Worker_Pool manner returns

    return block


def protocol_mw(
    master: ProcessBase,
    worker_defn: AtomicDefinition,
    *,
    supervise: bool = False,
    registry: Optional[SupervisionRegistry] = None,
) -> Block:
    """The exported ``ProtocolMW`` manner (lines 54–64 of protocolMW.m).

    ``master`` must already be active; ``worker_defn`` is the worker
    manifold.  The caller typically runs this block in its ``begin``
    state (see ``mainprog.m`` / :mod:`repro.restructured.mainprog`).
    ``supervise`` enables the worker-failure extension: a supervisor
    coordinator is spawned alongside the protocol and every pool worker
    is registered with it (see :mod:`repro.protocol.supervision`).
    Passing an explicit ``registry`` implies ``supervise`` and lets the
    caller attach a shared :class:`~repro.resilience.FaultLog` and
    escalation ladder before the protocol starts.
    """

    ev = events_for(master)
    supplied = registry

    def setup(ctx: StateContext) -> dict:
        registry = supplied
        if registry is None and supervise:
            registry = SupervisionRegistry()
        if registry is not None:
            make_supervisor(ctx.coordinator.runtime, registry)
        return {"protocol_registry": registry}

    block = Block("ProtocolMW", save_all=True, setup=setup)  # line 57: `save *.`

    @block.state(BEGIN)
    def begin(ctx: StateContext) -> None:
        # line 59: `begin: terminated(master).` — wait on the master;
        # mentioning it also makes this state sensitive to its events.
        ctx.terminated(master)

    @block.state(ev.create_pool)
    def create_pool(ctx: StateContext) -> None:
        # line 61: `create_pool: Create_Worker_Pool(master, Worker); post(begin).`
        ctx.run_block(
            create_worker_pool(
                master, worker_defn, registry=ctx.local("protocol_registry")
            )
        )
        ctx.post(BEGIN)

    @block.state(ev.finished)
    def finished(ctx: StateContext) -> None:
        # line 63: `finished: halt.`
        ctx.halt()

    return block
