"""Task instances and the placement engine (the run side of MLINK).

Process instances run as threads bundled into *task instances* — the
heavy-weight, OS-level processes of a MANIFOLD application.  This module
tracks that bundling at run time:

* when a process instance is activated, the :class:`TaskManager` places
  it in an existing non-full task instance of its task, or forks a new
  task instance;
* when a process instance dies, its weight is released; an emptied task
  instance dies unless its pattern is ``perpetual``, in which case it
  stays alive, "ready to welcome a new worker";
* every placement and death is timestamped, producing the task-count
  timeline behind the paper's Figure 1 (the "ebb & flow" of machines).

The clock is injected so the same engine serves both real runs
(``time.monotonic``) and the discrete-event cluster simulator (virtual
time).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .errors import LinkError
from .mlink import LinkSpec, TaskPattern
from .process import ProcessBase

__all__ = ["TaskInstance", "TaskManager", "TimelinePoint"]

_task_counter = itertools.count()


@dataclass
class TimelinePoint:
    """One change in the number of live task instances."""

    time: float
    alive: int


class TaskInstance:
    """One OS-level process housing some of the application's threads."""

    def __init__(self, task_name: str, pattern: TaskPattern, created_at: float) -> None:
        self.id = next(_task_counter)
        self.task_name = task_name
        self.pattern = pattern
        self.created_at = created_at
        self.died_at: Optional[float] = None
        self.residents: list[ProcessBase] = []
        self.load = 0.0
        #: host assignment, filled in by the CONFIG stage / simulator
        self.host: Optional[object] = None
        #: total residents ever housed (perpetual reuse accounting)
        self.total_housed = 0

    @property
    def alive(self) -> bool:
        return self.died_at is None

    @property
    def name(self) -> str:
        return f"{self.task_name}[{self.id}]"

    def fits(self, weight: float) -> bool:
        """True when a resident of ``weight`` can be housed without the
        task instance becoming full (load exceeding the limit)."""
        return self.alive and self.load + weight <= self.pattern.load_limit

    def house(self, proc: ProcessBase, weight: float) -> None:
        self.residents.append(proc)
        self.load += weight
        self.total_housed += 1

    def evict(self, proc: ProcessBase, weight: float) -> None:
        self.residents.remove(proc)
        self.load = max(0.0, self.load - weight)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"TaskInstance({self.name}, load={self.load}, {state})"


class TaskManager:
    """Places process instances into task instances per a link spec."""

    def __init__(
        self,
        link_spec: LinkSpec,
        default_task: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        names = link_spec.task_names
        if default_task is None:
            if len(names) != 1:
                raise LinkError(
                    "default_task must be given when the link spec declares "
                    f"{len(names)} named tasks"
                )
            default_task = names[0]
        self.link_spec = link_spec
        self.default_task = default_task
        self.clock = clock
        self._lock = threading.Lock()
        self._instances: list[TaskInstance] = []
        self._by_process: dict[int, tuple[TaskInstance, float]] = {}
        self._timeline: list[TimelinePoint] = []
        #: callbacks fired (outside the manager lock) whenever a task
        #: instance dies, through *any* path: the last resident of a
        #: non-perpetual instance leaving, the perpetual wind-down, or
        #: an engine killing the instance outright (:meth:`mark_dead`).
        #: The CONFIG stage subscribes ``HostMapper.free`` here so the
        #: machine slot is released exactly when the OS-level process
        #: exits — not only when a resident thread happens to die.
        self.on_task_death: list[Callable[[TaskInstance], None]] = []
        self._record_timeline_locked()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, proc: ProcessBase, task_name: Optional[str] = None) -> TaskInstance:
        """Bundle an activated process instance into a task instance."""
        task_name = task_name or self.default_task
        pattern = self.link_spec.pattern_for(task_name)
        weight = pattern.weight_of(proc.definition_name)
        with self._lock:
            instance = self._find_or_fork_locked(task_name, pattern, weight)
            instance.house(proc, weight)
            self._by_process[proc.instance_id] = (instance, weight)
            proc.task_instance = instance
            self._record_timeline_locked()
            return instance

    def _find_or_fork_locked(
        self, task_name: str, pattern: TaskPattern, weight: float
    ) -> TaskInstance:
        for instance in self._instances:
            if instance.task_name == task_name and instance.fits(weight):
                return instance
        instance = TaskInstance(task_name, pattern, created_at=self.clock())
        self._instances.append(instance)
        return instance

    def release(self, proc: ProcessBase) -> Optional[TaskInstance]:
        """Handle a process death; may end its (non-perpetual) task."""
        died = None
        with self._lock:
            entry = self._by_process.pop(proc.instance_id, None)
            if entry is None:
                return None
            instance, weight = entry
            instance.evict(proc, weight)
            if (
                instance.alive
                and not instance.residents
                and not instance.pattern.perpetual
            ):
                instance.died_at = self.clock()
                died = instance
            self._record_timeline_locked()
        if died is not None:
            self._notify_task_death(died)
        return instance

    def kill_idle_perpetual(self) -> int:
        """End every empty perpetual task instance (application wind-down).

        Returns the number of instances ended.  Real MANIFOLD reclaims
        perpetual tasks when the application exits; drivers call this
        once the main coordinator is done so the machine-count timeline
        returns to zero.
        """
        with self._lock:
            now = self.clock()
            ended = []
            for instance in self._instances:
                if instance.alive and not instance.residents:
                    instance.died_at = now
                    ended.append(instance)
            if ended:
                self._record_timeline_locked()
        for instance in ended:
            self._notify_task_death(instance)
        return len(ended)

    def mark_dead(self, instance: TaskInstance) -> bool:
        """End a task instance whose OS-level process died out from
        under the coordination layer (a crashed or killed daemon).

        Residents stay mapped — their threads unwind through
        :meth:`release` as usual, which will not double-report the
        death.  Returns ``False`` when the instance was already dead.
        """
        with self._lock:
            if not instance.alive:
                return False
            instance.died_at = self.clock()
            self._record_timeline_locked()
        self._notify_task_death(instance)
        return True

    def _notify_task_death(self, instance: TaskInstance) -> None:
        for hook in list(self.on_task_death):
            hook(instance)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def instances(self) -> list[TaskInstance]:
        with self._lock:
            return list(self._instances)

    def alive_instances(self) -> list[TaskInstance]:
        with self._lock:
            return [t for t in self._instances if t.alive]

    def instance_of(self, proc: ProcessBase) -> Optional[TaskInstance]:
        with self._lock:
            entry = self._by_process.get(proc.instance_id)
            return entry[0] if entry else None

    def timeline(self) -> list[TimelinePoint]:
        """Alive-task-count history — Figure 1's raw data."""
        with self._lock:
            return list(self._timeline)

    def peak_instances(self) -> int:
        return max((p.alive for p in self.timeline()), default=0)

    def _record_timeline_locked(self) -> None:
        alive = sum(1 for t in self._instances if t.alive)
        self._timeline.append(TimelinePoint(self.clock(), alive))

    # ------------------------------------------------------------------
    # runtime wiring
    # ------------------------------------------------------------------
    def attach(self, runtime) -> "TaskManager":
        """Subscribe to a runtime's activation/death hooks."""
        runtime.on_activate_hooks.append(lambda proc: self.place(proc))
        runtime.on_death_hooks.append(lambda proc: self.release(proc))
        return self
