"""Regeneration of Table 1.

For every tolerance in {1.0e-3, 1.0e-4} and every level 0..15 the
experiment reports, exactly as the paper's table does:

* ``st`` — average sequential elapsed time (5 runs);
* ``ct`` — average concurrent (distributed) elapsed time (5 runs);
* ``m``  — weighted average of the number of machines used;
* ``su`` — average speedup ``st/ct``.

Per-grid work comes from the calibrated cost model; the runs themselves
are simulated on the paper's 32-machine heterogeneous cluster (see
DESIGN.md §3 for why this substitution preserves the shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.host import Host, paper_cluster
from repro.cluster.simulator import (
    DistributedRun,
    SimulationParams,
    simulate_distributed,
    simulate_sequential,
)
from repro.cluster.trace import machines_timeline, weighted_average_machines
from repro.perf.costmodel import CostModel

from .report import render_table

__all__ = ["Table1Row", "Table1Experiment", "render_table1", "PAPER_TABLE1"]


@dataclass(frozen=True)
class Table1Row:
    """One (tolerance, level) row of Table 1."""

    tol: float
    level: int
    st: float
    ct: float
    m: float
    su: float
    #: extras beyond the paper's columns, useful for analysis
    n_workers: int
    peak_machines: int
    st_std: float
    ct_std: float


#: The paper's Table 1, transcribed for comparison (levels with OCR
#: damage in the source are omitted).  Keyed by (tol, level).
PAPER_TABLE1: dict[tuple[float, int], tuple[float, float, float, float]] = {
    # tol 1.0e-3: (st, ct, m, su)
    (1.0e-3, 2): (0.06, 13.09, 2.8, 0.0),
    (1.0e-3, 3): (0.11, 7.86, 2.7, 0.0),
    (1.0e-3, 6): (0.86, 26.91, 3.3, 0.0),
    (1.0e-3, 7): (1.90, 28.97, 3.6, 0.1),
    (1.0e-3, 8): (4.27, 30.06, 3.7, 0.1),
    (1.0e-3, 9): (10.28, 23.84, 4.1, 0.4),
    (1.0e-3, 10): (24.14, 21.82, 5.5, 1.1),
    (1.0e-3, 11): (57.91, 33.58, 6.3, 1.7),
    (1.0e-3, 12): (145.47, 50.79, 7.6, 2.9),
    (1.0e-3, 13): (337.69, 75.28, 9.8, 4.5),
    (1.0e-3, 14): (818.62, 124.20, 11.7, 6.6),
    (1.0e-3, 15): (2019.02, 259.69, 12.2, 7.8),
    # tol 1.0e-4
    (1.0e-4, 0): (0.02, 7.68, 1.9, 0.0),
    (1.0e-4, 1): (0.05, 13.04, 2.4, 0.0),
    (1.0e-4, 2): (0.07, 12.99, 2.8, 0.0),
    (1.0e-4, 3): (0.15, 7.44, 2.6, 0.0),
    (1.0e-4, 4): (0.30, 12.03, 2.9, 0.0),
    (1.0e-4, 5): (0.68, 16.39, 3.3, 0.0),
    (1.0e-4, 6): (1.53, 21.07, 3.5, 0.1),
    (1.0e-4, 7): (3.53, 28.68, 3.7, 0.1),
    (1.0e-4, 8): (8.04, 30.29, 3.9, 0.3),
    (1.0e-4, 9): (21.00, 26.24, 4.8, 0.8),
    (1.0e-4, 10): (51.64, 38.66, 5.7, 1.3),
    (1.0e-4, 11): (124.17, 46.30, 7.6, 2.7),
    (1.0e-4, 12): (301.17, 65.02, 9.9, 4.6),
    (1.0e-4, 13): (724.92, 129.28, 11.4, 5.6),
    (1.0e-4, 14): (1751.02, 227.18, 13.1, 7.7),
    (1.0e-4, 15): (4118.08, 519.15, 13.3, 7.9),
}


class Table1Experiment:
    """The Table 1 sweep, parameterized for ablations."""

    def __init__(
        self,
        cost_model: CostModel,
        cluster: Optional[Sequence[Host]] = None,
        params: Optional[SimulationParams] = None,
        *,
        runs: int = 5,
        seed: int = 20040101,
        pool_per_diagonal: bool = False,
        target_cap: int | None = 8,
    ) -> None:
        if runs < 1:
            raise ValueError(f"runs must be >= 1, got {runs}")
        self.cost_model = cost_model
        self.cluster = list(cluster) if cluster is not None else paper_cluster()
        self.params = params if params is not None else SimulationParams()
        self.runs = runs
        self.seed = seed
        self.pool_per_diagonal = pool_per_diagonal
        self.target_cap = target_cap

    # ------------------------------------------------------------------
    def _pools(self, level: int, tol: float):
        costs = self.cost_model.level_costs(level, tol)
        if not self.pool_per_diagonal:
            return [costs]
        by_diagonal: dict[int, list] = {}
        for cost in costs:
            by_diagonal.setdefault(cost.l + cost.m, []).append(cost)
        return [by_diagonal[d] for d in sorted(by_diagonal)]

    def simulate_concurrent_once(
        self, level: int, tol: float, rng: np.random.Generator
    ) -> DistributedRun:
        return simulate_distributed(
            self._pools(level, tol),
            self.cluster,
            self.params,
            rng,
            master_prolongation_ref_seconds=self.cost_model.prolongation_seconds(
                level, self.target_cap
            ),
        )

    def run_level(self, level: int, tol: float) -> Table1Row:
        """Five-run averages for one (tolerance, level) cell."""
        rng = np.random.default_rng(
            [self.seed, level, int(round(-np.log10(tol)))]
        )
        costs = self.cost_model.level_costs(level, tol)
        prol = self.cost_model.prolongation_seconds(level, self.target_cap)

        sts = [
            simulate_sequential(
                costs, self.cluster[0], self.params, rng,
                prolongation_ref_seconds=prol,
            ).elapsed_seconds
            for _ in range(self.runs)
        ]
        cts: list[float] = []
        ms: list[float] = []
        peaks: list[int] = []
        for _ in range(self.runs):
            run = self.simulate_concurrent_once(level, tol, rng)
            cts.append(run.elapsed_seconds)
            timeline = machines_timeline(run)
            ms.append(weighted_average_machines(timeline, run.elapsed_seconds))
            peaks.append(max(p.machines for p in timeline))

        st, ct = float(np.mean(sts)), float(np.mean(cts))
        return Table1Row(
            tol=tol,
            level=level,
            st=st,
            ct=ct,
            m=float(np.mean(ms)),
            su=st / ct,
            n_workers=len(costs),
            peak_machines=max(peaks),
            st_std=float(np.std(sts)),
            ct_std=float(np.std(cts)),
        )

    def run_all(
        self,
        levels: Sequence[int] = tuple(range(16)),
        tols: Sequence[float] = (1.0e-3, 1.0e-4),
    ) -> list[Table1Row]:
        return [self.run_level(level, tol) for tol in tols for level in levels]


def render_table1(rows: Sequence[Table1Row], *, compare_paper: bool = True) -> str:
    """Text rendering of the regenerated Table 1, with the paper's
    numbers interleaved when available."""
    headers = ["tol", "level", "st", "ct", "m", "su"]
    if compare_paper:
        headers += ["st(paper)", "ct(paper)", "m(paper)", "su(paper)"]
    table_rows = []
    for row in rows:
        cells: list[object] = [
            f"{row.tol:.0e}", row.level, row.st, row.ct, row.m, round(row.su, 1)
        ]
        if compare_paper:
            paper = PAPER_TABLE1.get((row.tol, row.level))
            cells += list(paper) if paper else ["-", "-", "-", "-"]
        table_rows.append(cells)
    return render_table(
        headers,
        table_rows,
        title="Table 1: average sequential time (st), average concurrent time (ct), "
        "weighted average machines (m), speedup (su)",
    )
