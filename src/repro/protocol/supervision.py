"""Worker-failure supervision — an extension beyond the paper.

The paper's protocol has no failure story: a worker that dies without
raising ``death_worker`` leaves the rendezvous counting forever and the
master blocked on its dataport.  The IWIM-idiomatic fix is *another
coordinator*: a supervisor process that observes the predefined
``death`` event and, for a registered pool worker that FAILED,

1. injects a :class:`~repro.protocol.interfaces.FailedWorkerResult`
   unit into the master's dataport (a literal, source-broken stream —
   it cannot interfere with the pool's own wiring), and
2. raises the pool's local ``death_worker`` event on the worker's
   behalf, so ``Create_Worker_Pool``'s rendezvous counting closes
   exactly as if the worker had died cleanly.

Crucially the supervisor never touches the pool's streams and the pool
block needs no extra labels, so the delicate create/write ordering the
protocol relies on (§4.2) is untouched.

The registry optionally carries a :class:`~repro.resilience.FaultLog`
and an :class:`~repro.resilience.EscalationPolicy`: every claimed
failure is then recorded as a structured
:class:`~repro.resilience.FaultEvent` whose action comes from the same
escalation ladder the OS-level pool path uses
(:mod:`repro.restructured.parallel`), so a run that loses workers at
both layers still has one auditable failure history.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.manifold import (
    BEGIN,
    DEATH,
    Block,
    Coordinator,
    Event,
    ProcessBase,
    ProcessState,
    Runtime,
    StateContext,
    StreamType,
)

from .interfaces import FailedWorkerResult

__all__ = ["SupervisionRegistry", "make_supervisor"]


@dataclass
class _Registration:
    worker: ProcessBase
    master: ProcessBase
    death_worker: Event


class SupervisionRegistry:
    """Thread-safe map of pool workers to their pool's context.

    ``fault_log`` and ``escalation`` are optional: with a log attached,
    every claimed failure is recorded as a
    :class:`~repro.resilience.FaultEvent` whose action is what the
    shared escalation ladder prescribes for a ``death_worker`` fault.
    """

    def __init__(self, *, fault_log=None, escalation=None) -> None:
        self._lock = threading.Lock()
        self._by_worker: dict[int, _Registration] = {}
        self._handled: set[int] = set()
        self.fault_log = fault_log
        self.escalation = escalation

    def register(
        self, worker: ProcessBase, master: ProcessBase, death_worker: Event
    ) -> None:
        with self._lock:
            self._by_worker[worker.instance_id] = _Registration(
                worker, master, death_worker
            )

    def claim_failure(self, proc: ProcessBase) -> Optional[_Registration]:
        """Return the registration if ``proc`` is an unhandled failed
        pool worker; marks it handled (exactly-once semantics)."""
        if proc.state is not ProcessState.FAILED:
            return None
        with self._lock:
            if proc.instance_id in self._handled:
                return None
            registration = self._by_worker.get(proc.instance_id)
            if registration is None:
                return None
            self._handled.add(proc.instance_id)
            proc.failure_handled = True
        if self.fault_log is not None:
            from repro.resilience import EscalationPolicy, FaultEvent

            ladder = self.escalation or EscalationPolicy()
            self.fault_log.record(
                FaultEvent(
                    key=(proc.name,),
                    kind="death_worker",
                    attempt=1,
                    action=ladder.decide(1, "death_worker").value,
                    detected_by="supervisor",
                    error=repr(proc.failure),
                )
            )
        return registration

    @property
    def failures_handled(self) -> int:
        with self._lock:
            return len(self._handled)


def make_supervisor(
    runtime: Runtime, registry: SupervisionRegistry, name: str = "Supervisor"
) -> Coordinator:
    """Build and activate the supervisor coordinator.

    It idles until a ``death`` occurrence arrives; failed registered
    workers are converted into a dataport failure unit plus a
    ``death_worker`` raise.  The supervisor lives until the runtime
    shuts down.
    """
    block = Block(name)

    @block.state(BEGIN)
    def begin(ctx: StateContext) -> None:
        ctx.idle()

    @block.state(DEATH)
    def on_death(ctx: StateContext) -> None:
        occ = ctx.current_occurrence
        proc = occ.source if occ is not None else None
        if proc is None:
            return
        registration = registry.claim_failure(proc)
        if registration is None:
            return  # clean death, or not a pool worker of ours
        ctx.message(f"supervision: {proc.name} failed; closing its slot")
        ctx.send(
            FailedWorkerResult(
                worker_name=proc.name, error=repr(proc.failure)
            ),
            registration.master.port("dataport"),
            type=StreamType.KK,
        )
        ctx.raise_event(registration.death_worker)

    supervisor = Coordinator(runtime, name, block)
    supervisor.activate()
    return supervisor
