"""The structured trace recorder — one timeline per run.

The paper's restructuring makes the run's coordination structure
explicit; this module makes it *visible*.  A :class:`TraceRecorder`
collects typed :class:`TraceEvent` records from every execution layer —
the multiprocessing dispatch loop, the persistent pool, the MANIFOLD
runtime and the resilience ladder — into one chronological timeline
that the exporters (:mod:`repro.trace.export`) serialize and the
analysis (:mod:`repro.trace.analysis`) turns into per-worker
utilization, critical-path and recovery-overhead metrics.

Design constraints:

* **low overhead** — recording is one lock-protected list append; the
  global hook (:func:`emit`) is a single ``None`` check when no
  recorder is installed, so traced code paths cost nothing when tracing
  is off;
* **injectable clock** — the recorder timestamps with a caller-supplied
  monotonic clock (default :func:`time.monotonic`).  Tests drive a fake
  clock to build exactly-known timelines, which is also what makes the
  cost-model calibration testable without live wall time.  On Linux,
  ``time.monotonic`` is ``CLOCK_MONOTONIC``, which is shared across
  processes — worker-side timestamps (carried home in the job payload)
  land on the same axis as master-side ones;
* **layer-agnostic events** — everything is a flat
  ``(t, kind, key, worker, attempt, data)`` record.  Spans (nested
  phases such as the fan-out or the prolongation) are encoded as
  ``span_begin``/``span_end`` pairs sharing a ``span`` name, validated
  for proper nesting by the analysis.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "TraceRecorder",
    "install_recorder",
    "uninstall_recorder",
    "current_recorder",
    "emit",
    "recording",
    "trace_span",
]

#: the vocabulary of the timeline (open set: unknown kinds round-trip
#: through the exporters untouched, so layers can grow new ones)
EVENT_KINDS = (
    # job lifecycle (the dispatch loop)
    "job_submit",
    "job_start",
    "job_done",
    # the resilience ladder
    "fault",
    "retry",
    "respawn",
    "fallback",
    # substrate lifecycle
    "worker_spawn",
    "death_worker",
    # MANIFOLD coordination
    "rendezvous",
    "manifold_event",
    "process_activate",
    "process_death",
    # warm-path cache observability
    "cache_hit",
    "cache_miss",
    # the zero-copy data plane: transport vs compute split
    "payload_shm_write",
    "payload_attach",
    "combine_chunk",
    "segment_reaped",
    # the socket engine: network time vs compute split
    "net_send",
    "net_recv",
    "reconnect",
    # intra-grid decomposition: strip substructuring observability
    "strip_factor",
    "halo_exchange",
    "schur_solve",
    # nested phases
    "span_begin",
    "span_end",
)


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry.

    ``key`` identifies the subject (a grid ``(l, m)`` on the execution
    path, a process name tuple on the MANIFOLD path); ``worker`` names
    the lane (an OS PID for pool workers, a process name for MANIFOLD
    instances, ``None`` for the master itself).
    """

    seq: int
    t: float
    kind: str
    key: Optional[tuple] = None
    worker: Optional[object] = None
    attempt: int = 0
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out: dict = {"seq": self.seq, "t": self.t, "kind": self.kind}
        if self.key is not None:
            out["key"] = list(self.key)
        if self.worker is not None:
            out["worker"] = self.worker
        if self.attempt:
            out["attempt"] = self.attempt
        if self.data:
            out["data"] = self.data
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceEvent":
        key = payload.get("key")
        return cls(
            seq=int(payload.get("seq", 0)),
            t=float(payload["t"]),
            kind=str(payload["kind"]),
            key=tuple(key) if key is not None else None,
            worker=payload.get("worker"),
            attempt=int(payload.get("attempt", 0)),
            data=dict(payload.get("data", {})),
        )


class TraceRecorder:
    """Thread-safe accumulator of :class:`TraceEvent` records.

    ``clock`` is any zero-argument callable returning monotonic seconds;
    events may also carry an explicit ``t`` (how worker-side timestamps,
    measured in the worker process, land on the shared timeline).
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self.origin = clock()
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._seq = 0
        self._span_counter = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        *,
        key: Optional[tuple] = None,
        worker: Optional[object] = None,
        attempt: int = 0,
        t: Optional[float] = None,
        **data: object,
    ) -> TraceEvent:
        """Append one event; returns it (mostly for tests)."""
        stamp = self.clock() if t is None else t
        with self._lock:
            self._seq += 1
            event = TraceEvent(
                seq=self._seq,
                t=stamp,
                kind=kind,
                key=key,
                worker=worker,
                attempt=attempt,
                data=dict(data),
            )
            self._events.append(event)
        return event

    def record_fault(self, fault_event, *, t: Optional[float] = None) -> TraceEvent:
        """Lift a :class:`~repro.resilience.FaultEvent` into the trace.

        Duck-typed (``key``/``kind``/``attempt``/``action``/
        ``detected_by``/``error``/``seconds_lost``), so the resilience
        layer needs no import of this module to be liftable.
        """
        return self.record(
            "fault",
            key=tuple(fault_event.key),
            attempt=fault_event.attempt,
            t=t,
            fault_kind=fault_event.kind,
            action=fault_event.action,
            detected_by=fault_event.detected_by,
            error=fault_event.error,
            seconds_lost=fault_event.seconds_lost,
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        key: Optional[tuple] = None,
        worker: Optional[object] = None,
    ) -> Iterator[None]:
        """A nested phase: ``span_begin``/``span_end`` pair sharing an id."""
        with self._lock:
            self._span_counter += 1
            span_id = self._span_counter
        self.record("span_begin", key=key, worker=worker, span=name, span_id=span_id)
        try:
            yield
        finally:
            self.record("span_end", key=key, worker=worker, span=name, span_id=span_id)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def events(self) -> list[TraceEvent]:
        """A copy of the timeline so far, in record order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ----------------------------------------------------------------------
# the global hook: layers that cannot be handed a recorder (the shared
# pool, the MANIFOLD runtime) emit through here; a single None check
# when tracing is off
# ----------------------------------------------------------------------
_current: Optional[TraceRecorder] = None
_hook_lock = threading.Lock()


def install_recorder(recorder: TraceRecorder) -> None:
    """Make ``recorder`` the process-wide trace sink."""
    global _current
    with _hook_lock:
        _current = recorder


def uninstall_recorder(recorder: Optional[TraceRecorder] = None) -> None:
    """Remove the global sink (only if it is ``recorder``, when given)."""
    global _current
    with _hook_lock:
        if recorder is None or _current is recorder:
            _current = None


def current_recorder() -> Optional[TraceRecorder]:
    return _current


def emit(kind: str, **kwargs: object) -> None:
    """Record into the installed recorder, if any; otherwise a no-op."""
    recorder = _current
    if recorder is not None:
        recorder.record(kind, **kwargs)  # type: ignore[arg-type]


@contextmanager
def recording(recorder: Optional[TraceRecorder]) -> Iterator[Optional[TraceRecorder]]:
    """Install ``recorder`` globally for the duration (None = no-op)."""
    global _current
    if recorder is None:
        yield None
        return
    with _hook_lock:
        previous = _current
        _current = recorder
    try:
        yield recorder
    finally:
        with _hook_lock:
            _current = previous


@contextmanager
def trace_span(name: str, **kwargs: object) -> Iterator[None]:
    """A span on the installed recorder; a no-op when tracing is off."""
    recorder = _current
    if recorder is None:
        yield
        return
    with recorder.span(name, **kwargs):  # type: ignore[arg-type]
        yield
