"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so editable installs work on
environments whose setuptools predates PEP 660 wheel-less editables
(``pip install -e . --no-build-isolation`` or ``python setup.py develop``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Modernizing Existing Software: A Case Study' "
        "(SC 2004): MANIFOLD/IWIM coordination runtime, sparse-grid "
        "advection-diffusion solver, master/worker restructuring, and a "
        "heterogeneous-cluster simulator."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
