"""Process lifecycle, failure capture, death events, built-ins."""

from __future__ import annotations

import time

import pytest

from repro.manifold import (
    DEATH,
    AtomicDefinition,
    Event,
    EventMemory,
    ProcessError,
    ProcessState,
    Runtime,
    Stream,
    make_printer,
    make_sink,
    make_variable,
    make_void,
)


class TestLifecycle:
    def test_created_then_active_then_terminated(self, runtime):
        proc = runtime.create(AtomicDefinition("quick", lambda p: None))
        assert proc.state is ProcessState.CREATED
        proc.activate()
        assert proc.join(timeout=2.0)
        assert proc.state is ProcessState.TERMINATED

    def test_double_activation_rejected(self, runtime):
        proc = runtime.spawn(AtomicDefinition("quick", lambda p: None))
        proc.join(timeout=2.0)
        with pytest.raises(ProcessError):
            proc.activate()

    def test_spawn_activates(self, runtime):
        proc = runtime.spawn(AtomicDefinition("quick", lambda p: None))
        assert proc.join(timeout=2.0)

    def test_instance_names_are_unique(self, runtime):
        defn = AtomicDefinition("w", lambda p: None)
        a = runtime.create(defn)
        b = runtime.create(defn)
        assert a.name != b.name
        assert a.definition_name == b.definition_name == "w"

    def test_parameters_passed_to_body(self, runtime):
        seen = []
        defn = AtomicDefinition("param", lambda p, x, y: seen.append((x, y)))
        runtime.spawn(defn, 1, 2).join(timeout=2.0)
        assert seen == [(1, 2)]

    def test_failure_captured(self, runtime):
        def bad(proc):
            raise ValueError("worker exploded")

        proc = runtime.spawn(AtomicDefinition("bad", bad))
        proc.join(timeout=2.0)
        assert proc.state is ProcessState.FAILED
        assert isinstance(proc.failure, ValueError)
        assert "worker exploded" in proc.failure_traceback

    def test_runtime_check_raises_worker_failure(self, runtime):
        def bad(proc):
            raise RuntimeError("boom")

        runtime.spawn(AtomicDefinition("bad", bad)).join(timeout=2.0)
        with pytest.raises(RuntimeError, match="boom"):
            runtime.check()

    def test_kill_interrupts_blocked_worker(self, runtime):
        proc = runtime.spawn(AtomicDefinition("blocked", lambda p: p.read()))
        time.sleep(0.02)
        proc.kill()
        assert proc.join(timeout=2.0)

    def test_port_interrupt_is_clean_exit_not_failure(self, runtime):
        proc = runtime.spawn(AtomicDefinition("blocked", lambda p: p.read()))
        time.sleep(0.02)
        runtime.shutdown()
        proc.join(timeout=2.0)
        assert proc.state is not ProcessState.FAILED

    def test_default_ports_exist(self, runtime):
        proc = runtime.create(AtomicDefinition("p", lambda p: None))
        assert set(proc.ports) == {"input", "output", "error"}

    def test_custom_ports(self, runtime):
        defn = AtomicDefinition(
            "master", lambda p: None, in_ports=("input", "dataport")
        )
        proc = runtime.create(defn)
        assert "dataport" in proc.ports

    def test_duplicate_port_name_rejected(self, runtime):
        defn = AtomicDefinition(
            "broken", lambda p: None, in_ports=("x",), out_ports=("x",)
        )
        with pytest.raises(ProcessError):
            runtime.create(defn)

    def test_reference_points_to_process(self, runtime):
        proc = runtime.create(AtomicDefinition("p", lambda p: None))
        assert proc.reference().process is proc


class TestDeathEvents:
    def test_death_broadcast_on_termination(self, runtime):
        memory = EventMemory()
        runtime.subscribe(memory)
        proc = runtime.spawn(AtomicDefinition("quick", lambda p: None))
        proc.join(timeout=2.0)
        occ = memory.wait_for_match(
            lambda o: 0 if o.event == DEATH and o.source is proc else None,
            timeout=2.0,
        )
        assert occ is not None

    def test_raised_events_reach_subscribers(self, runtime):
        memory = EventMemory()
        runtime.subscribe(memory)
        done = Event("done")
        proc = runtime.spawn(AtomicDefinition("raiser", lambda p: p.raise_event(done)))
        proc.join(timeout=2.0)
        occ = memory.wait_for_match(
            lambda o: 0 if o.event == done else None, timeout=2.0
        )
        assert occ is not None and occ.source is proc

    def test_event_log_records_broadcasts(self, runtime):
        done = Event("done")
        proc = runtime.spawn(AtomicDefinition("raiser", lambda p: p.raise_event(done)))
        proc.join(timeout=2.0)
        names = [occ.event.name for occ in runtime.event_log()]
        assert "done" in names

    def test_unsubscribed_memory_not_delivered(self, runtime):
        memory = EventMemory()
        runtime.subscribe(memory)
        runtime.unsubscribe(memory)
        runtime.spawn(AtomicDefinition("quick", lambda p: None)).join(timeout=2.0)
        assert len(memory) == 0


class TestBuiltins:
    def test_variable_initial_value(self, runtime):
        var = make_variable(runtime, 7)
        assert var.get() == 7

    def test_variable_increment(self, runtime):
        var = make_variable(runtime, 0)
        assert var.increment() == 1
        assert var.increment(5) == 6

    def test_variable_increment_from_none(self, runtime):
        var = make_variable(runtime)
        assert var.increment() == 1

    def test_variable_port_write_updates_value(self, runtime):
        producer = runtime.create(AtomicDefinition("p", lambda p: None))
        var = make_variable(runtime, 0)
        Stream().connect(producer.output, var.input)
        producer.output.write(42)
        deadline = time.monotonic() + 2.0
        while var.get() != 42 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert var.get() == 42

    def test_void_never_terminates(self, runtime):
        void = make_void(runtime)
        assert not void.join(timeout=0.1)
        assert void.state is ProcessState.ACTIVE

    def test_sink_swallows_units(self, runtime):
        producer = runtime.create(AtomicDefinition("p", lambda p: None))
        sink = make_sink(runtime)
        Stream().connect(producer.output, sink.input)
        producer.output.write("gone")
        deadline = time.monotonic() + 2.0
        while sink.input.pending() > 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert sink.input.pending() == 0

    def test_printer_emits_lines(self, runtime):
        lines: list[str] = []
        producer = runtime.create(AtomicDefinition("p", lambda p: None))
        printer = make_printer(runtime, emit=lines.append)
        Stream().connect(producer.output, printer.input)
        producer.output.write("hello")
        deadline = time.monotonic() + 2.0
        while not lines and time.monotonic() < deadline:
            time.sleep(0.005)
        assert lines and "hello" in lines[0]


class TestRuntime:
    def test_live_processes_listed(self, runtime):
        void = make_void(runtime)
        assert void in runtime.live_processes()

    def test_join_all_times_out_on_blocked(self, runtime):
        make_void(runtime)
        assert runtime.join_all(timeout=0.1) is False

    def test_context_manager_shuts_down(self):
        with Runtime("ctx") as rt:
            void = make_void(rt)
        assert void.join(timeout=2.0)

    def test_activation_hooks_fire(self, runtime):
        seen = []
        runtime.on_activate_hooks.append(lambda p: seen.append(("up", p.name)))
        runtime.on_death_hooks.append(lambda p: seen.append(("down", p.name)))
        proc = runtime.spawn(AtomicDefinition("hooked", lambda p: None))
        proc.join(timeout=2.0)
        kinds = [k for k, _ in seen]
        assert kinds == ["up", "down"]
