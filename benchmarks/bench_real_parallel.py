"""E8 — real (non-simulated) concurrent execution on this machine.

Two claims of the paper are checked on actual hardware rather than in
the simulator:

* correctness: the restructured application's results "are exactly the
  same as in the sequential version" — asserted bitwise;
* the restructuring wins once per-grid work dominates the coordination
  overhead — demonstrated with the multiprocessing configuration (the
  GIL workaround: each worker in its own OS process, the moral
  equivalent of one worker per task instance).

Absolute speedups depend on this machine's core count; we assert the
conservative direction only.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.perf import speedup
from repro.restructured import run_concurrent, run_multiprocessing
from repro.sparsegrid import SequentialApplication

ROOT, LEVEL, TOL = 2, 5, 1.0e-4


@pytest.fixture(scope="module")
def sequential_result():
    return SequentialApplication(root=ROOT, level=LEVEL, tol=TOL).run()


@pytest.mark.benchmark(group="real")
def test_real_sequential(benchmark):
    result = benchmark.pedantic(
        lambda: SequentialApplication(root=ROOT, level=LEVEL, tol=TOL).run(),
        rounds=3,
        iterations=1,
    )
    assert result.n_grids == 2 * LEVEL + 1


@pytest.mark.benchmark(group="real")
def test_real_multiprocessing_identical_and_reported(benchmark, sequential_result):
    n_proc = min(2 * LEVEL + 1, multiprocessing.cpu_count())
    result = benchmark.pedantic(
        lambda: run_multiprocessing(
            root=ROOT, level=LEVEL, tol=TOL, processes=n_proc
        ),
        rounds=3,
        iterations=1,
    )
    assert np.array_equal(result.combined, sequential_result.combined)
    su = speedup(sequential_result.total_seconds, result.total_seconds)
    print(
        f"\nreal run: st={sequential_result.total_seconds:.3f}s "
        f"ct={result.total_seconds:.3f}s su={su:.2f} on {n_proc} processes"
    )


@pytest.mark.benchmark(group="real")
def test_real_manifold_runtime_identical(benchmark, sequential_result):
    """The full coordination runtime (threads) end to end."""
    result, _ = benchmark.pedantic(
        lambda: run_concurrent(root=ROOT, level=LEVEL, tol=TOL, timeout=300),
        rounds=2,
        iterations=1,
    )
    assert np.array_equal(result.combined, sequential_result.combined)


@pytest.mark.benchmark(group="real")
def test_real_multiprocessing_beats_sequential_at_scale(benchmark):
    """With enough per-grid work, processes beat the sequential loop.

    Uses a tighter tolerance to push per-grid work well above the
    process-pool constant costs, the same crossover logic as Table 1.
    """
    if multiprocessing.cpu_count() < 2:
        pytest.skip("needs at least two cores")
    level, tol = 6, 1.0e-4

    seq = SequentialApplication(root=ROOT, level=level, tol=tol).run()

    result = benchmark.pedantic(
        lambda: run_multiprocessing(root=ROOT, level=level, tol=tol),
        rounds=2,
        iterations=1,
    )
    su = speedup(seq.subsolve_seconds, result.pool_seconds)
    print(f"\nlevel {level} tol {tol:g}: loop speedup {su:.2f} "
          f"on {result.processes} processes")
    assert np.array_equal(result.combined, seq.combined)
    assert su > 1.0, "the concurrent loop must beat the sequential loop"
