"""State blocks: the control structure of coordinator processes.

A MANIFOLD coordinator (or *manner*, a parameterized subprogram run in
the caller's process) is a set of **blocks**.  A block has

* a *local declaration part* — run once on entry (create local processes
  and events, declare ``save``/``ignore``/``priority``/``hold``);
* a set of labelled **states**; upon entry the runtime posts the
  predefined high-priority ``begin`` event, so the mandatory ``begin``
  state is always visited first;
* transition semantics: whenever an event occurrence in the process's
  event memory matches a state label, the current state is *preempted* —
  its streams are dismantled according to their BK/KK types — and the
  body of the matching state runs.

Nesting and ``save``: a state body may itself be a block.  While an
inner block is active, occurrences may be handled by the labels of any
block on the stack, innermost first — *unless* an inner block declares
``save`` (the paper's ``save *.``), which shields outer labels until the
block exits.  This is exactly the behaviour the paper narrates: the
begin state *inside* ``create_worker`` is preempted by the next
``create_worker`` occurrence, whose handling label lives one block out,
while ``Create_Worker_Pool`` itself declares ``save *`` so the caller's
labels stay dormant until the manner returns.

Simplification relative to the full language (documented deviation):
unconsumed occurrences always remain in the event memory — i.e. every
event behaves as if saved.  The protocol only relies on ``save`` being
at least this permissive, and the ``ignore`` declaration provides the
required garbage collection for ``death`` events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, Mapping, Optional

from .errors import StateMachineError
from .events import BEGIN, Event, EventMemory, EventOccurrence
from .ports import Port
from .process import AtomicDefinition, AtomicProcess, ProcessBase
from .streams import Stream, StreamType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manifold import Coordinator

__all__ = ["Block", "StateContext", "Preempted", "HaltBlock", "BlockExit"]

#: Rank assigned to the predefined ``begin`` event ("high-priority").
_BEGIN_RANK = 1_000_000


class Preempted(Exception):
    """Raised inside a blocking primitive when a matching event arrives.

    ``depth`` is the block-stack depth whose label matched; executors at
    deeper levels unwind (dismantling their streams) and re-raise until
    the owning executor catches it and performs the transition.
    """

    def __init__(self, occurrence: EventOccurrence, depth: int) -> None:
        super().__init__(occurrence.event.name)
        self.occurrence = occurrence
        self.depth = depth


class HaltBlock(Exception):
    """Raised by ``ctx.halt()``: return from the current block."""


class BlockExit(Exception):
    """Internal: unwind all blocks of this coordinator (process end)."""


class Block:
    """A reusable description of one coordinator block.

    ``setup`` runs the local declaration part and returns the block's
    locals mapping (processes, counters, local events).  States are
    registered with :meth:`state`; each body is a callable taking a
    :class:`StateContext`.
    """

    def __init__(
        self,
        name: str,
        *,
        save_all: bool = False,
        ignore: Iterable[Event] = (),
        priority: Optional[Mapping[Event, int]] = None,
        setup: Optional[Callable[["StateContext"], Dict[str, object]]] = None,
    ) -> None:
        self.name = name
        self.save_all = save_all
        self.ignore = tuple(ignore)
        self.priority = dict(priority or {})
        self.setup = setup
        self._states: Dict[Event, Callable[["StateContext"], None]] = {}

    def state(
        self, event: Event
    ) -> Callable[[Callable[["StateContext"], None]], Callable[["StateContext"], None]]:
        """Decorator registering a state body for ``event``."""

        def register(body: Callable[["StateContext"], None]) -> Callable[["StateContext"], None]:
            if event in self._states:
                raise StateMachineError(
                    f"block {self.name!r} already has a state for {event!r}"
                )
            self._states[event] = body
            return body

        return register

    def add_state(self, event: Event, body: Callable[["StateContext"], None]) -> None:
        self.state(event)(body)

    @property
    def states(self) -> Dict[Event, Callable[["StateContext"], None]]:
        return dict(self._states)

    def label_rank(self, occurrence: EventOccurrence) -> Optional[int]:
        """Rank of the label matching ``occurrence`` (None = no match)."""
        if occurrence.event not in self._states:
            return None
        if occurrence.event == BEGIN:
            return _BEGIN_RANK
        return self.priority.get(occurrence.event, 0)

    def validate(self) -> None:
        if BEGIN not in self._states:
            raise StateMachineError(
                f"block {self.name!r} has no begin state; every block must have one"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Block({self.name}, states={[e.name for e in self._states]})"


class _Frame:
    """Runtime data for one active block on the executor stack."""

    def __init__(self, block: Block, depth: int) -> None:
        self.block = block
        self.depth = depth
        self.locals: Dict[str, object] = {}
        self.current_streams: list[Stream] = []


class StateContext:
    """The toolbox handed to state bodies and block setups.

    One context exists per coordinator; ``frame`` tracks the innermost
    active block.  All primitives of the paper's protocol source are
    available: process creation, stream connection with explicit types,
    ``post``, ``raise``, ``terminated``, IDLE, ``halt`` and nested block
    entry (for states whose body is itself a block).
    """

    def __init__(self, coordinator: "Coordinator") -> None:
        self.coordinator = coordinator
        self._stack: list[_Frame] = []
        self._halt_requested = False
        #: the occurrence that caused the transition into the currently
        #: executing state (None while in a begin state entered via the
        #: automatic runtime posting); lets state bodies react to the
        #: event's source, MANIFOLD's ``e.p`` label form
        self.current_occurrence: Optional[EventOccurrence] = None

    # ------------------------------------------------------------------
    # stack introspection
    # ------------------------------------------------------------------
    @property
    def frame(self) -> _Frame:
        if not self._stack:
            raise StateMachineError("no active block")
        return self._stack[-1]

    @property
    def locals(self) -> Dict[str, object]:
        return self.frame.locals

    def local(self, name: str) -> object:
        """Look a name up through the block stack, innermost first."""
        for frame in reversed(self._stack):
            if name in frame.locals:
                return frame.locals[name]
        raise KeyError(name)

    @property
    def memory(self) -> EventMemory:
        return self.coordinator.event_memory

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def create(
        self, definition: AtomicDefinition, *args: object, **kwargs: object
    ) -> AtomicProcess:
        """``process p is P(args)``: create without activating."""
        return self.coordinator.runtime.create(definition, *args, **kwargs)

    def spawn(
        self, definition: AtomicDefinition, *args: object, **kwargs: object
    ) -> AtomicProcess:
        """Create and activate in one step (``auto process`` declaration)."""
        return self.coordinator.runtime.spawn(definition, *args, **kwargs)

    # ------------------------------------------------------------------
    # stream wiring
    # ------------------------------------------------------------------
    def connect(
        self,
        source: Port,
        sink: Port,
        type: StreamType = StreamType.BK,
        name: str = "",
    ) -> Stream:
        """Set up a stream between two ports of *other* processes.

        The stream is recorded against the current state and dismantled
        (per its type) when the state is preempted or exited.
        """
        stream = Stream(type, name=name).connect(source, sink)
        self.frame.current_streams.append(stream)
        return stream

    def send(
        self,
        payload: object,
        sink: Port,
        type: StreamType = StreamType.BK,
        name: str = "",
    ) -> Stream:
        """Deliver a literal unit to a port (``value -> p``), e.g. the
        ``&worker -> master`` reference transfer of the protocol."""
        stream = Stream.literal(payload, sink, type=type, name=name)
        self.frame.current_streams.append(stream)
        return stream

    def wire(
        self,
        spec: str,
        env,
        types=None,
    ) -> list[Stream]:
        """Realize a MANIFOLD-style stream chain, e.g.

        ``ctx.wire("&worker -> master -> worker -> master.dataport",
        env={...}, types={2: StreamType.KK})``.

        See :mod:`repro.manifold.wiring` for the notation.
        """
        from .wiring import wire as _wire

        return _wire(self, spec, env, types)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def post(self, event: Event) -> None:
        """Post into this coordinator's own event memory."""
        self.memory.post(event, source=self.coordinator)

    def raise_event(self, event: Event) -> None:
        """Broadcast to every observer (MANIFOLD ``raise``)."""
        self.coordinator.raise_event(event)

    # ------------------------------------------------------------------
    # blocking primitives (all preemptible)
    # ------------------------------------------------------------------
    def idle(self) -> None:
        """``terminated(void)``: block until an event preempts the state."""
        self._wait(lambda: False)
        raise StateMachineError("idle() returned without preemption")  # pragma: no cover

    def terminated(self, proc: ProcessBase) -> None:
        """Block until ``proc`` terminates, unless an event preempts first."""
        self._wait(proc.is_terminated)

    def sleep_until(self, predicate: Callable[[], bool]) -> None:
        """Block until ``predicate`` is true, unless preempted."""
        self._wait(predicate)

    def _matcher(self) -> Callable[[EventOccurrence], Optional[tuple[int, int]]]:
        """Build a rank function over the current block stack.

        Innermost blocks win; a ``save_all`` block shields everything
        beneath it on the stack.  Returned rank is ``(depth_bonus,
        label_rank)`` so inner matches dominate, then declared priority.
        """
        visible: list[_Frame] = []
        for frame in reversed(self._stack):
            visible.append(frame)
            if frame.block.save_all:
                break

        def match(occ: EventOccurrence) -> Optional[tuple[int, int]]:
            for frame in visible:
                rank = frame.block.label_rank(occ)
                if rank is not None:
                    return (frame.depth, rank)
            return None

        return match

    def _wait(self, predicate: Callable[[], bool]) -> None:
        """Shared wait: returns normally when ``predicate`` fires, raises
        :class:`Preempted` when a matching event occurrence arrives."""
        matcher = self._matcher()

        def ranked(occ: EventOccurrence) -> Optional[int]:
            r = matcher(occ)
            if r is None:
                return None
            return r[0] * 1_000_000 + min(r[1], 999_999)

        while True:
            if self.memory.closed:
                # runtime shutdown: unwind all blocks of this coordinator
                raise BlockExit()
            if self.coordinator.deadline_exceeded():
                raise StateMachineError(
                    f"{self.coordinator.name} exceeded its deadline while waiting"
                )
            occ = self.memory.wait_for_match(
                ranked, timeout=self.coordinator.poll_interval, extra_predicate=predicate
            )
            if occ is not None:
                result = matcher(occ)
                assert result is not None
                raise Preempted(occ, depth=result[0])
            if predicate():
                return

    def halt(self) -> None:
        """Return from the current block (MANIFOLD ``halt``)."""
        raise HaltBlock()

    # ------------------------------------------------------------------
    # nested blocks / manners
    # ------------------------------------------------------------------
    def run_block(self, block: Block) -> None:
        """Run a nested block (a state body that is itself a block, or a
        manner's body) to completion within this coordinator."""
        block.validate()
        frame = _Frame(block, depth=len(self._stack))
        self._stack.append(frame)
        try:
            if block.setup is not None:
                frame.locals.update(block.setup(self) or {})
            # the runtime posts the predefined high-priority begin event
            self.post(BEGIN)
            self._event_loop(frame)
        finally:
            self._dismantle_current(frame)
            if block.ignore:
                self.memory.discard(block.ignore)
            self._stack.pop()

    def _event_loop(self, frame: _Frame) -> None:
        matcher_for_frame = frame.block.label_rank
        pending_occ: Optional[EventOccurrence] = None
        while True:
            if pending_occ is None:
                occ = self._wait_for_transition(frame)
            else:
                occ, pending_occ = pending_occ, None
            body = frame.block.states[occ.event]
            self._dismantle_current(frame)
            self.current_occurrence = occ
            try:
                body(self)
            except Preempted as p:
                if p.depth != frame.depth:
                    raise  # outer block's label matched: unwind further
                if matcher_for_frame(p.occurrence) is None:  # pragma: no cover
                    raise StateMachineError(
                        f"preemption for unknown label {p.occurrence.event!r}"
                    )
                pending_occ = p.occurrence
            except HaltBlock:
                return

    def _wait_for_transition(self, frame: _Frame) -> EventOccurrence:
        """Between states: wait until *some* visible label matches."""
        try:
            self.idle()
        except Preempted as p:
            if p.depth != frame.depth:
                self._dismantle_current(frame)
                raise
            return p.occurrence
        raise StateMachineError("unreachable")  # pragma: no cover

    def _dismantle_current(self, frame: _Frame) -> None:
        streams, frame.current_streams = frame.current_streams, []
        for stream in streams:
            stream.dismantle()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def message(self, text: str) -> None:
        """MES(...) equivalent: a trace line attributed to the coordinator."""
        self.coordinator.trace_message(text)
