"""The master wrapper — the sequential program minus ``subsolve``.

"The master performs all the computation in the sequential source code
except the work embodied in ``subsolve``, which is done by the workers."
Concretely: initialization, then — where the sequential code runs the
nested loop — protocol steps 3(a)–3(h) delegating one ``subsolve`` per
grid to a pool of workers, then ``finished``, then the final
prolongation work.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.manifold import AtomicDefinition, AtomicProcess
from repro.protocol import MasterProtocolClient, WorkerJob
from repro.trace.recorder import trace_span
from repro.sparsegrid.combination import combine
from repro.sparsegrid.grid import Grid

from .worker import SubsolveJobSpec, SubsolvePayload

__all__ = ["ConcurrentResult", "make_master_definition"]


@dataclass
class ConcurrentResult:
    """What a restructured run produces — mirrors ``SequentialResult``."""

    root: int
    level: int
    tol: float
    payloads: dict[tuple[int, int], SubsolvePayload]
    target_grid: Grid
    combined: np.ndarray
    total_seconds: float
    pool_seconds: float
    prolongation_seconds: float
    n_workers: int

    @property
    def grid_seconds(self) -> dict[tuple[int, int], float]:
        return {k: p.wall_seconds for k, p in self.payloads.items()}


def make_master_definition(
    root: int,
    level: int,
    tol: float,
    problem_name: str = "rotating-cone",
    problem_kwargs: Optional[dict] = None,
    *,
    t_end: Optional[float] = None,
    scheme: str = "upwind",
    target_cap: int | None = 8,
    pool_per_diagonal: bool = False,
    on_result: Optional[Callable[[ConcurrentResult], None]] = None,
) -> AtomicDefinition:
    """Build the ``Master`` manifold for one run configuration.

    ``pool_per_diagonal`` selects the alternative organization in which
    the master requests a fresh workers-pool per grid diagonal (two
    pools) instead of one pool for all ``2*level+1`` grids; the paper's
    protocol supports both ("just imagine that we have a master that
    ... wants to introduce another workers-pool"), and the ablation
    benchmark compares them.

    ``on_result`` receives the final :class:`ConcurrentResult`; the
    master also publishes it as ``proc.result`` for the driver.
    """
    kw_pairs = tuple(sorted((problem_kwargs or {}).items()))

    def grids_by_pool() -> list[list[Grid]]:
        diagonals: dict[int, list[Grid]] = {}
        for lm in (level - 1, level):
            if lm < 0:
                continue
            diagonals[lm] = [Grid(root, l, lm - l) for l in range(lm + 1)]
        if pool_per_diagonal:
            return [diagonals[lm] for lm in sorted(diagonals)]
        return [[g for lm in sorted(diagonals) for g in diagonals[lm]]]

    def master_body(proc: AtomicProcess) -> None:
        t_start = time.perf_counter()
        client = MasterProtocolClient(proc)
        # step 2: initialization work (the global data structure)
        payloads: dict[tuple[int, int], SubsolvePayload] = {}

        # step 3 (+4): delegate each grid's subsolve to a pool worker
        t_pool = time.perf_counter()
        n_workers = 0
        with trace_span("master_fanout"):
            for pool_grids in grids_by_pool():
                jobs = [
                    WorkerJob(
                        job_id=(g.l, g.m),
                        payload=SubsolveJobSpec(
                            problem_name=problem_name,
                            root=root,
                            l=g.l,
                            m=g.m,
                            tol=tol,
                            t_end=t_end,
                            scheme=scheme,
                            problem_kwargs=kw_pairs,
                        ),
                    )
                    for g in pool_grids
                ]
                n_workers += len(jobs)
                for result in client.run_pool(jobs):
                    payload = result.payload
                    payloads[(payload.l, payload.m)] = payload
            client.finished()
        pool_seconds = time.perf_counter() - t_pool

        # step 5: final sequential computation — the prolongation work
        t_prol = time.perf_counter()
        with trace_span("prolongation"):
            solutions = {key: p.solution for key, p in payloads.items()}
            target_grid, combined = combine(
                solutions, root, level, target_cap=target_cap
            )
        prolongation_seconds = time.perf_counter() - t_prol

        outcome = ConcurrentResult(
            root=root,
            level=level,
            tol=tol,
            payloads=payloads,
            target_grid=target_grid,
            combined=combined,
            total_seconds=time.perf_counter() - t_start,
            pool_seconds=pool_seconds,
            prolongation_seconds=prolongation_seconds,
            n_workers=n_workers,
        )
        proc.result = outcome  # type: ignore[attr-defined]
        if on_result is not None:
            on_result(outcome)

    return AtomicDefinition(
        "Master",
        master_body,
        in_ports=("input", "dataport"),
        out_ports=("output", "error"),
    )
