"""Stall detection for coordination applications.

Event-driven coordination deadlocks silently: a master waiting for an
acknowledgement nobody will send just blocks.  The watchdog gives a
runtime a pulse — every broadcast, activation and death ticks an
activity counter — and a background sampler raises the alarm when the
pulse flatlines while processes are still alive.

The detector is deliberately *advisory* (it reports; it does not kill):
a long-running numerical kernel between port operations is
indistinguishable from a deadlock from the coordination layer's
viewpoint, exactly as a busy C routine was to the original MANIFOLD
runtime.  Callers choose the timeout accordingly, or use
:meth:`Watchdog.stop` around known-quiet phases.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .process import ProcessState
from .scheduler import Runtime

__all__ = ["StallReport", "Watchdog"]


@dataclass(frozen=True)
class StallReport:
    """What the watchdog saw when the pulse flatlined."""

    stalled_for_seconds: float
    live_processes: tuple[str, ...]
    pending_events: int
    activity_count: int

    def describe(self) -> str:
        names = ", ".join(self.live_processes) or "(none)"
        return (
            f"no coordination activity for {self.stalled_for_seconds:.1f}s; "
            f"live processes: {names}; "
            f"{self.pending_events} event occurrence(s) pending"
        )


class Watchdog:
    """Samples a runtime's activity counter on a background thread.

    ``on_stall`` fires (once per flatline episode) with a
    :class:`StallReport`; activity resets the episode.
    """

    def __init__(
        self,
        runtime: Runtime,
        timeout: float = 5.0,
        on_stall: Optional[Callable[[StallReport], None]] = None,
        poll_interval: float = 0.05,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.runtime = runtime
        self.timeout = timeout
        self.on_stall = on_stall
        self.poll_interval = poll_interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._reports: list[StallReport] = []
        self._reports_lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> "Watchdog":
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._thread = threading.Thread(
            target=self._run, name="watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def reports(self) -> list[StallReport]:
        with self._reports_lock:
            return list(self._reports)

    def snapshot(self, stalled_for: float) -> StallReport:
        live = tuple(
            proc.name
            for proc in self.runtime.live_processes()
            if proc.state is ProcessState.ACTIVE
        )
        pending = 0
        for proc in self.runtime.processes():
            memory = getattr(proc, "event_memory", None)
            if memory is not None:
                pending += len(memory)
        return StallReport(
            stalled_for_seconds=stalled_for,
            live_processes=live,
            pending_events=pending,
            activity_count=self.runtime.activity_count,
        )

    def _run(self) -> None:
        last_count = self.runtime.activity_count
        last_change = time.monotonic()
        reported = False
        while not self._stop.wait(self.poll_interval):
            count = self.runtime.activity_count
            now = time.monotonic()
            if count != last_count:
                last_count = count
                last_change = now
                reported = False
                continue
            if not self.runtime.live_processes():
                last_change = now
                reported = False
                continue
            stalled_for = now - last_change
            if stalled_for >= self.timeout and not reported:
                report = self.snapshot(stalled_for)
                with self._reports_lock:
                    self._reports.append(report)
                if self.on_stall is not None:
                    self.on_stall(report)
                reported = True
