"""Real task instances: one OS process per worker, with perpetual reuse.

:class:`~repro.restructured.worker.ProcessPoolEngine` uses a flat
``multiprocessing.Pool``; this engine reproduces the MLINK semantics of
§6 *literally* on this machine:

* each computing worker occupies its **own OS-level process** (a task
  instance with ``{load 1}``);
* when the worker dies, its task instance either stays alive to
  "welcome a new worker" (``{perpetual}``, the default) or exits;
* spawning a fresh task instance has real cost (process fork + import),
  so the reuse behaviour is *observable*: the engine counts spawns and
  reuses, and a run of many short jobs forks far fewer processes than
  it runs workers — the same effect the paper reports for machines.

The protocol side is unchanged: this is just another compute engine for
:func:`~repro.restructured.worker.make_subsolve_worker`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Optional

from .worker import ComputeEngine, SubsolveJobSpec, SubsolvePayload, execute_job

__all__ = ["TaskInstanceDied", "TaskInstanceEngine", "TaskInstanceStats"]

_STOP = "__task_instance_stop__"


class TaskInstanceDied(RuntimeError):
    """A task instance's OS process died under a job or between jobs.

    The duplex channel surfaces that as ``EOFError`` / ``BrokenPipeError``
    depending on which side of the pipe broke first; both mean the same
    thing — the worker is gone — so the engine raises this single
    structured error instead of letting the raw pipe traceback escape.
    The supervision layer records it as a ``death_worker`` fault.
    """

    fault_kind = "death_worker"

    def __init__(self, message: str, exitcode: Optional[int] = None) -> None:
        super().__init__(message)
        self.exitcode = exitcode


def _task_instance_main(channel: Connection) -> None:
    """The OS process's serve loop: one job at a time until stopped."""
    parent_pid = os.getppid()
    while True:
        try:
            # orphan watchdog: a fork-context child inherits the engine
            # process's open fds — including the write end of its *own*
            # pipe — so if that process dies without a _STOP (a daemon
            # killed mid-run), the pipe never EOFs and a bare recv()
            # would block forever, leaking the process and holding any
            # inherited sockets open.  Poll instead, and exit once the
            # parent is gone (reparenting changes getppid()).
            while not channel.poll(1.0):
                if os.getppid() != parent_pid:
                    return
            message = channel.recv()
        except (EOFError, OSError):
            # the engine closed its end without a _STOP (shutdown race,
            # or the master died) — exit quietly, not with a traceback
            return
        if message == _STOP:
            channel.close()
            return
        # a bare spec runs cached; a (spec, use_cache) pair is explicit
        spec, use_cache = (
            message if isinstance(message, tuple) else (message, True)
        )
        try:
            reply = ("ok", execute_job(spec, use_cache=use_cache))
        except Exception as exc:  # noqa: BLE001 - marshal the failure back
            reply = ("error", f"{type(exc).__name__}: {exc}")
        try:
            channel.send(reply)
        except (BrokenPipeError, OSError):
            # the engine stopped listening mid-job; nothing to report to
            return


class _TaskInstance:
    """One live OS process plus its control channel."""

    def __init__(self, context) -> None:
        parent_end, child_end = multiprocessing.Pipe()
        self.channel: Connection = parent_end
        self.process = context.Process(
            target=_task_instance_main, args=(child_end,), daemon=True
        )
        self.process.start()
        child_end.close()
        self.jobs_served = 0

    def run(
        self, spec: SubsolveJobSpec, use_cache: bool = True
    ) -> SubsolvePayload:
        try:
            self.channel.send(spec if use_cache else (spec, False))
            status, payload = self.channel.recv()
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise TaskInstanceDied(
                f"task instance pid={self.process.pid} died "
                f"({type(exc).__name__}; exitcode={self.process.exitcode})",
                exitcode=self.process.exitcode,
            ) from exc
        self.jobs_served += 1
        if status == "error":
            raise RuntimeError(f"task instance failed: {payload}")
        return payload

    def stop(self) -> None:
        try:
            self.channel.send(_STOP)
        except (BrokenPipeError, OSError):
            pass
        # drain until the process exits: an in-flight reply larger than
        # the pipe buffer blocks the serve loop's send until it is read,
        # so a bare join would deadlock into the terminate fallback —
        # and the _STOP must never interleave with an unread reply
        deadline = time.monotonic() + 5.0
        while self.process.is_alive() and time.monotonic() < deadline:
            try:
                if self.channel.poll(0.05):
                    self.channel.recv()
            except (EOFError, OSError):
                break
        self.process.join(timeout=max(0.0, deadline - time.monotonic()))
        try:
            self.channel.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=1.0)


@dataclass
class TaskInstanceStats:
    """Spawn/reuse accounting — the machine-count story, locally."""

    spawned: int = 0
    jobs: int = 0

    @property
    def reused(self) -> int:
        return self.jobs - self.spawned


class TaskInstanceEngine(ComputeEngine):
    """Compute engine with per-worker OS task instances.

    ``max_instances`` caps the concurrently live task instances (the
    cluster size, as it were); a worker arriving when all instances are
    busy and the cap is reached waits for one to free up.
    """

    def __init__(
        self,
        perpetual: bool = True,
        max_instances: Optional[int] = None,
    ) -> None:
        if max_instances is not None and max_instances < 1:
            raise ValueError(f"max_instances must be >= 1, got {max_instances}")
        self.perpetual = perpetual
        self.max_instances = max_instances
        self._context = multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self._capacity = threading.Condition(self._lock)
        self._idle: list[_TaskInstance] = []
        self._live = 0
        self._closed = False
        self.stats = TaskInstanceStats()

    # ------------------------------------------------------------------
    def _acquire(self) -> _TaskInstance:
        with self._capacity:
            while True:
                if self._closed:
                    raise RuntimeError("engine is closed")
                if self.perpetual and self._idle:
                    return self._idle.pop()
                if self.max_instances is None or self._live < self.max_instances:
                    self._live += 1
                    self.stats.spawned += 1
                    break
                self._capacity.wait(timeout=0.5)
        # the fork happens outside the lock: it is the expensive part
        return _TaskInstance(self._context)

    def _release(self, instance: _TaskInstance) -> None:
        with self._capacity:
            if self.perpetual and not self._closed:
                self._idle.append(instance)
                self._capacity.notify_all()
                return
            self._live -= 1
            self._capacity.notify_all()
        instance.stop()

    # ------------------------------------------------------------------
    def compute(
        self, spec: SubsolveJobSpec, *, use_cache: bool = True
    ) -> SubsolvePayload:
        instance = self._acquire()
        try:
            payload = instance.run(spec, use_cache=use_cache)
        except BaseException:
            # a broken task instance is never reused
            with self._capacity:
                self._live -= 1
                self._capacity.notify_all()
            instance.stop()
            raise
        with self._lock:
            self.stats.jobs += 1
        self._release(instance)
        return payload

    def close(self) -> None:
        with self._capacity:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._capacity.notify_all()
        for instance in idle:
            instance.stop()

    @property
    def live_instances(self) -> int:
        with self._lock:
            return self._live

    @property
    def idle_instances(self) -> int:
        with self._lock:
            return len(self._idle)
