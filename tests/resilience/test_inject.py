"""The fault injector: spec grammar, deterministic matching, plan API."""

from __future__ import annotations

import pytest

from repro.resilience import FAULT_KINDS, FaultPlan, FaultRule


class TestFaultRule:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule(kind="explode")
        with pytest.raises(ValueError, match="rate"):
            FaultRule(kind="crash", rate=0.0)
        with pytest.raises(ValueError, match="factor"):
            FaultRule(kind="slow", factor=0.5)

    def test_targeted_rule_matches_only_its_grid_and_attempt(self):
        rule = FaultRule(kind="crash", l=3, m=2, attempt=1)
        assert rule.matches(3, 2, 1)
        assert not rule.matches(3, 2, 2)
        assert not rule.matches(2, 3, 1)

    def test_wildcards_match_everything(self):
        rule = FaultRule(kind="slow", attempt=None)
        assert rule.matches(0, 0, 1)
        assert rule.matches(9, 9, 7)

    def test_rate_sampling_is_deterministic_and_seeded(self):
        rule = FaultRule(kind="crash", rate=0.5, seed=7)
        picks = [rule.matches(l, m, 1) for l in range(10) for m in range(10)]
        assert picks == [
            rule.matches(l, m, 1) for l in range(10) for m in range(10)
        ]
        hit_ratio = sum(picks) / len(picks)
        assert 0.3 < hit_ratio < 0.7  # ~rate, deterministic
        other = FaultRule(kind="crash", rate=0.5, seed=8)
        assert picks != [
            other.matches(l, m, 1) for l in range(10) for m in range(10)
        ]


class TestSpecGrammar:
    def test_simple_targeted_crash(self):
        plan = FaultPlan.parse("crash@3,2")
        (rule,) = plan.rules
        assert rule.kind == "crash"
        assert (rule.l, rule.m, rule.attempt) == (3, 2, 1)

    def test_all_kinds_parse(self):
        for kind in FAULT_KINDS:
            (rule,) = FaultPlan.parse(f"{kind}@1,1").rules
            assert rule.kind == kind

    def test_parameters_and_wildcard_target(self):
        plan = FaultPlan.parse(
            "slow@*:factor=4,rate=0.2,seed=11;hang@5,1:seconds=30;"
            "raise@2,2:attempt=*;crash@0,1:attempt=2,exit_code=9"
        )
        slow, hang, raise_, crash = plan.rules
        assert slow.l is None and slow.factor == 4.0 and slow.rate == 0.2
        assert slow.seed == 11
        assert hang.seconds == 30.0
        assert raise_.attempt is None
        assert crash.attempt == 2 and crash.exit_code == 9

    def test_slow_defaults_to_every_attempt(self):
        # a slow host stays slow: a retry must not magically speed up
        (slow,) = FaultPlan.parse("slow@*").rules
        assert slow.attempt is None
        (crash,) = FaultPlan.parse("crash@*").rules
        assert crash.attempt == 1

    def test_default_seed_applies_to_every_clause(self):
        plan = FaultPlan.parse("crash@*:rate=0.5", seed=42)
        assert plan.rules[0].seed == 42

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="kind"):
            FaultPlan.parse("meltdown@1,1")
        with pytest.raises(ValueError, match="target"):
            FaultPlan.parse("crash@one,two")
        with pytest.raises(ValueError, match="parameter"):
            FaultPlan.parse("crash@1,1:when=later")
        with pytest.raises(ValueError, match="no clauses"):
            FaultPlan.parse(" ; ")


class TestFaultPlan:
    def test_first_match_wins(self):
        plan = FaultPlan.parse("hang@1,1;crash@*:attempt=*")
        assert plan.action(1, 1, 1).kind == "hang"
        assert plan.action(0, 0, 1).kind == "crash"
        # hang's default attempt=1 no longer matches; the wildcard does
        assert plan.action(1, 1, 2).kind == "crash"

    def test_no_match_returns_none(self):
        plan = FaultPlan.parse("crash@3,2")
        assert plan.action(0, 0, 1) is None

    def test_plans_are_picklable_and_equal(self):
        import pickle

        plan = FaultPlan.parse("crash@3,2;slow@*:factor=2")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.action(3, 2, 1).kind == "crash"

    def test_describe_round_trips_the_essentials(self):
        plan = FaultPlan.parse("crash@3,2;slow@*:rate=0.2")
        text = plan.describe()
        assert "crash@3,2" in text
        assert "slow@*" in text and "rate=0.2" in text
