"""Fixed-step θ-method integrators — the baseline family.

The original program uses an *adaptive Rosenbrock* solver; the natural
baselines are the classical fixed-step θ-methods on the same linear
semi-discrete system ``du/dt = J u + b(t)``::

    (I - θ h J) u_{n+1} = (I + (1-θ) h J) u_n + h [θ b(t_{n+1}) + (1-θ) b(t_n)]

* ``θ = 1``   — implicit (backward) Euler: first order, L-stable;
* ``θ = 1/2`` — Crank–Nicolson: second order, A-stable;
* ``θ = 0``   — explicit Euler (first order, conditionally stable;
  provided for completeness, with the CFL danger documented).

One factorization serves the whole integration (``h`` fixed), so the
trade-off against ROS2 is: no error control and no step adaptation, in
exchange for minimal factorization work — exactly the design choice the
paper's developers rejected ("the adaptive time step in the time
integrator ... must be computed again and again"), quantified by the
integrator ablation benchmark.
"""

from __future__ import annotations

import math
import time

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .discretize import SpatialOperator
from .rosenbrock import Ros2Integrator, StepStats

__all__ = ["ThetaIntegrator", "make_integrator", "steps_for_tolerance"]


class ThetaIntegrator:
    """Fixed-step θ-method on one grid's semi-discrete system."""

    def __init__(
        self,
        operator: SpatialOperator,
        theta: float = 0.5,
        n_steps: int = 64,
        *,
        record_history: bool = False,
    ) -> None:
        if not 0.0 <= theta <= 1.0:
            raise ValueError(f"theta must be in [0, 1], got {theta}")
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        self.operator = operator
        self.theta = theta
        self.n_steps = n_steps
        self.record_history = record_history

    def integrate(
        self, u0: np.ndarray, t0: float, t_end: float
    ) -> tuple[np.ndarray, StepStats]:
        if t_end <= t0:
            raise ValueError(f"t_end ({t_end}) must exceed t0 ({t0})")
        started = time.perf_counter()
        stats = StepStats(assembly_seconds=self.operator.assembly_seconds)
        J = self.operator.J.tocsc()
        n = J.shape[0]
        h = (t_end - t0) / self.n_steps
        identity = sp.identity(n, format="csc")

        solve = None
        factor_started = time.perf_counter()
        if self.theta > 0.0:
            lhs = (identity - (self.theta * h) * J).tocsc()
            lu = spla.splu(lhs)
            solve = lu.solve
            stats.factorizations = 1
        stats.factor_seconds = time.perf_counter() - factor_started

        explicit = (identity + ((1.0 - self.theta) * h) * J).tocsr()
        u = np.asarray(u0, dtype=float).copy()
        t = t0
        b_old = self.operator.forcing(t)
        for _ in range(self.n_steps):
            b_new = self.operator.forcing(t + h)
            rhs = explicit @ u + h * (
                self.theta * b_new + (1.0 - self.theta) * b_old
            )
            stats.rhs_evaluations += 1
            if solve is not None:
                solve_started = time.perf_counter()
                u = solve(rhs)
                stats.solves += 1
                stats.solve_seconds += time.perf_counter() - solve_started
            else:
                u = rhs
            t += h
            b_old = b_new
            stats.steps_accepted += 1
            if self.record_history:
                stats.h_history.append(h)

        stats.min_h = stats.max_h = stats.final_h = h
        stats.total_seconds = time.perf_counter() - started
        return u, stats


def steps_for_tolerance(theta: float, tol: float, t_span: float) -> int:
    """A step count aiming the θ-method at a target accuracy.

    Local-error heuristics: Crank–Nicolson's global error is O(h^2) ⇒
    ``h ~ sqrt(tol)``; the first-order members need ``h ~ tol``.  The
    constants are calibrated loosely — the point of the baseline is the
    *cost ratio* against the adaptive ROS2 at comparable accuracy.
    """
    if tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if abs(theta - 0.5) < 1.0e-12:
        h = math.sqrt(tol)
    else:
        h = tol
    return max(8, int(math.ceil(t_span / h)))


def make_integrator(
    name: str,
    operator: SpatialOperator,
    tol: float,
    t_span: float = 1.0,
    *,
    record_history: bool = False,
):
    """Integrator factory shared by ``subsolve`` and the benchmarks.

    ``name``: ``ros2`` (the paper's adaptive Rosenbrock),
    ``crank-nicolson``, ``implicit-euler`` or ``explicit-euler``.
    """
    if name == "ros2":
        return Ros2Integrator(operator, tol, record_history=record_history)
    thetas = {
        "crank-nicolson": 0.5,
        "implicit-euler": 1.0,
        "explicit-euler": 0.0,
    }
    if name not in thetas:
        raise ValueError(
            f"unknown integrator {name!r}; choose from "
            f"{['ros2', *thetas]}"
        )
    theta = thetas[name]
    n_steps = steps_for_tolerance(theta, tol, t_span)
    return ThetaIntegrator(
        operator, theta=theta, n_steps=n_steps, record_history=record_history
    )
