"""Timing protocol, metrics and overhead decomposition."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster import (
    GridCost,
    MultiUserNoise,
    SimulationParams,
    simulate_distributed,
    uniform_cluster,
)
from repro.perf import (
    OverheadReport,
    decompose_run,
    speedup,
    summarize_runs,
    time_callable,
)


class TestTiming:
    def test_runs_requested_number_of_times(self):
        calls = []
        result = time_callable(lambda: calls.append(1), repeats=5)
        assert len(calls) == 5
        assert len(result.samples) == 5

    def test_statistics_consistent(self):
        result = time_callable(lambda: time.sleep(0.01), repeats=3)
        assert result.min <= result.mean <= result.max
        assert result.mean > 0.008
        assert result.std >= 0.0

    def test_last_value_kept(self):
        result = time_callable(lambda: 42, repeats=2)
        assert result.last_value == 42

    def test_spread_ratio(self):
        result = time_callable(lambda: time.sleep(0.005), repeats=3)
        assert result.spread_ratio >= 1.0

    def test_invalid_repeats_rejected(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestMetrics:
    def test_speedup_ratio(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)

    def test_speedup_below_one_for_slower_concurrent(self):
        assert speedup(1.0, 10.0) == pytest.approx(0.1)

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            speedup(-1.0, 1.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_summarize_runs(self):
        stats = summarize_runs([1.0, 2.0, 3.0])
        assert stats.mean_seconds == pytest.approx(2.0)
        assert stats.n_runs == 3
        assert stats.spread_ratio == pytest.approx(3.0)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([])


class TestOverheadDecomposition:
    def make_run(self, noise=None):
        costs = [
            GridCost(l=i, m=0, work_ref_seconds=10.0, result_bytes=100_000)
            for i in range(4)
        ]
        params = SimulationParams(noise=noise or MultiUserNoise.quiet())
        return simulate_distributed(
            [costs], uniform_cluster(6), params, np.random.default_rng(1)
        )

    def test_categories_cover_meaningful_time(self):
        run = self.make_run()
        report = decompose_run(run)
        assert report.useful_seconds > 0
        assert report.concurrency_seconds > 0
        assert report.coordination_seconds > 0
        assert report.multiuser_seconds == 0.0

    def test_overhead_fraction_bounded(self):
        report = decompose_run(self.make_run())
        assert 0.0 < report.overhead_fraction < 1.0

    def test_multiuser_category_from_quiet_twin(self):
        noisy = self.make_run(
            noise=MultiUserNoise(jitter_sigma=0.0, background_probability=1.0)
        )
        quiet = self.make_run()
        report = decompose_run(noisy, quiet)
        assert report.multiuser_seconds > 0

    def test_as_dict_keys(self):
        report = decompose_run(self.make_run())
        assert set(report.as_dict()) == {
            "elapsed", "useful", "concurrency", "coordination",
            "multiuser", "overhead_fraction",
        }

    def test_coordination_smaller_than_concurrency_here(self):
        """With per-task forks and data shipping, the concurrency
        category dominates the event/handshake bookkeeping."""
        report = decompose_run(self.make_run())
        assert report.concurrency_seconds > report.coordination_seconds
