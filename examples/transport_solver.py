#!/usr/bin/env python
"""The numerical application on its own: sparse-grid transport solves.

Demonstrates the solver substrate as a library, independent of the
coordination story:

* solve the rotating-cone transport problem at increasing levels and
  watch mass conservation and peak preservation;
* verify convergence of the combination technique on a manufactured
  solution with a known exact answer;
* compare the cost profile across a diagonal's anisotropic grids (the
  profile that drives worker imbalance in the paper's runs).

Usage::

    python examples/transport_solver.py [max_level]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.sparsegrid import (
    Grid,
    SequentialApplication,
    manufactured_problem,
    rotating_cone_problem,
    subsolve,
)


def convergence_study(max_level: int) -> None:
    print("== combination-technique convergence (manufactured solution) ==")
    problem = manufactured_problem(diffusion=0.02, t_end=0.25)
    previous = None
    for level in range(1, max_level + 1):
        result = SequentialApplication(
            root=2, level=level, tol=1e-6, problem=problem
        ).run()
        xx, yy = result.target_grid.meshgrid()
        error = float(np.max(np.abs(result.combined - problem.exact(xx, yy, 0.25))))
        ratio = "" if previous is None else f"  (x{previous / error:.2f} better)"
        print(f"  level {level}: max error {error:.3e}{ratio}  "
              f"[{result.total_seconds:.2f}s]")
        previous = error


def cone_transport(level: int) -> None:
    print()
    print("== rotating cone: one revolution on the sparse grid ==")
    problem = rotating_cone_problem()
    result = SequentialApplication(
        root=2, level=level, tol=1e-4, problem=problem
    ).run()
    combined = result.combined
    grid = result.target_grid
    cell = grid.hx * grid.hy
    mass = float(np.sum(combined) * cell)
    initial = problem.initial(*grid.meshgrid())
    mass0 = float(np.sum(initial) * cell)
    print(f"  level {level}: peak {combined.max():.3f} "
          f"(initial 1.000), mass {mass:.5f} (initial {mass0:.5f})")
    print(f"  subsolve total {result.subsolve_seconds:.2f}s over "
          f"{result.n_grids} grids")


def anisotropy_profile(level: int) -> None:
    print()
    print(f"== per-grid cost across the l+m={level} diagonal ==")
    problem = rotating_cone_problem()
    rows = []
    for l in range(level + 1):
        grid = Grid(2, l, level - l)
        result = subsolve(problem, grid, tol=1e-3)
        rows.append((grid, result))
        print(f"  grid({l},{level - l}): {grid.nx:5d}x{grid.ny:<5d} cells, "
              f"{result.stats.steps_accepted:4d} steps, "
              f"{result.stats.factorizations:3d} factorizations, "
              f"{result.wall_seconds:7.3f}s")
    walls = [r.wall_seconds for _, r in rows]
    print(f"  imbalance max/min = {max(walls) / min(walls):.2f} "
          f"(this spread drives the ebb & flow of Figure 1)")


def main() -> int:
    max_level = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    convergence_study(min(max_level, 5))
    cone_transport(min(max_level, 5))
    anisotropy_profile(min(max_level, 6))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
