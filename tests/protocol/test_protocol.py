"""The master/worker protocol end to end, on generic computations."""

from __future__ import annotations

import threading
import time

import pytest

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    ProcessError,
    Runtime,
    run_application,
)
from repro.protocol import (
    A_RENDEZVOUS,
    CREATE_POOL,
    CREATE_WORKER,
    FINISHED,
    RENDEZVOUS,
    MasterProtocolClient,
    WorkerJob,
    WorkerResult,
    make_worker_definition,
    protocol_mw,
)


def run_master_with_protocol(runtime: Runtime, master_defn, worker_defn, timeout=30.0):
    def main_body():
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            master = ctx.spawn(master_defn)
            ctx.run_block(protocol_mw(master, worker_defn))
            ctx.terminated(master)
            ctx.halt()

        return block

    main = Coordinator(runtime, "Main", main_body, deadline=timeout)
    run_application(runtime, main, timeout=timeout)


class TestSinglePool:
    def test_results_cover_all_jobs(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x + 100)
        got = {}

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            for result in client.run_pool([WorkerJob(i, i) for i in range(6)]):
                got[result.job_id] = result.payload
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn)
        assert got == {i: i + 100 for i in range(6)}

    def test_single_worker_pool(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: -x)
        got = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            got.extend(client.run_pool([WorkerJob("only", 5)]))
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn)
        assert got[0].payload == -5

    def test_empty_pool_skips_protocol(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x)
        calls = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            calls.append(client.run_pool([]))
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn)
        assert calls == [[]]

    def test_results_carry_worker_metadata(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x)
        results = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            results.extend(client.run_pool([WorkerJob(0, "payload")]))
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn)
        (result,) = results
        assert isinstance(result, WorkerResult)
        assert result.worker_name.startswith("Worker")
        assert result.compute_seconds >= 0.0

    def test_workers_actually_run_concurrently(self, runtime):
        """Workers sleep together: total pool time << sum of sleeps."""
        barrier = threading.Barrier(4)

        def compute(x):
            barrier.wait(timeout=10)
            time.sleep(0.1)
            return x

        worker_defn = make_worker_definition("Worker", compute)
        durations = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            start = time.perf_counter()
            client.run_pool([WorkerJob(i, i) for i in range(4)])
            durations.append(time.perf_counter() - start)
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn)
        assert durations[0] < 0.4 * 4  # far below serial time


class TestMultiplePools:
    def test_two_pools_sequential(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x * 2)
        per_pool = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            for n in (3, 5):
                results = client.run_pool([WorkerJob(i, i) for i in range(n)])
                per_pool.append(sorted(r.payload for r in results))
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn)
        assert per_pool == [[0, 2, 4], [0, 2, 4, 6, 8]]

    def test_pools_run_counter(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x)
        counters = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            client.run_pool([WorkerJob(0, 0)])
            client.run_pool([WorkerJob(0, 0)])
            counters.append(client.pools_run)
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn)
        assert counters == [2]

    def test_many_small_pools(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x + 1)
        total = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=30)
            acc = 0
            for _ in range(5):
                for result in client.run_pool([WorkerJob(0, 1), WorkerJob(1, 2)]):
                    acc += result.payload
            total.append(acc)
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn, timeout=60)
        assert total == [5 * (2 + 3)]


class TestProtocolEvents:
    def test_event_sequence_for_one_pool(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x)

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            client.run_pool([WorkerJob(0, 0), WorkerJob(1, 1)])
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_master_with_protocol(runtime, master_defn, worker_defn)
        names = [occ.event.name for occ in runtime.event_log()]
        assert names.count("create_pool") == 1
        assert names.count("create_worker") == 2
        assert names.count("rendezvous") == 1
        assert names.count("a_rendezvous") == 1
        assert names.count("finished") == 1
        assert names.count("death_worker") == 2
        # ordering constraints
        assert names.index("create_pool") < names.index("create_worker")
        assert names.index("rendezvous") < names.index("a_rendezvous")
        assert names.index("a_rendezvous") < names.index("finished")

    def test_death_worker_is_pool_local(self):
        """Two pools' death_worker events are distinct local events."""
        from repro.manifold import Event

        first = Event.local("death_worker")
        second = Event.local("death_worker")
        assert first != second

    def test_extern_event_names_match_paper(self):
        assert CREATE_POOL.name == "create_pool"
        assert CREATE_WORKER.name == "create_worker"
        assert RENDEZVOUS.name == "rendezvous"
        assert A_RENDEZVOUS.name == "a_rendezvous"
        assert FINISHED.name == "finished"


class TestInterfaceValidation:
    def test_master_requires_dataport(self, runtime):
        plain = runtime.create(AtomicDefinition("NoDataport", lambda p: None))
        with pytest.raises(ProcessError):
            MasterProtocolClient(plain)

    def test_worker_rejects_non_job_payload(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x)
        from repro.manifold import Event, Stream

        worker = runtime.create(worker_defn, Event.local("death_worker"))
        feeder = runtime.create(AtomicDefinition("f", lambda p: None))
        Stream().connect(feeder.output, worker.input)
        worker.activate()
        feeder.output.write("not a job")
        worker.join(timeout=2.0)
        assert isinstance(worker.failure, ProcessError)

    def test_worker_failure_is_recorded(self, runtime):
        def explode(x):
            raise ValueError("bad job")

        worker_defn = make_worker_definition("Worker", explode)
        from repro.manifold import Event, Stream

        worker = runtime.create(worker_defn, Event.local("death_worker"))
        feeder = runtime.create(AtomicDefinition("f", lambda p: None))
        Stream().connect(feeder.output, worker.input)
        worker.activate()
        feeder.output.write(WorkerJob(0, 0))
        worker.join(timeout=2.0)
        assert isinstance(worker.failure, ValueError)

    def test_coordinator_message_trace(self, runtime):
        """The MES(...) messages of the protocol source appear in the
        coordinator's trace."""
        worker_defn = make_worker_definition("Worker", lambda x: x)
        traces = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=20)
            client.run_pool([WorkerJob(0, 0)])
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )

        def main_body():
            block = Block("Main")

            @block.state(BEGIN)
            def begin(ctx):
                master = ctx.spawn(master_defn)
                ctx.run_block(protocol_mw(master, worker_defn))
                traces.append(ctx.coordinator.trace())
                ctx.terminated(master)
                ctx.halt()

            return block

        main = Coordinator(runtime, "Main", main_body, deadline=20)
        run_application(runtime, main, timeout=20)
        (trace,) = traces
        assert "begin" in trace
        assert "create_worker: begin" in trace
        assert "rendezvous acknowledged" in trace
