"""Switched-Ethernet model: latency, bandwidth, per-NIC serialization.

"The workstations in the cluster are connected to each other by a
switched Ethernet (100 Mbps)."  A switch isolates flows between
distinct host pairs, so the only real contention point in the
master/worker protocol is the *master's own network interface*: every
job it sends and every result it receives crosses that one NIC.  The
model therefore tracks a busy-until time per NIC and serializes
transfers through it — this is precisely the serial data-passing
bottleneck the paper concedes in §4.1 ("the master process passes all
data to and from the workers") and the reason it floats the I/O-worker
alternative we ablate in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EthernetModel"]


@dataclass
class EthernetModel:
    """A 100 Mbps switched Ethernet (values overridable for ablations)."""

    bandwidth_mbps: float = 100.0
    #: one-way message latency (switch + stack), seconds
    latency_s: float = 0.5e-3
    #: fixed per-message protocol overhead in bytes (headers, PVM-style
    #: packing) — only matters for the small control messages
    per_message_overhead_bytes: int = 512

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if self.latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_s}")
        self._nic_busy_until: dict[str, float] = {}

    def transfer_seconds(self, n_bytes: int) -> float:
        """Pure wire time of one message of ``n_bytes`` payload."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        total = n_bytes + self.per_message_overhead_bytes
        return self.latency_s + total * 8.0 / (self.bandwidth_mbps * 1.0e6)

    # ------------------------------------------------------------------
    # per-NIC serialization
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all NIC state (call between simulated runs)."""
        self._nic_busy_until.clear()

    def occupy(self, nic: str, earliest: float, n_bytes: int) -> tuple[float, float]:
        """Schedule a transfer through ``nic``.

        The transfer starts when both the data is ready (``earliest``)
        and the NIC is free; returns ``(start, finish)`` and marks the
        NIC busy until ``finish``.
        """
        start = max(earliest, self._nic_busy_until.get(nic, 0.0))
        finish = start + self.transfer_seconds(n_bytes)
        self._nic_busy_until[nic] = finish
        return start, finish

    def nic_free_at(self, nic: str) -> float:
        return self._nic_busy_until.get(nic, 0.0)
