"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import EthernetModel, GridCost, MultiUserNoise, SimulationParams
from repro.cluster.simulator import simulate_distributed
from repro.cluster.host import uniform_cluster
from repro.cluster.trace import MachinePoint, machines_timeline, weighted_average_machines
from repro.manifold import Event, EventMemory, EventOccurrence
from repro.manifold.mlink import parse_mlink
from repro.sparsegrid.combination import combine, resample_1d
from repro.sparsegrid.grid import Grid, combination_grids, nested_loop_grids

# ----------------------------------------------------------------------
# combination technique
# ----------------------------------------------------------------------

values_1d = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=17,
).filter(lambda v: (len(v) - 1) & (len(v) - 2) == 0 or True)


@given(
    values=st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=3,
        max_size=9,
    ).filter(lambda v: math.log2(len(v) - 1).is_integer()),
    levels=st.integers(min_value=1, max_value=3),
)
def test_prolong_then_restrict_roundtrip(values, levels):
    arr = np.asarray(values)
    up = resample_1d(arr, levels, axis=0)
    down = resample_1d(up, -levels, axis=0)
    assert np.allclose(down, arr)


@given(
    levels=st.integers(min_value=1, max_value=3),
    n=st.sampled_from([3, 5, 9]),
)
def test_prolongation_preserves_extrema_bounds(levels, n):
    """Linear interpolation never overshoots the data range."""
    rng = np.random.default_rng(n * 7 + levels)
    arr = rng.uniform(-5, 5, n)
    up = resample_1d(arr, levels, axis=0)
    assert up.max() <= arr.max() + 1e-12
    assert up.min() >= arr.min() - 1e-12


@given(
    root=st.integers(min_value=0, max_value=2),
    level=st.integers(min_value=0, max_value=4),
    a=st.floats(min_value=-3, max_value=3, allow_nan=False),
    b=st.floats(min_value=-3, max_value=3, allow_nan=False),
    c=st.floats(min_value=-3, max_value=3, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_combination_reproduces_bilinear_fields(root, level, a, b, c):
    f = lambda x, y: a * x + b * y + c * x * y
    solutions = {
        (g.l, g.m): g.sample(lambda x, y: f(x, y))
        for g in nested_loop_grids(root, level)
    }
    target, combined = combine(solutions, root, level)
    xx, yy = target.meshgrid()
    assert np.allclose(combined, f(xx, yy), atol=1e-9)


@given(level=st.integers(min_value=0, max_value=12))
def test_combination_coefficients_sum_to_one(level):
    assert sum(c for _, c in combination_grids(2, level)) == 1


@given(level=st.integers(min_value=0, max_value=12))
def test_worker_count_relation_holds(level):
    assert len(nested_loop_grids(2, level)) == 2 * level + 1


@given(
    root=st.integers(min_value=0, max_value=3),
    l=st.integers(min_value=0, max_value=6),
    m=st.integers(min_value=0, max_value=6),
)
def test_grid_geometry_invariants(root, l, m):
    g = Grid(root, l, m)
    assert g.nx * g.hx == pytest.approx(1.0)
    assert g.ny * g.hy == pytest.approx(1.0)
    assert g.n_nodes == (g.nx + 1) * (g.ny + 1)
    assert g.n_interior < g.n_nodes


# ----------------------------------------------------------------------
# event memory
# ----------------------------------------------------------------------


@given(names=st.lists(st.sampled_from("abcd"), min_size=0, max_size=30))
def test_event_memory_conserves_occurrences(names):
    memory = EventMemory()
    for name in names:
        memory.post(Event(name))
    taken = 0
    while memory.take_match(lambda occ: 0 if occ.event.name == "a" else None):
        taken += 1
    assert taken == names.count("a")
    assert len(memory) == len(names) - taken


@given(
    names=st.lists(st.sampled_from("abc"), min_size=1, max_size=20),
    ranks=st.dictionaries(st.sampled_from("abc"), st.integers(0, 5), min_size=3),
)
def test_event_memory_take_respects_priority(names, ranks):
    memory = EventMemory()
    for name in names:
        memory.post(Event(name))
    best = memory.take_match(lambda occ: ranks[occ.event.name])
    assert best is not None
    top_rank = max(ranks[n] for n in names)
    assert ranks[best.event.name] == top_rank


# ----------------------------------------------------------------------
# MLINK placement semantics
# ----------------------------------------------------------------------


@given(
    load=st.integers(min_value=1, max_value=5),
    n_workers=st.integers(min_value=0, max_value=20),
)
def test_task_manager_never_exceeds_load(load, n_workers, ):
    from repro.manifold import AtomicDefinition, Runtime, TaskManager

    spec = parse_mlink(
        f"{{task * {{perpetual}} {{load {load}}} {{weight W 1}}}}"
        "{task main {include main.o}}"
    )
    with Runtime("prop") as runtime:
        manager = TaskManager(spec)
        for _ in range(n_workers):
            proc = runtime.create(AtomicDefinition("W", lambda p: p.read()))
            manager.place(proc)
        for task in manager.instances():
            assert task.load <= load + 1e-9
        total_housed = sum(len(t.residents) for t in manager.instances())
        assert total_housed == n_workers


# ----------------------------------------------------------------------
# network / simulator invariants
# ----------------------------------------------------------------------


@given(
    sizes=st.lists(st.integers(min_value=0, max_value=10_000_000), min_size=1, max_size=20)
)
def test_nic_transfers_never_overlap(sizes):
    net = EthernetModel()
    intervals = [net.occupy("nic", 0.0, n) for n in sizes]
    for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
        assert s2 >= f1
        assert f2 >= s2


@given(
    works=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=25,
    ),
    n_hosts=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_simulated_run_invariants(works, n_hosts, seed):
    costs = [
        GridCost(l=i, m=0, work_ref_seconds=w, result_bytes=1000)
        for i, w in enumerate(works)
    ]
    params = SimulationParams(noise=MultiUserNoise.quiet())
    run = simulate_distributed(
        [costs], uniform_cluster(n_hosts), params, np.random.default_rng(seed)
    )
    # every worker lives inside the run
    for w in run.workers:
        assert 0.0 <= w.welcome <= w.bye <= run.elapsed_seconds + 1e-9
    # the run cannot beat its critical path
    assert run.elapsed_seconds >= params.startup_seconds + max(
        w.compute_seconds for w in run.workers
    ) - 1e-9
    # never more tasks than worker machines
    assert run.n_tasks_forked <= n_hosts - 1
    # the timeline never exceeds the machines that exist
    timeline = machines_timeline(run)
    assert max(p.machines for p in timeline) <= n_hosts
    avg = weighted_average_machines(timeline, run.elapsed_seconds)
    assert 0.0 < avg <= n_hosts


@given(
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.integers(min_value=0, max_value=40),
        ),
        min_size=1,
        max_size=20,
    ),
    t_end=st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
)
def test_weighted_average_bounded_by_extremes(steps, t_end):
    ordered = sorted(steps)
    timeline = [MachinePoint(t, m) for t, m in ordered]
    if timeline[0].time > 0:
        timeline.insert(0, MachinePoint(0.0, 0))
    avg = weighted_average_machines(timeline, t_end)
    machines = [p.machines for p in timeline]
    assert min(machines) - 1e-9 <= avg <= max(machines) + 1e-9
