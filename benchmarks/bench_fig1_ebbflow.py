"""E2 — Figure 1: the ebb & flow of machines during a level-15 run.

The paper's figure shows "the number of machines needed during the
dynamic expansion and shrinking of our application run" for a run that
"runs for 634 seconds and sometimes uses 32 machines.  The weighted
average of the machines used in this case is 11."

We regenerate the staircase from one simulated distributed run at level
15 and check the qualitative profile: a ramp from one machine, a peak
in the double digits (bounded by the 32-machine cluster), an ebb as the
first diagonal's workers die, and a weighted average far below the
peak.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.trace import machines_timeline, weighted_average_machines
from repro.harness import figure1_ebb_flow


@pytest.mark.benchmark(group="fig1")
def test_fig1_ebb_and_flow(benchmark, experiment):
    fig = benchmark.pedantic(
        lambda: figure1_ebb_flow(experiment, level=15, tol=1.0e-3),
        rounds=3,
        iterations=1,
    )
    print()
    print(fig.rendered)

    machines = fig.series["machines"]
    times = fig.x
    peak = max(machines)

    # expansion and shrinking
    assert machines[0] == 0 and machines[-1] <= 1
    assert 10 <= peak <= 32, "peak must be deep into the double digits"
    # the peak is reached well before the end (long single-machine tail
    # of master prolongation/result reading)
    peak_time = times[machines.index(peak)]
    assert peak_time < 0.8 * times[-1]


@pytest.mark.benchmark(group="fig1")
def test_fig1_weighted_average_lags_peak(benchmark, experiment):
    def stats():
        rng = np.random.default_rng(634)
        run = experiment.simulate_concurrent_once(15, 1.0e-3, rng)
        timeline = machines_timeline(run)
        avg = weighted_average_machines(timeline, run.elapsed_seconds)
        return max(p.machines for p in timeline), avg

    peak, avg = benchmark.pedantic(stats, rounds=3, iterations=1)
    print(f"\npeak machines {peak}, weighted average {avg:.1f} "
          f"(paper: peak 32, weighted average 11)")
    assert avg < 0.75 * peak
    assert 5.0 < avg < 20.0


@pytest.mark.benchmark(group="fig1")
def test_fig1_first_diagonal_dies_first(benchmark, experiment):
    """The ebb: the level-14 diagonal's workers (half the work per
    grid) die before the level-15 diagonal's workers."""
    rng = np.random.default_rng(1)
    run = benchmark.pedantic(
        lambda: experiment.simulate_concurrent_once(15, 1.0e-3, np.random.default_rng(1)),
        rounds=2,
        iterations=1,
    )
    byes_14 = [w.bye for w in run.workers if w.grid[0] + w.grid[1] == 14]
    byes_15 = [w.bye for w in run.workers if w.grid[0] + w.grid[1] == 15]
    assert max(byes_14) < max(byes_15)
    assert np.mean(byes_14) < np.mean(byes_15)
