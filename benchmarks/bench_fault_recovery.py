"""The price of surviving a worker kill.

One seeded ``crash`` fault (``docs/resilience.md``) kills the OS
process computing a mid-run grid; the dispatch loop detects the death
by PID liveness and re-dispatches the lost job.  This bench measures
the recovered wall time against the fault-free wall time on the same
warm pool and asserts the recovery premium stays bounded: a single
injected crash must cost at most 2x the fault-free run.  The bitwise
identity of the recovered result is asserted alongside.

Runs in a fast smoke mode inside the tier-1 suite; set
``REPRO_FAULT_RECOVERY_FULL=1`` for a bigger level and more rounds.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.restructured import run_multiprocessing, shutdown_pool
from repro.trace import TraceAnalysis, TraceRecorder

ROOT = 2


def _run(settings: dict, faults: str | None, trace: TraceRecorder | None = None):
    return run_multiprocessing(
        root=ROOT,
        level=settings["level"],
        tol=settings["tol"],
        processes=settings["processes"],
        faults=faults,
        trace=trace,
    )


@pytest.mark.benchmark(group="fault-recovery")
def test_recovered_run_within_2x_of_fault_free(benchmark, fault_recovery_settings):
    """min-of-rounds fault-free wall vs min-of-rounds recovered wall,
    both on a warm pool so only detection + replay is priced."""
    settings = fault_recovery_settings

    shutdown_pool()
    _run(settings, faults=None)  # pays the fork + first assembly

    clean_samples, clean_result = [], None
    for _ in range(settings["rounds"]):
        started = time.perf_counter()
        clean_result = _run(settings, faults=None)
        clean_samples.append(time.perf_counter() - started)
    assert clean_result.faults == 0

    recovered = benchmark.pedantic(
        lambda: _run(settings, faults=settings["fault"]),
        rounds=settings["rounds"],
        iterations=1,
    )
    # one extra traced round: the trace prices the recovery itself
    # (seconds lost to detection + replayed compute), independent of
    # end-to-end wall-clock noise
    recorder = TraceRecorder()
    started = time.perf_counter()
    traced_result = _run(settings, faults=settings["fault"], trace=recorder)
    traced_wall = time.perf_counter() - started
    shutdown_pool()

    assert recovered.faults == 1
    assert recovered.recovered == 1
    assert recovered.fallbacks == 0
    assert np.array_equal(recovered.combined, clean_result.combined)

    analysis = TraceAnalysis(recorder.events())
    assert analysis.n_faults == traced_result.faults
    assert analysis.recovered_keys == set(traced_result.recovered_keys)
    assert analysis.recovery_overhead_seconds > 0.0

    clean = min(clean_samples)
    faulted = min([*benchmark.stats.stats.data, traced_wall])
    premium = faulted / clean
    benchmark.extra_info["fault_free_seconds"] = clean
    benchmark.extra_info["recovered_seconds"] = faulted
    benchmark.extra_info["recovery_premium"] = premium
    benchmark.extra_info["trace_recovery_overhead_seconds"] = (
        analysis.recovery_overhead_seconds
    )
    benchmark.extra_info["trace_mean_utilization"] = analysis.mean_utilization
    print(f"\nfault recovery: clean {clean:.3f}s recovered {faulted:.3f}s "
          f"premium {premium:.2f}x (traced overhead "
          f"{analysis.recovery_overhead_seconds:.3f}s)")
    if settings["full"]:
        assert premium <= 2.0, (
            f"one injected crash must cost at most 2x the fault-free wall "
            f"time, got {premium:.2f}x"
        )
    else:
        # the smoke level's fault-free run is a few tens of ms, so the
        # fixed crash-detection latency (the PID-liveness poll interval)
        # dominates any ratio and makes a 2x bound a coin flip under
        # load; bound the absolute recovery cost instead — it prices
        # detection + replay, which is what the bench is for
        assert faulted - clean <= 0.5, (
            f"one injected crash must cost at most 0.5s over the "
            f"fault-free wall time at the smoke level, got "
            f"{faulted - clean:.3f}s (clean {clean:.3f}s)"
        )
