"""The sequential driver — ``SeqSourceCode.c`` in Python.

Structure mirrors the paper's schematized main program:

* the command-line parameters: ``root`` (refinement level of the
  coarsest grid), ``level`` (additional refinement above the root) and
  ``le_tol`` (the tolerance of the integrator);
* "the huge global data structure" — :class:`GlobalData`, holding every
  grid's solution;
* initialization and some initial computations;
* the heavy nested loop over ``lm`` in ``{level-1, level}`` and the
  grids of each diagonal, calling ``subsolve(l, lm-l)``;
* the prolongation work combining the coarse approximations onto the
  finest grid used in the application.

The restructured (concurrent) versions reuse everything here except the
loop body's execution strategy — that is the entire point of the cut.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .combination import combine
from .grid import Grid, nested_loop_grids
from .problem import AdvectionDiffusionProblem, rotating_cone_problem
from .subsolve import SubsolveResult, subsolve

__all__ = ["GlobalData", "SequentialResult", "SequentialApplication"]


@dataclass
class GlobalData:
    """The program's global data structure: per-grid results."""

    root: int
    level: int
    results: dict[tuple[int, int], SubsolveResult] = field(default_factory=dict)

    def store(self, result: SubsolveResult) -> None:
        """"The results are stored in the global data structure.""" ""
        self.results[(result.grid.l, result.grid.m)] = result

    def solutions(self) -> dict[tuple[int, int], np.ndarray]:
        return {key: res.solution for key, res in self.results.items()}

    @property
    def complete(self) -> bool:
        expected = {(g.l, g.m) for g in nested_loop_grids(self.root, self.level)}
        return expected == set(self.results)


@dataclass
class SequentialResult:
    """Everything a run produces, for comparison and benchmarking."""

    root: int
    level: int
    tol: float
    data: GlobalData
    target_grid: Grid
    combined: np.ndarray
    init_seconds: float
    subsolve_seconds: float
    prolongation_seconds: float
    total_seconds: float

    @property
    def grid_seconds(self) -> dict[tuple[int, int], float]:
        """Per-grid wall time — the worker-imbalance profile."""
        return {k: r.wall_seconds for k, r in self.data.results.items()}

    @property
    def n_grids(self) -> int:
        return len(self.data.results)


class SequentialApplication:
    """The original application: everything runs in one process.

    Parameters mirror ``argv`` of the C program.  ``target_cap`` bounds
    the prolongation target (see :mod:`repro.sparsegrid.combination`).
    ``on_grid_done`` is an observer hook (used by traces and progress
    reporting); it receives each :class:`SubsolveResult` as the loop
    produces it.
    """

    def __init__(
        self,
        root: int = 2,
        level: int = 2,
        tol: float = 1.0e-3,
        problem: Optional[AdvectionDiffusionProblem] = None,
        *,
        target_cap: int | None = 8,
        on_grid_done: Optional[Callable[[SubsolveResult], None]] = None,
    ) -> None:
        if root < 0:
            raise ValueError(f"root must be >= 0, got {root}")
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        if tol <= 0:
            raise ValueError(f"le_tol must be positive, got {tol}")
        self.root = root
        self.level = level
        self.tol = tol
        self.problem = problem if problem is not None else rotating_cone_problem()
        self.target_cap = target_cap
        self.on_grid_done = on_grid_done

    # ------------------------------------------------------------------
    def grids(self) -> list[Grid]:
        """The grids the nested loop visits, in loop order."""
        return nested_loop_grids(self.root, self.level)

    @property
    def n_workers(self) -> int:
        """The paper's ``w = 2*level + 1`` (one worker per visited grid)."""
        return len(self.grids())

    def initialize(self) -> GlobalData:
        """Initialization of the data structure + initial computations."""
        return GlobalData(self.root, self.level)

    # ------------------------------------------------------------------
    def run(self) -> SequentialResult:
        """Execute the whole program: init, nested loop, prolongation."""
        t_start = time.perf_counter()
        data = self.initialize()
        init_seconds = time.perf_counter() - t_start

        # The heavy computational work: the nested loop over the grids.
        t_loop = time.perf_counter()
        for grid in self.grids():
            result = subsolve(self.problem, grid, self.tol)
            data.store(result)
            if self.on_grid_done is not None:
                self.on_grid_done(result)
        subsolve_seconds = time.perf_counter() - t_loop

        target_grid, combined = self.prolongate(data)
        total = time.perf_counter() - t_start
        return SequentialResult(
            root=self.root,
            level=self.level,
            tol=self.tol,
            data=data,
            target_grid=target_grid,
            combined=combined,
            init_seconds=init_seconds,
            subsolve_seconds=subsolve_seconds,
            prolongation_seconds=total - init_seconds - subsolve_seconds,
            total_seconds=total,
        )

    def prolongate(self, data: GlobalData) -> tuple[Grid, np.ndarray]:
        """The prolongation work after the nested loop."""
        if not data.complete:
            missing = {
                (g.l, g.m) for g in self.grids()
            } - set(data.results)
            raise ValueError(f"cannot prolongate, missing grids: {sorted(missing)}")
        return combine(
            data.solutions(), self.root, self.level, target_cap=self.target_cap
        )
