"""Fault-tolerant ``run_multiprocessing``: real crashes, hangs and
transient faults against the real fork pool.

Everything here uses the seeded, deterministic injector of
:mod:`repro.resilience.inject`, so each test observes the *same* faults
on every run.  The acceptance invariant throughout: a recovered run's
combined solution is bitwise identical to a fault-free run's, because
``subsolve`` is deterministic per spec and replays are idempotent.

The cheap tests run at level 2 (5 grids) so crash recovery is exercised
in tier-1; the level-6 kill of the issue's acceptance criterion is
marked ``slow`` and runs via ``pytest -m slow``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.resilience import (
    DeadlinePolicy,
    EscalationPolicy,
    FaultToleranceExhausted,
    RetryPolicy,
)
from repro.restructured import (
    PersistentWorkerPool,
    PoolClosedError,
    execute_job,
    run_multiprocessing,
    shutdown_pool,
)
from repro.restructured.worker import SubsolveJobSpec

LEVEL = 2
TOL = 1.0e-3


@pytest.fixture(autouse=True)
def fresh_pool_state():
    """Each test starts and ends without a shared pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def _run(**kw):
    kw.setdefault("root", 2)
    kw.setdefault("level", LEVEL)
    kw.setdefault("tol", TOL)
    kw.setdefault("processes", 2)
    return run_multiprocessing(**kw)


@pytest.fixture(scope="module")
def fault_free_combined():
    result = run_multiprocessing(root=2, level=LEVEL, tol=TOL, processes=2)
    shutdown_pool()
    return result.combined


class TestResilientFaultFree:
    def test_no_faults_means_clean_counters_and_identical_result(
        self, fault_free_combined
    ):
        result = _run(retry=RetryPolicy())
        assert result.faults == 0
        assert result.recovered == 0
        assert result.fallbacks == 0
        assert result.attempts == result.n_workers  # one attempt per grid
        assert np.array_equal(result.combined, fault_free_combined)

    def test_plain_path_reports_one_attempt_per_grid(self):
        result = _run()
        assert result.attempts == result.n_workers
        assert result.fault_events == ()


class TestCrashRecovery:
    def test_killed_worker_is_detected_and_job_replayed(
        self, fault_free_combined
    ):
        result = _run(faults="crash@1,1")
        assert result.faults == 1
        assert result.recovered == 1
        assert result.fallbacks == 0
        assert result.attempts == result.n_workers + 1
        event = result.fault_events[0]
        assert event.kind == "crash"
        assert event.detected_by == "liveness"
        assert event.action == "reassign"
        assert (1, 1) in result.recovered_keys
        assert np.array_equal(result.combined, fault_free_combined)

    def test_recovery_report_survives(self):
        result = _run(faults="crash@0,2")
        report = result.fault_report
        assert report.survived
        assert report.faults == 1
        assert report.recovered_keys == ((0, 2),)

    def test_private_pool_recovers_and_shuts_down(self, fault_free_combined):
        result = _run(warm_pool=False, faults="crash@2,0")
        assert result.faults == 1 and result.recovered == 1
        assert np.array_equal(result.combined, fault_free_combined)


class TestTransientFaults:
    def test_single_transient_exception_is_retried(self, fault_free_combined):
        result = _run(
            faults="raise@1,1",
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.01),
        )
        assert result.faults == 1
        assert result.recovered == 1
        assert result.fallbacks == 0
        event = result.fault_events[0]
        assert event.kind == "exception"
        assert event.action == "retry"
        assert "injected transient fault" in event.error
        assert np.array_equal(result.combined, fault_free_combined)

    def test_persistent_fault_degrades_to_sequential_fallback(
        self, fault_free_combined
    ):
        result = _run(
            faults="raise@1,1:attempt=*",
            retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
        )
        assert result.faults == 2  # both attempts raised
        assert result.fallbacks == 1
        assert (1, 1) in result.fallback_keys
        assert result.fault_events[-1].action == "fallback"
        # graceful degradation preserves the answer exactly
        assert np.array_equal(result.combined, fault_free_combined)

    def test_exhaustion_without_fallback_raises_with_report(self):
        with pytest.raises(FaultToleranceExhausted) as info:
            _run(
                faults="raise@1,1:attempt=*",
                escalation=EscalationPolicy(
                    retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
                    sequential_fallback=False,
                ),
            )
        report = info.value.report
        assert not report.survived
        assert report.failed_key == (1, 1)
        assert report.faults == 2


class TestHangRecovery:
    def test_hung_worker_trips_deadline_and_pool_respawns(
        self, fault_free_combined
    ):
        result = _run(
            faults="hang@1,1:seconds=120",
            deadline=DeadlinePolicy(floor_seconds=1.5, default_seconds=1.5),
        )
        assert result.faults >= 1
        kinds = {e.kind for e in result.fault_events}
        assert "deadline" in kinds
        assert result.pool_respawns >= 1
        assert (1, 1) in result.recovered_keys
        assert np.array_equal(result.combined, fault_free_combined)

    def test_deadline_scales_with_cost_model(self):
        class Flat:
            def predict_seconds(self, l, m, tol):
                return 10.0

        # factor 8 x 10s predicted: the deadline is far away, so a
        # *fault-free* run under a cost model finishes untroubled
        result = _run(retry=RetryPolicy(), cost_model=Flat())
        assert result.faults == 0


@pytest.mark.slow
class TestLevelSixAcceptance:
    def test_mid_run_kill_at_level_6_is_bitwise_transparent(self):
        baseline = run_multiprocessing(root=2, level=6, tol=TOL, processes=4)
        # kill the worker holding a heavy top-diagonal grid mid-run
        result = run_multiprocessing(
            root=2, level=6, tol=TOL, processes=4, faults="crash@3,3"
        )
        assert result.faults == 1
        assert result.recovered == 1
        assert result.fallbacks == 0
        assert np.array_equal(result.combined, baseline.combined)


class TestShutdownSubmitRace:
    def test_submit_during_graceful_shutdown_fails_fast(self):
        """Satellite (a): a submission racing ``shutdown()`` gets a
        clean ``PoolClosedError`` immediately — it must not hang behind
        the drain — and the in-flight job still completes."""
        pool = PersistentWorkerPool(1)
        spec = SubsolveJobSpec(
            problem_name="rotating-cone", root=2, l=1, m=1, tol=TOL
        )
        in_flight = pool.submit(execute_job, spec)
        shutter = threading.Thread(target=pool.shutdown)
        shutter.start()
        try:
            while not pool.closed:  # pragma: no branch
                time.sleep(0.001)
            started = time.monotonic()
            with pytest.raises(PoolClosedError, match="shut down"):
                pool.submit(execute_job, spec)
            # failed fast: did not queue behind the graceful drain
            assert time.monotonic() - started < 1.0
            payload = in_flight.get(timeout=60)
            assert (payload.l, payload.m) == (1, 1)
        finally:
            shutter.join()

    def test_pool_closed_error_is_a_runtime_error(self):
        # callers guarding against the old generic error keep working
        assert issubclass(PoolClosedError, RuntimeError)
