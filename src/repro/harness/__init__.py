"""Experiment harness: regenerate every table and figure of §7.

* :mod:`table1` — the full Table 1 sweep (st, ct, m, su; two
  tolerances, levels 0..15, five-run averages);
* :mod:`figures` — Figure 1 (ebb & flow) and Figures 2–5 (times,
  speedups and machine counts vs level, per tolerance);
* :mod:`report` — plain-text tables and terminal plots.
"""

from .report import render_linear_plot, render_log_plot, render_table
from .table1 import Table1Experiment, Table1Row, render_table1
from .figures import (
    FigureSeries,
    figure1_ebb_flow,
    figure_speedup_machines,
    figure_times,
)

__all__ = [
    "FigureSeries",
    "Table1Experiment",
    "Table1Row",
    "figure1_ebb_flow",
    "figure_speedup_machines",
    "figure_times",
    "render_linear_plot",
    "render_log_plot",
    "render_table",
    "render_table1",
]
