"""The anisotropic grid family of the combination technique.

A grid is identified by two integers ``(l, m)`` — exactly the two
arguments of the paper's ``subsolve(l, m)``.  Grid ``(l, m)`` covers the
unit square with ``2**(root+l)`` cells in x and ``2**(root+m)`` cells in
y, where ``root`` is the refinement level of the coarsest grid (the
program's first command-line argument; the paper uses 2).

The paper's nested loop::

    for (lm = level-1; lm <= level; lm++)
        for (l = 0; l <= lm; l++)
            subsolve(l, lm - l);

visits the two *diagonals* ``l + m = level - 1`` and ``l + m = level``
of the grid family — the grids of the two-dimensional combination
technique.  The total count is ``level + (level+1) = 2*level + 1``,
matching the paper's worker-count relation ``w = 2l + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Grid", "nested_loop_grids", "combination_grids"]


@dataclass(frozen=True)
class Grid:
    """One anisotropic tensor grid of the family."""

    root: int
    l: int
    m: int

    def __post_init__(self) -> None:
        if self.root < 0:
            raise ValueError(f"root must be >= 0, got {self.root}")
        if self.l < 0 or self.m < 0:
            raise ValueError(f"grid indices must be >= 0, got ({self.l}, {self.m})")

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def nx(self) -> int:
        """Number of cells in x."""
        return 1 << (self.root + self.l)

    @property
    def ny(self) -> int:
        """Number of cells in y."""
        return 1 << (self.root + self.m)

    @property
    def hx(self) -> float:
        return 1.0 / self.nx

    @property
    def hy(self) -> float:
        return 1.0 / self.ny

    @property
    def shape(self) -> tuple[int, int]:
        """Node-array shape, boundary included: ``(nx+1, ny+1)``."""
        return (self.nx + 1, self.ny + 1)

    @property
    def interior_shape(self) -> tuple[int, int]:
        return (self.nx - 1, self.ny - 1)

    @property
    def n_interior(self) -> int:
        return (self.nx - 1) * (self.ny - 1)

    @property
    def n_nodes(self) -> int:
        return (self.nx + 1) * (self.ny + 1)

    @property
    def diagonal(self) -> int:
        """The combination diagonal this grid belongs to (``l + m``)."""
        return self.l + self.m

    @property
    def anisotropy(self) -> int:
        """``|l - m|`` — how stretched the cells are (0 = square cells)."""
        return abs(self.l - self.m)

    # ------------------------------------------------------------------
    # coordinates
    # ------------------------------------------------------------------
    def x_nodes(self) -> np.ndarray:
        return np.linspace(0.0, 1.0, self.nx + 1)

    def y_nodes(self) -> np.ndarray:
        return np.linspace(0.0, 1.0, self.ny + 1)

    def meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        """Full node coordinates, indexed ``[i, j] = (x_i, y_j)``."""
        return np.meshgrid(self.x_nodes(), self.y_nodes(), indexing="ij")

    def interior_meshgrid(self) -> tuple[np.ndarray, np.ndarray]:
        return np.meshgrid(
            self.x_nodes()[1:-1], self.y_nodes()[1:-1], indexing="ij"
        )

    def sample(self, f, *args) -> np.ndarray:
        """Evaluate a field callable on all nodes (boundary included)."""
        xx, yy = self.meshgrid()
        return np.asarray(f(xx, yy, *args), dtype=float)

    def __str__(self) -> str:
        return f"grid({self.l},{self.m})@root{self.root}"


def nested_loop_grids(root: int, level: int) -> list[Grid]:
    """The grids visited by the paper's nested loop, in its exact order.

    ``lm`` runs over ``level-1`` and ``level``; the inner loop runs
    ``l = 0 .. lm`` and calls ``subsolve(l, lm - l)``.  For ``level = 0``
    the first diagonal is empty and only grid ``(0, 0)`` is visited.
    """
    if level < 0:
        raise ValueError(f"level must be >= 0, got {level}")
    grids: list[Grid] = []
    for lm in (level - 1, level):
        for l in range(0, lm + 1):
            grids.append(Grid(root, l, lm - l))
    return grids


def combination_grids(root: int, level: int) -> Iterator[tuple[Grid, int]]:
    """Grids of the combination formula with their coefficients.

    The classical two-dimensional combination technique::

        u_combined = sum_{l+m = level} u_{l,m}  -  sum_{l+m = level-1} u_{l,m}

    Yields ``(grid, +1)`` for the ``level`` diagonal and ``(grid, -1)``
    for the ``level - 1`` diagonal (empty when ``level = 0``).
    """
    for grid in nested_loop_grids(root, level):
        coefficient = 1 if grid.diagonal == level else -1
        yield grid, coefficient
