"""Simulator variants: timesharing, I/O workers, paper-scale modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    GridCost,
    MultiUserNoise,
    SimulationParams,
    simulate_distributed,
    uniform_cluster,
)


def quiet(**overrides) -> SimulationParams:
    params = dict(noise=MultiUserNoise.quiet())
    params.update(overrides)
    return SimulationParams(**params)


def costs(works, result_bytes=10_000):
    return [
        GridCost(l=i, m=0, work_ref_seconds=w, result_bytes=result_bytes)
        for i, w in enumerate(works)
    ]


def run(pool, params, n_hosts=8, seed=0):
    return simulate_distributed(
        [pool], uniform_cluster(n_hosts), params, np.random.default_rng(seed)
    )


class TestTimesharing:
    def test_coresident_workers_slow_down(self):
        """Two long jobs on one single-CPU task instance take ~2x."""
        alone = run(costs([20.0]), quiet(workers_per_task=2))
        shared = run(costs([20.0, 20.0]), quiet(workers_per_task=2))
        worker_alone = alone.workers[0]
        slowest_shared = max(w.compute_seconds for w in shared.workers)
        assert slowest_shared > 1.8 * worker_alone.compute_seconds

    def test_separate_tasks_do_not_timeshare(self):
        separate = run(costs([20.0, 20.0]), quiet(workers_per_task=1))
        durations = [w.compute_seconds for w in separate.workers]
        assert max(durations) == pytest.approx(20.0, rel=1e-6)

    def test_bundled_run_still_correct_worker_count(self):
        bundled = run(costs([1.0] * 6), quiet(workers_per_task=6))
        assert bundled.n_workers == 6
        assert bundled.n_tasks_forked == 1


class TestIOWorkers:
    def big_pool(self):
        return costs([10.0] * 10, result_bytes=8_000_000)

    def test_io_workers_relieve_master_nic(self):
        base = run(self.big_pool(), quiet())
        io = run(self.big_pool(), quiet(io_workers=True, io_worker_overhead_seconds=0.0))
        # with zero hand-off overhead the NIC relief is a pure win
        assert io.elapsed_seconds < base.elapsed_seconds

    def test_io_worker_overhead_can_cancel_the_win(self):
        io_cheap = run(
            self.big_pool(),
            quiet(io_workers=True, io_worker_overhead_seconds=0.0),
        )
        io_costly = run(
            self.big_pool(),
            quiet(io_workers=True, io_worker_overhead_seconds=2.0),
        )
        assert io_costly.elapsed_seconds > io_cheap.elapsed_seconds

    def test_more_io_workers_spread_transfers(self):
        one = run(
            self.big_pool(),
            quiet(io_workers=True, n_io_workers=1,
                  io_worker_overhead_seconds=0.0),
        )
        four = run(
            self.big_pool(),
            quiet(io_workers=True, n_io_workers=4,
                  io_worker_overhead_seconds=0.0),
        )
        assert four.elapsed_seconds <= one.elapsed_seconds + 1e-9

    def test_breakdown_has_no_send_wait_under_io_workers(self):
        io = run(self.big_pool(), quiet(io_workers=True))
        assert io.breakdown["send_wait"] == 0.0


class TestMachineTimelineVariants:
    def test_pool_per_diagonal_two_waves(self):
        """Two pools produce two distinct occupancy waves."""
        from repro.cluster.trace import machines_timeline

        params = quiet()
        double = simulate_distributed(
            [costs([15.0] * 4), costs([15.0] * 4)],
            uniform_cluster(10),
            params,
            np.random.default_rng(0),
        )
        timeline = machines_timeline(double)
        counts = [p.machines for p in timeline]
        peak = max(counts)
        # the trough between the waves drops well below the peak
        peak_index = counts.index(peak)
        trough_after = min(counts[peak_index:]) if peak_index < len(counts) else 0
        assert peak >= 4
        assert trough_after <= 1

    def test_workers_interval_bookkeeping_consistent(self):
        result = run(costs([5.0, 10.0, 2.0]), quiet())
        for worker in result.workers:
            assert worker.bye > worker.welcome
            assert worker.compute_seconds <= worker.bye - worker.welcome + 1e-9
