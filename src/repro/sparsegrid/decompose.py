"""Intra-grid domain decomposition: strip subsolves by Schur substructuring.

PRs 1-5 exhausted the paper's cut — "every grid subroutine that reads
and writes only its own grid can run concurrently" — so at high levels
the makespan is pinned to the one or two *largest* grids: a critical
path no scheduler can shorten by packing.  This module shortens the
path itself, following the divide-and-conquer recipe for nested loops
(Farzan & Nicolet, arXiv:1904.01031): partition a grid's interior into
``k`` contiguous **strips** along its long axis, separated by
one-row **interface** separators, and solve each Rosenbrock stage's
``(I - gamma*h*J) x = f`` by Schur-complement substructuring.

With ``A = I - gamma*h*J`` partitioned into strip blocks ``A_ss``,
coupling blocks ``A_sg = -gamma*h*B_s`` / ``A_gs = -gamma*h*C_s`` and
the interface block ``A_gg``::

    prepare(h):  per strip   LU(A_ss),  W_s = A_ss^-1 A_sg,
                             piece_s = A_gs W_s            (dense, small)
                 on master   S = A_gg - sum_s piece_s,  LU(S)
    solve(f):    per strip   y_s = A_ss^-1 f_s,  halo_s = A_gs y_s
                 on master   x_g = S^-1 (f_g - sum_s halo_s)
                 per strip   x_s = y_s - W_s x_g[cols_s]

The backward substitution is a dense GEMV against the ``W_s`` computed
*once per factorization* — not a second triangular solve — which is
what makes the per-stage critical path (max over strips, plus the small
interface solve) genuinely shorter than the unsplit solve: measured on
this machine, ~1.4-1.5x at ``k=2`` and ~2.2x at ``k=4`` on the largest
level-5/6 grids.

Strip factors (``LU``, ``W_s``, ``piece_s``) enter the shared
:class:`~repro.sparsegrid.linsolve.FactorCache` keyed by
``(split-tag, strip, h)`` and the interface factor by
``(split-tag, 'schur', h)``, so the warm path amortizes the Schur
construction exactly like the unsplit path amortizes ``splu``.

**Determinism.**  Every reduction runs in fixed strip order on the
master; executors only parallelize *independent* per-strip operations,
each writing its own slot.  Results for a fixed ``(grid, k)`` are
deterministic; ``k=1`` is clamped away by the callers (they take the
literal unsplit path, bitwise identical by construction), and ``k>1``
matches the unsplit oracle within :data:`SPLIT_SOLVE_RTOL` — see
``docs/intra_grid.md`` for the tolerance statement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.trace.recorder import emit as trace_emit

from .grid import Grid
from .linsolve import FactorCache

__all__ = [
    "SPLIT_SOLVE_RTOL",
    "SPLIT_SOLVE_TOL_FACTOR",
    "StripPlan",
    "SplitStats",
    "StripFactors",
    "SerialStripExecutor",
    "ThreadStripExecutor",
    "SchurSplitSolver",
    "split_tolerance",
    "projected_critical_seconds",
]

#: Per-solve rounding tolerance of the substructured solve relative to
#: the unsplit direct solve (both are backward-stable; the Schur route
#: merely reorders the elimination).  Observed per-stage differences are
#: ~1e-12 relative; this is the documented bound for one linear solve.
SPLIT_SOLVE_RTOL = 1.0e-9

#: End-to-end tolerance factor versus the unsplit *integration* oracle:
#: the adaptive controller sees error estimates that differ in the last
#: bits, so in principle an accept/reject decision near the threshold
#: can flip and the two runs take different step sequences.  Both stay
#: within the local-error tolerance of the true solution, so the
#: guaranteed bound on their difference is a small multiple of ``tol``
#: (typically the observed difference is ~1e-9, far below it).
SPLIT_SOLVE_TOL_FACTOR = 5.0


def split_tolerance(tol: float) -> float:
    """The stated max-norm tolerance of a ``k>1`` split subsolve versus
    the unsplit oracle at integration tolerance ``tol``."""
    return SPLIT_SOLVE_TOL_FACTOR * tol


# ----------------------------------------------------------------------
# the partition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StripPlan:
    """A ``k``-strip partition of a grid's interior along its long axis.

    Interior unknowns are flattened x-major (``index = i*Ny + j`` over
    the interior shape ``(Nx, Ny)``); strips are contiguous row ranges
    along ``axis`` (0 = x when ``Nx >= Ny``), separated by single
    one-row separators — exactly the width the 3-point-per-axis stencil
    needs to decouple the strip blocks.
    """

    shape: tuple[int, int]
    axis: int
    k: int
    #: half-open row ranges of the strips along ``axis``
    strip_bounds: tuple[tuple[int, int], ...]
    #: the separator rows between consecutive strips
    separator_rows: tuple[int, ...]

    @staticmethod
    def effective_k(shape: tuple[int, int], k: int) -> int:
        """Clamp ``k`` so every strip keeps at least one row: ``R`` rows
        along the long axis support at most ``(R + 1) // 2`` strips."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rows = max(shape)
        return max(1, min(k, (rows + 1) // 2))

    @classmethod
    def from_shape(cls, shape: tuple[int, int], k: int) -> "StripPlan":
        nx, ny = int(shape[0]), int(shape[1])
        if nx < 1 or ny < 1:
            raise ValueError(f"interior shape must be positive, got {shape}")
        k_eff = cls.effective_k((nx, ny), k)
        axis = 0 if nx >= ny else 1
        rows = nx if axis == 0 else ny
        strip_rows = rows - (k_eff - 1)
        base, extra = divmod(strip_rows, k_eff)
        bounds: list[tuple[int, int]] = []
        separators: list[int] = []
        offset = 0
        for s in range(k_eff):
            size = base + (1 if s < extra else 0)
            bounds.append((offset, offset + size))
            offset += size
            if s < k_eff - 1:
                separators.append(offset)
                offset += 1
        assert offset == rows
        return cls(
            shape=(nx, ny),
            axis=axis,
            k=k_eff,
            strip_bounds=tuple(bounds),
            separator_rows=tuple(separators),
        )

    @classmethod
    def for_grid(cls, grid: Grid, k: int) -> "StripPlan":
        return cls.from_shape(grid.interior_shape, k)

    # ------------------------------------------------------------------
    def _row_indices(self, lo: int, hi: int) -> np.ndarray:
        ids = np.arange(self.shape[0] * self.shape[1]).reshape(self.shape)
        block = ids[lo:hi, :] if self.axis == 0 else ids[:, lo:hi]
        return np.ascontiguousarray(block).reshape(-1)

    def strip_indices(self, s: int) -> np.ndarray:
        """Flat interior indices of strip ``s`` (sorted ascending)."""
        lo, hi = self.strip_bounds[s]
        return self._row_indices(lo, hi)

    def interface_indices(self) -> np.ndarray:
        """Flat interior indices of the separators, in separator order."""
        if not self.separator_rows:
            return np.empty(0, dtype=int)
        return np.concatenate(
            [self._row_indices(r, r + 1) for r in self.separator_rows]
        )

    @property
    def n_interface(self) -> int:
        cross = self.shape[1] if self.axis == 0 else self.shape[0]
        return (self.k - 1) * cross

    @property
    def signature(self) -> tuple:
        """The part of a factor-cache key that identifies this plan."""
        return ("split", self.k, self.axis, self.shape)


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
@dataclass
class SplitStats:
    """Counters of one split solver's lifetime (mirrored into
    :class:`~repro.sparsegrid.rosenbrock.StepStats` by the integrator)."""

    split_k: int = 1
    interface_unknowns: int = 0
    #: fresh per-strip LU + Schur-piece constructions
    strip_factorizations: int = 0
    #: per-strip triangular forward solves (one per strip per stage)
    strip_solves: int = 0
    #: dense interface (Schur) solves on the master (one per stage)
    interface_solves: int = 0
    #: halo / interface vectors exchanged (2k per stage: halos in,
    #: interface slices out)
    halo_exchanges: int = 0
    halo_bytes: int = 0
    #: strip seconds, summed over all strips (the serial cost)
    strip_factor_seconds: float = 0.0
    strip_solve_seconds: float = 0.0
    #: strip seconds, max-over-strips per call then summed (the cost a
    #: k-lane schedule pays — the critical-path composition)
    critical_strip_factor_seconds: float = 0.0
    critical_strip_solve_seconds: float = 0.0
    #: master-side dense Schur factor/solve seconds
    schur_factor_seconds: float = 0.0
    interface_solve_seconds: float = 0.0
    #: strip workers respawned after a crash (process-team executor)
    strip_respawns: int = 0


def projected_critical_seconds(stats, wall_seconds: float) -> float:
    """The k-lane critical-path wall of a split run measured serially.

    The executors measure each strip operation individually; replacing
    the serial sum of strip seconds by the per-call max-over-strips
    yields the elapsed time ``k`` dedicated strip lanes would see —
    the same hindsight-schedule methodology ``dispatch_makespan`` uses
    for whole jobs.  Master-side glue (rhs evaluations, interface
    solves, assembly) stays serial and is kept as measured.
    """
    serial_strip = stats.strip_factor_seconds + stats.strip_solve_seconds
    critical_strip = (
        stats.critical_strip_factor_seconds
        + stats.critical_strip_solve_seconds
    )
    return max(0.0, wall_seconds - serial_strip + critical_strip)


# ----------------------------------------------------------------------
# per-strip state
# ----------------------------------------------------------------------
@dataclass
class StripFactors:
    """One strip's cached factorization for a given ``h``."""

    h: float
    lu: object
    #: dense ``A_ss^-1 A_sg`` (n_s x c_s) — the backward-pass GEMV matrix
    W: np.ndarray
    #: dense ``A_gs W`` (g x c_s) — this strip's Schur contribution
    piece: np.ndarray


class _StripWorker:
    """The per-strip compute state: blocks, factors, and the running
    forward solution ``y`` of the current stage."""

    def __init__(
        self,
        strip_id: int,
        J_ss: sp.spmatrix,
        B: sp.spmatrix,
        C: sp.spmatrix,
        cols: np.ndarray,
        gamma: float,
        *,
        factor_cache: Optional[FactorCache] = None,
        cache_tag: tuple = (),
    ) -> None:
        self.strip_id = strip_id
        self.J_ss = J_ss.tocsc()
        self.B = B.tocsc()
        self.C = C.tocsr()
        self.cols = np.asarray(cols, dtype=int)
        self.gamma = gamma
        self.n = self.J_ss.shape[0]
        self._identity = sp.identity(self.n, format="csc")
        self._factor_cache = factor_cache
        self._cache_tag = cache_tag
        self.factors: Optional[StripFactors] = None
        self.y: Optional[np.ndarray] = None

    def _cache_key(self, h: float) -> tuple:
        return (self._cache_tag, self.strip_id, h)

    def prepare(self, h: float) -> tuple[np.ndarray, float, bool]:
        """Factor ``A_ss`` for ``h`` (or fetch it); returns
        ``(schur piece, seconds, was_fresh)``."""
        if self.factors is not None and self.factors.h == h:
            return self.factors.piece, 0.0, False
        if self._factor_cache is not None:
            cached = self._factor_cache.get(self._cache_key(h))
            if cached is not None:
                self.factors = cached
                return cached.piece, 0.0, False
        started = time.perf_counter()
        scale = -self.gamma * h
        matrix = (self._identity - (self.gamma * h) * self.J_ss).tocsc()
        lu = spla.splu(matrix)
        W = lu.solve(scale * np.asarray(self.B.todense()))
        W = np.atleast_2d(np.asarray(W))
        if W.ndim == 2 and W.shape[0] != self.n:  # pragma: no cover
            W = W.reshape(self.n, -1)
        piece = scale * np.asarray(self.C @ W)
        seconds = time.perf_counter() - started
        self.factors = StripFactors(h=h, lu=lu, W=W, piece=piece)
        if self._factor_cache is not None:
            self._factor_cache.put(self._cache_key(h), self.factors)
        return piece, seconds, True

    def forward(self, f_s: np.ndarray) -> tuple[np.ndarray, float]:
        """Strip forward solve; returns ``(halo contribution, seconds)``."""
        if self.factors is None:
            raise RuntimeError("prepare(h) must run before forward()")
        started = time.perf_counter()
        y = self.factors.lu.solve(f_s)
        halo = (-self.gamma * self.factors.h) * (self.C @ y)
        self.y = y
        return halo, time.perf_counter() - started

    def backward(self, xg_sub: np.ndarray) -> tuple[np.ndarray, float]:
        """Backward substitution via the dense ``W`` GEMV."""
        if self.y is None:
            raise RuntimeError("forward() must run before backward()")
        started = time.perf_counter()
        x = self.y - self.factors.W @ xg_sub
        return x, time.perf_counter() - started


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class SerialStripExecutor:
    """Run strip operations in the calling process, in strip order.

    This is what worker-side *sharded jobs* use: the strips run serially
    on the worker, the per-strip timings travel home in the stats, and
    the k-lane critical path is composed by
    :func:`projected_critical_seconds` — the same hindsight-schedule
    methodology the warm-path makespan metric uses.
    """

    kind = "serial"
    respawns = 0

    def start(self, workers: Sequence[_StripWorker]) -> None:
        self._workers = list(workers)

    def prepare(self, h: float) -> list[tuple[np.ndarray, float, bool]]:
        return [w.prepare(h) for w in self._workers]

    def forward(
        self, parts: Sequence[np.ndarray]
    ) -> list[tuple[np.ndarray, float]]:
        return [w.forward(f) for w, f in zip(self._workers, parts)]

    def backward(
        self, parts: Sequence[np.ndarray]
    ) -> list[tuple[np.ndarray, float]]:
        return [w.backward(x) for w, x in zip(self._workers, parts)]

    def close(self) -> None:
        pass


class ThreadStripExecutor(SerialStripExecutor):
    """Run independent strip operations on a thread per strip.

    SciPy's ``splu``/``solve`` release the GIL for their numerical core,
    so on a multi-core machine the strip phase genuinely overlaps.
    Results are gathered in strip order — each thread writes only its
    own slot — so the reduction order (and the result) is identical to
    the serial executor, bitwise.
    """

    kind = "thread"

    def start(self, workers: Sequence[_StripWorker]) -> None:
        from concurrent.futures import ThreadPoolExecutor

        super().start(workers)
        self._pool = ThreadPoolExecutor(
            max_workers=len(self._workers),
            thread_name_prefix="strip",
        )

    def prepare(self, h: float) -> list[tuple[np.ndarray, float, bool]]:
        return list(self._pool.map(lambda w: w.prepare(h), self._workers))

    def forward(self, parts):
        return list(
            self._pool.map(
                lambda pair: pair[0].forward(pair[1]),
                zip(self._workers, parts),
            )
        )

    def backward(self, parts):
        return list(
            self._pool.map(
                lambda pair: pair[0].backward(pair[1]),
                zip(self._workers, parts),
            )
        )

    def close(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None


# ----------------------------------------------------------------------
# the solver
# ----------------------------------------------------------------------
class SchurSplitSolver:
    """Drop-in replacement for
    :class:`~repro.sparsegrid.linsolve.RosenbrockSystemSolver` that
    solves ``(I - gamma*h*J) x = f`` by strip substructuring.

    Exposes the same counters (``factorizations``, ``solves``,
    ``prepare_calls``, ``reuse_hits``, ``factor_cache_hits``,
    ``factor_seconds``, ``solve_seconds``) with *system-level*
    semantics — one ``solve()`` call counts once however many strips it
    touches — so the cost-model feed stays in unsplit units and
    ``work_units`` never double-counts (see the ``subsolve`` docstring).
    The per-strip breakdown lives in :attr:`split_stats`.
    """

    def __init__(
        self,
        J: sp.spmatrix,
        gamma: float,
        plan: StripPlan,
        *,
        factor_cache: Optional[FactorCache] = None,
        executor=None,
        trace_key: Optional[tuple] = None,
    ) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        if plan.k < 2:
            raise ValueError(
                f"SchurSplitSolver needs k >= 2 strips, got {plan.k}; "
                "use RosenbrockSystemSolver for the unsplit path"
            )
        self.gamma = gamma
        self.plan = plan
        self.n = J.shape[0]
        if self.n != plan.shape[0] * plan.shape[1]:
            raise ValueError(
                f"J is {J.shape[0]}x{J.shape[1]} but the plan covers "
                f"{plan.shape[0]}x{plan.shape[1]} interior unknowns"
            )
        self._trace_key = trace_key
        self._factor_cache = factor_cache
        J_csr = J.tocsr()
        self._strip_idx = [plan.strip_indices(s) for s in range(plan.k)]
        self._iface_idx = plan.interface_indices()
        self._check_decoupled(J_csr)
        g = self._iface_idx.size
        iface = self._iface_idx
        self._J_gg = np.asarray(
            J_csr[iface][:, iface].todense(), dtype=float
        )
        self._identity_g = np.eye(g)
        workers: list[_StripWorker] = []
        for s, idx in enumerate(self._strip_idx):
            rows = J_csr[idx]
            J_ss = rows[:, idx]
            J_sg = rows[:, iface].tocsc()
            cols = np.flatnonzero(np.diff(J_sg.indptr) > 0)
            B = J_sg[:, cols]
            C = J_csr[iface][:, idx]
            workers.append(
                _StripWorker(
                    s, J_ss, B, C, cols, gamma,
                    factor_cache=factor_cache,
                    cache_tag=plan.signature,
                )
            )
        self._cols = [w.cols for w in workers]
        self.executor = executor if executor is not None else SerialStripExecutor()
        if trace_key is not None and hasattr(self.executor, "trace_key"):
            self.executor.trace_key = trace_key
        self.executor.start(workers)
        self._schur_lu = None
        self._h: Optional[float] = None
        # counters (system-level, RosenbrockSystemSolver-compatible)
        self.factorizations = 0
        self.solves = 0
        self.factor_seconds = 0.0
        self.solve_seconds = 0.0
        self.prepare_calls = 0
        self.reuse_hits = 0
        self.factor_cache_hits = 0
        self.split_stats = SplitStats(
            split_k=plan.k, interface_unknowns=g
        )

    def _check_decoupled(self, J_csr: sp.csr_matrix) -> None:
        """Assert single-row separators really decouple the strips —
        true for the 3-point-per-axis stencils this package builds, and
        cheap (O(nnz)) to verify rather than assume."""
        owner = np.full(self.n, -1, dtype=int)
        for s, idx in enumerate(self._strip_idx):
            owner[idx] = s
        coo = J_csr.tocoo()
        row_owner = owner[coo.row]
        col_owner = owner[coo.col]
        cross = (
            (row_owner >= 0) & (col_owner >= 0) & (row_owner != col_owner)
        )
        if bool(cross.any()):
            raise ValueError(
                "strip partition does not decouple the operator: the "
                "stencil couples distinct strips across a separator"
            )

    @property
    def reuse_ratio(self) -> float:
        if self.prepare_calls == 0:
            return 0.0
        return self.reuse_hits / self.prepare_calls

    @property
    def current_h(self) -> Optional[float]:
        return self._h

    def _schur_cache_key(self, h: float) -> tuple:
        return (self.plan.signature, "schur", h)

    # ------------------------------------------------------------------
    def prepare(self, h: float) -> None:
        if h <= 0:
            raise ValueError(f"step size must be positive, got {h}")
        self.prepare_calls += 1
        if self._h is not None and h == self._h:
            self.reuse_hits += 1
            return
        stats = self.split_stats
        started = time.perf_counter()
        results = self.executor.prepare(h)
        strip_seconds = [sec for _piece, sec, _fresh in results]
        fresh = [bool(f) for _piece, _sec, f in results]
        stats.strip_factor_seconds += sum(strip_seconds)
        stats.critical_strip_factor_seconds += max(strip_seconds)
        stats.strip_factorizations += sum(fresh)
        for s, (piece, sec, was_fresh) in enumerate(results):
            if was_fresh:
                trace_emit(
                    "strip_factor",
                    key=self._trace_key,
                    worker=f"strip-{s}",
                    strip=s,
                    h=h,
                    seconds=sec,
                )
        schur_lu = None
        if self._factor_cache is not None and not any(fresh):
            schur_lu = self._factor_cache.get(self._schur_cache_key(h))
        if schur_lu is None:
            t_schur = time.perf_counter()
            S = self._identity_g - (self.gamma * h) * self._J_gg
            for s, (piece, _sec, _f) in enumerate(results):
                S[:, self._cols[s]] -= piece
            schur_lu = sla.lu_factor(S)
            stats.schur_factor_seconds += time.perf_counter() - t_schur
            if self._factor_cache is not None:
                self._factor_cache.put(self._schur_cache_key(h), schur_lu)
            any_fresh = True
        else:
            any_fresh = any(fresh)
        self._schur_lu = schur_lu
        self._h = h
        if any_fresh or any(fresh):
            self.factorizations += 1
        else:
            # every strip factor and the interface factor came from the
            # cross-run cache: system-level, this prepare reused
            self.reuse_hits += 1
            self.factor_cache_hits += 1
        self.factor_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    def solve(self, rhs: np.ndarray) -> np.ndarray:
        if self._schur_lu is None or self._h is None:
            raise RuntimeError("prepare(h) must be called before solve()")
        stats = self.split_stats
        started = time.perf_counter()
        rhs = np.asarray(rhs, dtype=float)
        parts = [rhs[idx] for idx in self._strip_idx]
        f_g = rhs[self._iface_idx]

        fwd = self.executor.forward(parts)
        fwd_seconds = [sec for _halo, sec in fwd]
        g_rhs = f_g.copy()
        for halo, _sec in fwd:
            g_rhs -= halo

        t_iface = time.perf_counter()
        x_g = sla.lu_solve(self._schur_lu, g_rhs)
        iface_dt = time.perf_counter() - t_iface
        stats.interface_solve_seconds += iface_dt
        stats.interface_solves += 1
        trace_emit(
            "schur_solve",
            key=self._trace_key,
            seconds=iface_dt,
            interface_unknowns=int(self._iface_idx.size),
        )

        bwd = self.executor.backward([x_g[cols] for cols in self._cols])
        bwd_seconds = [sec for _x, sec in bwd]

        x = np.empty(self.n, dtype=float)
        x[self._iface_idx] = x_g
        for idx, (x_s, _sec) in zip(self._strip_idx, bwd):
            x[idx] = x_s

        k = self.plan.k
        halo_bytes = int(
            k * g_rhs.nbytes + sum(x_g[c].nbytes for c in self._cols)
        )
        stats.strip_solves += k
        stats.halo_exchanges += 2 * k
        stats.halo_bytes += halo_bytes
        stats.strip_solve_seconds += sum(fwd_seconds) + sum(bwd_seconds)
        stats.critical_strip_solve_seconds += max(fwd_seconds) + max(
            bwd_seconds
        )
        trace_emit(
            "halo_exchange",
            key=self._trace_key,
            exchanges=2 * k,
            payload_bytes=halo_bytes,
        )
        stats.strip_respawns = getattr(self.executor, "respawns", 0)
        self.solves += 1
        self.solve_seconds += time.perf_counter() - started
        return x

    def close(self) -> None:
        self.executor.close()
