"""Intra-grid decomposition: the strip partition and the Schur solver.

The equivalence ladder the issue demands:

* ``split_k=1`` (or any ``k`` the grid clamps back to 1) is **bitwise**
  identical to the unsplit path;
* a single substructured linear solve matches the monolithic LU to
  ``SPLIT_SOLVE_RTOL``;
* full ``k in {2, 4}`` integrations up to level 6 stay within
  ``split_tolerance(tol)`` of the unsplit oracle;
* the thread executor is bitwise identical to the serial one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid.decompose import (
    SPLIT_SOLVE_RTOL,
    SPLIT_SOLVE_TOL_FACTOR,
    SchurSplitSolver,
    SerialStripExecutor,
    StripPlan,
    ThreadStripExecutor,
    projected_critical_seconds,
    split_tolerance,
)
from repro.sparsegrid.discretize import SpatialOperator
from repro.sparsegrid.grid import Grid, nested_loop_grids
from repro.sparsegrid.linsolve import FactorCache, RosenbrockSystemSolver
from repro.sparsegrid.registry import make_problem
from repro.sparsegrid.rosenbrock import GAMMA
from repro.sparsegrid.subsolve import subsolve

ROOT = 2
TOL = 1.0e-3
T_END = 0.1


@pytest.fixture(scope="module")
def problem():
    return make_problem("rotating-cone")


# ----------------------------------------------------------------------
# the partition
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shape", [(7, 3), (3, 7), (15, 15), (31, 7), (5, 1)])
@pytest.mark.parametrize("k", [2, 3, 4])
def test_strips_and_separators_partition_interior(shape, k):
    plan = StripPlan.from_shape(shape, k)
    pieces = [plan.strip_indices(s) for s in range(plan.k)]
    pieces.append(plan.interface_indices())
    all_indices = np.concatenate(pieces)
    assert len(all_indices) == shape[0] * shape[1]
    assert len(np.unique(all_indices)) == len(all_indices)
    assert plan.n_interface == len(plan.interface_indices())
    assert len(plan.separator_rows) == plan.k - 1
    # strips are sorted contiguous row blocks along the long axis
    for s in range(plan.k):
        strip = plan.strip_indices(s)
        assert np.all(np.diff(strip) > 0)
        lo, hi = plan.strip_bounds[s]
        assert hi > lo


def test_strips_follow_the_long_axis():
    assert StripPlan.from_shape((15, 3), 2).axis == 0
    assert StripPlan.from_shape((3, 15), 2).axis == 1


@pytest.mark.parametrize(
    "shape,k,expected",
    [
        ((3, 3), 4, 2),   # 3 rows sustain at most (3+1)//2 = 2 strips
        ((1, 1), 2, 1),   # a single row cannot split at all
        ((7, 3), 4, 4),
        ((15, 3), 64, 8),
    ],
)
def test_effective_k_clamps_to_grid_rows(shape, k, expected):
    assert StripPlan.effective_k(shape, k) == expected
    assert StripPlan.from_shape(shape, k).k == expected


def test_effective_k_rejects_nonpositive():
    with pytest.raises(ValueError):
        StripPlan.effective_k((7, 7), 0)


def test_plan_signature_distinguishes_shape_and_k():
    a = StripPlan.from_shape((15, 7), 2)
    b = StripPlan.from_shape((15, 7), 4)
    c = StripPlan.from_shape((7, 15), 2)
    assert len({a.signature, b.signature, c.signature}) == 3


# ----------------------------------------------------------------------
# one substructured linear solve vs the monolithic LU
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [2, 4])
def test_single_solve_matches_monolithic_lu(problem, k):
    grid = Grid(ROOT, 3, 2)
    op = SpatialOperator(grid, problem)
    plan = StripPlan.for_grid(grid, k)
    assert plan.k == k
    split = SchurSplitSolver(op.J, GAMMA, plan, executor=SerialStripExecutor())
    mono = RosenbrockSystemSolver(op.J, GAMMA)
    rng = np.random.default_rng(42)
    try:
        for h in (1.0e-3, 5.0e-4):
            split.prepare(h)
            mono.prepare(h)
            f = rng.standard_normal(grid.n_interior)
            x_split = split.solve(f)
            x_mono = mono.solve(f)
            scale = max(1.0, float(np.max(np.abs(x_mono))))
            assert np.max(np.abs(x_split - x_mono)) <= SPLIT_SOLVE_RTOL * scale
    finally:
        split.close()


def test_solver_counters_are_system_level(problem):
    """One split solve() counts once, like the unsplit solver — strips
    and interface partition the interior, nothing double-counts."""
    grid = Grid(ROOT, 3, 2)
    op = SpatialOperator(grid, problem)
    plan = StripPlan.for_grid(grid, 2)
    solver = SchurSplitSolver(op.J, GAMMA, plan, executor=SerialStripExecutor())
    try:
        solver.prepare(1.0e-3)
        solver.solve(np.ones(grid.n_interior))
        solver.solve(np.ones(grid.n_interior))
        assert solver.solves == 2
        assert solver.factorizations == 1
        stats = solver.split_stats
        assert stats.split_k == 2
        assert stats.strip_solves == 2 * plan.k
        assert stats.interface_solves == 2
        assert stats.halo_exchanges == 2 * 2 * plan.k
        assert stats.interface_unknowns == plan.n_interface
    finally:
        solver.close()


def test_solver_requires_k_at_least_two(problem):
    grid = Grid(ROOT, 3, 2)
    op = SpatialOperator(grid, problem)
    plan = StripPlan.from_shape(grid.interior_shape, 1)
    with pytest.raises(ValueError):
        SchurSplitSolver(op.J, GAMMA, plan, executor=SerialStripExecutor())


# ----------------------------------------------------------------------
# the equivalence ladder on full integrations
# ----------------------------------------------------------------------
def test_split_k1_is_bitwise_identical(problem):
    grid = Grid(ROOT, 3, 3)
    plain = subsolve(problem, grid, TOL, T_END)
    k1 = subsolve(problem, grid, TOL, T_END, split_k=1)
    assert np.array_equal(plain.solution, k1.solution)
    assert k1.split_k == 1


def test_unsplittable_grid_clamps_to_bitwise(problem):
    """A 1-row interior cannot split: split_k=4 takes the literal
    unsplit path."""
    grid = Grid(1, 0, 0)  # interior (1, 1)
    plain = subsolve(problem, grid, TOL, T_END)
    clamped = subsolve(problem, grid, TOL, T_END, split_k=4)
    assert np.array_equal(plain.solution, clamped.solution)
    assert clamped.split_k == 1


@pytest.mark.parametrize("level", [4, 5, 6])
@pytest.mark.parametrize("k", [2, 4])
def test_split_matches_unsplit_oracle_within_tolerance(problem, level, k):
    """k in {2, 4} vs the unsplit oracle, largest grid per level up to
    level 6 — the issue's stated tolerance is ``split_tolerance(tol)``."""
    grid = max(nested_loop_grids(ROOT, level), key=lambda g: g.n_interior)
    oracle = subsolve(problem, grid, TOL, T_END)
    split = subsolve(problem, grid, TOL, T_END, split_k=k)
    assert split.split_k == StripPlan.for_grid(grid, k).k
    diff = float(np.max(np.abs(split.solution - oracle.solution)))
    assert diff <= split_tolerance(TOL), (
        f"level {level} grid ({grid.l},{grid.m}) k={k}: "
        f"max |diff| {diff:.3e} exceeds {split_tolerance(TOL):.3e}"
    )


def test_thread_executor_is_bitwise_equal_to_serial(problem):
    grid = Grid(ROOT, 4, 2)
    serial = subsolve(problem, grid, TOL, T_END, split_k=4,
                      strip_executor="serial")
    threaded = subsolve(problem, grid, TOL, T_END, split_k=4,
                        strip_executor="thread")
    assert np.array_equal(serial.solution, threaded.solution)


def test_split_results_are_deterministic(problem):
    grid = Grid(ROOT, 3, 2)
    a = subsolve(problem, grid, TOL, T_END, split_k=2)
    b = subsolve(problem, grid, TOL, T_END, split_k=2)
    assert np.array_equal(a.solution, b.solution)


def test_unknown_strip_executor_rejected(problem):
    with pytest.raises(ValueError):
        subsolve(problem, Grid(ROOT, 3, 2), TOL, T_END, split_k=2,
                 strip_executor="carrier-pigeon")


def test_split_requires_ros2(problem):
    with pytest.raises(ValueError):
        subsolve(problem, Grid(ROOT, 3, 2), TOL, T_END, split_k=2,
                 integrator_name="theta")


# ----------------------------------------------------------------------
# work accounting and the factor cache
# ----------------------------------------------------------------------
def test_work_units_invariant_under_split(problem):
    """Same grid, same tolerance: the split result reports the same
    system-level work as the unsplit one (no interface double-count)."""
    grid = Grid(ROOT, 3, 2)
    unsplit = subsolve(problem, grid, TOL, T_END)
    split = subsolve(problem, grid, TOL, T_END, split_k=2)
    assert split.stats.solves == unsplit.stats.solves
    assert split.work_units == unsplit.work_units


def test_split_factors_reuse_through_shared_cache(problem):
    """A second integration with the same shared FactorCache reuses the
    strip and Schur factors instead of refactoring."""
    grid = Grid(ROOT, 3, 2)
    cache = FactorCache(maxsize=64)
    cold = subsolve(problem, grid, TOL, T_END, split_k=2,
                    factor_cache=cache)
    warm = subsolve(problem, grid, TOL, T_END, split_k=2,
                    factor_cache=cache)
    assert np.array_equal(cold.solution, warm.solution)
    assert cold.stats.strip_factorizations > 0
    assert warm.stats.strip_factorizations == 0
    assert warm.stats.factor_cache_hits > 0


def test_split_and_unsplit_cache_keys_do_not_collide(problem):
    """Split composite keys and unsplit bare-h keys share one cache
    without shadowing each other."""
    grid = Grid(ROOT, 3, 2)
    cache = FactorCache(maxsize=64)
    split = subsolve(problem, grid, TOL, T_END, split_k=2,
                     factor_cache=cache)
    unsplit = subsolve(problem, grid, TOL, T_END, factor_cache=cache)
    oracle = subsolve(problem, grid, TOL, T_END)
    assert np.array_equal(unsplit.solution, oracle.solution)
    assert float(np.max(np.abs(split.solution - oracle.solution))) \
        <= split_tolerance(TOL)


# ----------------------------------------------------------------------
# the critical-path projection
# ----------------------------------------------------------------------
def test_projected_critical_seconds_bounds(problem):
    """The k-lane projection never exceeds the measured serial wall and
    never goes below the non-strip residue."""
    grid = Grid(ROOT, 4, 2)
    res = subsolve(problem, grid, TOL, T_END, split_k=4)
    stats = res.stats
    crit = projected_critical_seconds(stats, res.wall_seconds)
    assert 0.0 <= crit <= res.wall_seconds
    assert stats.critical_strip_solve_seconds <= stats.strip_solve_seconds
    assert stats.critical_strip_factor_seconds <= stats.strip_factor_seconds


def test_split_tolerance_statement():
    assert split_tolerance(1.0e-3) == SPLIT_SOLVE_TOL_FACTOR * 1.0e-3
    assert SPLIT_SOLVE_TOL_FACTOR >= 1.0
    assert SPLIT_SOLVE_RTOL <= 1.0e-6
