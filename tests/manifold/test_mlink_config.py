"""MLINK and CONFIG stages: parsing, bundling semantics, host mapping."""

from __future__ import annotations

import pytest

from repro.manifold import (
    AtomicDefinition,
    ConfigError,
    HostMapper,
    LinkError,
    Runtime,
    TaskManager,
    parse_braces,
    parse_config,
    parse_mlink,
)

PAPER_MLINK = """
{task *
  {perpetual}
  {load 1}
  {weight Master 1}
  {weight Worker 1}
}
{task mainprog
  {include mainprog.o}
  {include protocolMW.o}
}
"""

PAPER_CONFIG = """
{host host1 diplice.sen.cwi.nl}
{host host2 alboka.sen.cwi.nl}
{host host3 altfluit.sen.cwi.nl}
{host host4 arghul.sen.cwi.nl}
{host host5 basfluit.sen.cwi.nl}
{locus mainprog $host1 $host2 $host3 $host4 $host5}
"""


class TestBraceParser:
    def test_parses_nested_expressions(self):
        exprs = parse_braces("{a {b c} d}")
        assert len(exprs) == 1
        assert exprs[0].head == "a"
        assert exprs[0].atoms() == ["a", "d"]
        assert exprs[0].children()[0].atoms() == ["b", "c"]

    def test_comments_stripped(self):
        exprs = parse_braces("# comment\n{a b} # trailing\n")
        assert exprs[0].atoms() == ["a", "b"]

    def test_unbalanced_open_rejected(self):
        with pytest.raises(LinkError):
            parse_braces("{a {b}")

    def test_unbalanced_close_rejected(self):
        with pytest.raises(LinkError):
            parse_braces("{a} }")

    def test_stray_toplevel_atoms_rejected(self):
        with pytest.raises(LinkError):
            parse_braces("loose {a}")


class TestMlinkParser:
    def test_paper_example(self):
        spec = parse_mlink(PAPER_MLINK)
        pattern = spec.pattern_for("mainprog")
        assert pattern.perpetual
        assert pattern.load_limit == 1.0
        assert pattern.weights == {"Master": 1.0, "Worker": 1.0}
        assert pattern.includes == ["mainprog.o", "protocolMW.o"]

    def test_star_pattern_applies_to_any_task(self):
        spec = parse_mlink("{task * {load 3}}")
        assert spec.pattern_for("whatever").load_limit == 3.0

    def test_named_pattern_refines_star(self):
        spec = parse_mlink("{task * {load 1}} {task big {load 6}}")
        assert spec.pattern_for("big").load_limit == 6.0
        assert spec.pattern_for("other").load_limit == 1.0

    def test_unknown_directive_rejected(self):
        with pytest.raises(LinkError):
            parse_mlink("{task * {frobnicate 1}}")

    def test_missing_task_name_rejected(self):
        with pytest.raises(LinkError):
            parse_mlink("{task}")

    def test_non_numeric_load_rejected(self):
        with pytest.raises(LinkError):
            parse_mlink("{task * {load heavy}}")

    def test_negative_weight_rejected(self):
        with pytest.raises(LinkError):
            parse_mlink("{task * {weight W -1}}")

    def test_empty_spec_rejected(self):
        with pytest.raises(LinkError):
            parse_mlink("")

    def test_top_level_non_task_rejected(self):
        with pytest.raises(LinkError):
            parse_mlink("{host a b}")

    def test_unweighted_definitions_are_weightless(self):
        spec = parse_mlink(PAPER_MLINK)
        assert spec.pattern_for("mainprog").weight_of("Main") == 0.0

    def test_task_names_listed(self):
        spec = parse_mlink(PAPER_MLINK)
        assert spec.task_names == ["mainprog"]


class TestTaskManager:
    def make_manager(self, mlink_text: str = PAPER_MLINK, clock=None) -> TaskManager:
        spec = parse_mlink(mlink_text)
        kwargs = {"clock": clock} if clock else {}
        return TaskManager(spec, **kwargs)

    def spawn_idle(self, runtime: Runtime, name: str):
        return runtime.create(AtomicDefinition(name, lambda p: p.read()))

    def test_unit_weights_one_worker_per_task(self, runtime):
        manager = self.make_manager()
        workers = [self.spawn_idle(runtime, "Worker") for _ in range(3)]
        instances = {manager.place(w).id for w in workers}
        assert len(instances) == 3

    def test_load_six_bundles_workers_together(self, runtime):
        text = PAPER_MLINK.replace("{load 1}", "{load 6}")
        manager = self.make_manager(text)
        workers = [self.spawn_idle(runtime, "Worker") for _ in range(6)]
        instances = {manager.place(w).id for w in workers}
        assert len(instances) == 1

    def test_weightless_process_rides_along(self, runtime):
        manager = self.make_manager()
        worker = self.spawn_idle(runtime, "Worker")
        coordinator = self.spawn_idle(runtime, "Main")
        t1 = manager.place(worker)
        t2 = manager.place(coordinator)
        assert t1.id == t2.id  # Main is weightless, fits anywhere

    def test_perpetual_task_survives_emptying(self, runtime):
        manager = self.make_manager()
        worker = self.spawn_idle(runtime, "Worker")
        task = manager.place(worker)
        manager.release(worker)
        assert task.alive
        assert not task.residents

    def test_perpetual_task_welcomes_new_worker(self, runtime):
        manager = self.make_manager()
        first = self.spawn_idle(runtime, "Worker")
        task = manager.place(first)
        manager.release(first)
        second = self.spawn_idle(runtime, "Worker")
        assert manager.place(second).id == task.id
        assert task.total_housed == 2

    def test_non_perpetual_task_dies_when_empty(self, runtime):
        text = PAPER_MLINK.replace("{perpetual}", "")
        manager = self.make_manager(text)
        worker = self.spawn_idle(runtime, "Worker")
        task = manager.place(worker)
        manager.release(worker)
        assert not task.alive

    def test_timeline_records_alive_counts(self, runtime):
        clock_value = [0.0]
        manager = self.make_manager(clock=lambda: clock_value[0])
        clock_value[0] = 1.0
        w1 = self.spawn_idle(runtime, "Worker")
        manager.place(w1)
        clock_value[0] = 2.0
        w2 = self.spawn_idle(runtime, "Worker")
        manager.place(w2)
        counts = [p.alive for p in manager.timeline()]
        assert counts == [0, 1, 2]
        assert manager.peak_instances() == 2

    def test_kill_idle_perpetual(self, runtime):
        manager = self.make_manager()
        worker = self.spawn_idle(runtime, "Worker")
        task = manager.place(worker)
        manager.release(worker)
        assert manager.kill_idle_perpetual() == 1
        assert not task.alive

    def test_release_unknown_process_is_noop(self, runtime):
        manager = self.make_manager()
        stranger = self.spawn_idle(runtime, "Worker")
        assert manager.release(stranger) is None

    def test_attach_places_on_activation(self, runtime):
        manager = self.make_manager().attach(runtime)
        worker = runtime.spawn(AtomicDefinition("Worker", lambda p: None))
        worker.join(timeout=2.0)
        assert worker.task_instance is not None
        # death released it again
        assert not manager.alive_instances() or all(
            worker not in t.residents for t in manager.alive_instances()
        )

    def test_default_task_required_when_ambiguous(self):
        spec = parse_mlink("{task a {load 1}} {task b {load 1}}")
        with pytest.raises(LinkError):
            TaskManager(spec)


class TestConfig:
    def test_paper_example(self):
        spec = parse_config(PAPER_CONFIG)
        assert spec.hosts["host1"] == "diplice.sen.cwi.nl"
        assert spec.locus_hosts("mainprog") == [
            "diplice.sen.cwi.nl",
            "alboka.sen.cwi.nl",
            "altfluit.sen.cwi.nl",
            "arghul.sen.cwi.nl",
            "basfluit.sen.cwi.nl",
        ]

    def test_unbound_variable_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("{locus t $nope}")

    def test_duplicate_host_variable_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("{host h a} {host h b}")

    def test_literal_hostnames_allowed(self):
        spec = parse_config("{locus t some.host.example}")
        assert spec.locus_hosts("t") == ["some.host.example"]

    def test_unknown_clause_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("{task t}")

    def test_missing_locus_rejected(self):
        spec = parse_config(PAPER_CONFIG)
        with pytest.raises(ConfigError):
            spec.locus_hosts("other")


class TestHostMapper:
    def make_mapper(self, capacity: int = 1) -> HostMapper:
        return HostMapper(
            parse_config(PAPER_CONFIG), startup_host="bumpa.sen.cwi.nl",
            capacity=capacity,
        )

    def make_task(self):
        from repro.manifold.mlink import TaskPattern
        from repro.manifold.task import TaskInstance

        return TaskInstance("mainprog", TaskPattern("mainprog"), created_at=0.0)

    def test_first_task_gets_startup_host(self):
        mapper = self.make_mapper()
        assert mapper.assign(self.make_task()) == "bumpa.sen.cwi.nl"

    def test_following_tasks_get_locus_hosts(self):
        mapper = self.make_mapper()
        mapper.assign(self.make_task())
        assert mapper.assign(self.make_task()) == "diplice.sen.cwi.nl"
        assert mapper.assign(self.make_task()) == "alboka.sen.cwi.nl"

    def test_capacity_exhaustion_raises(self):
        mapper = self.make_mapper()
        for _ in range(6):  # startup + 5 locus hosts
            mapper.assign(self.make_task())
        with pytest.raises(ConfigError):
            mapper.assign(self.make_task())

    def test_freed_host_is_reusable(self):
        mapper = self.make_mapper()
        mapper.assign(self.make_task())
        task = self.make_task()
        host = mapper.assign(task)
        mapper.free(task)
        assert mapper.assign(self.make_task()) == host

    def test_capacity_two_allows_two_tasks(self):
        mapper = self.make_mapper(capacity=2)
        mapper.assign(self.make_task())
        a = mapper.assign(self.make_task())
        b = mapper.assign(self.make_task())
        assert a == b == "diplice.sen.cwi.nl"

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            self.make_mapper(capacity=0)

    def test_hosts_in_use_reported(self):
        mapper = self.make_mapper()
        task = self.make_task()
        mapper.assign(task)
        assert mapper.hosts_in_use() == ["bumpa.sen.cwi.nl"]
        assert mapper.host_of(task) == "bumpa.sen.cwi.nl"


class TestTaskDeathFreesHost:
    """Regression: a task instance's machine slot must be released on
    *task* death through every exit path — not only when a resident
    thread's death happens to empty a non-perpetual instance.  Before
    the ``TaskManager.on_task_death`` subscription, instances ended by
    ``kill_idle_perpetual`` (mid-run reclamation) or ``mark_dead`` (an
    engine observing its daemon die) held their host forever, so long
    chaos runs wrongly exhausted the locus."""

    TWO_HOSTS = """
    {host h1 diplice.sen.cwi.nl}
    {host h2 alboka.sen.cwi.nl}
    {locus mainprog $h1 $h2}
    """

    class FakeProc:
        _counter = iter(range(10_000, 20_000))

        def __init__(self):
            self.instance_id = next(self._counter)
            self.definition_name = "Worker"
            self.task_instance = None

    def make_pair(self, perpetual: bool):
        pattern = "{perpetual} " if perpetual else ""
        manager = TaskManager(parse_mlink(
            "{task mainprog " + pattern + "{load 1} {weight Worker 1}}"
        ))
        mapper = HostMapper(parse_config(self.TWO_HOSTS), "bumpa.sen.cwi.nl")
        manager.on_task_death.append(mapper.free)
        return manager, mapper

    def cycle_once(self, manager, mapper, *, reclaim: bool):
        proc = self.FakeProc()
        task = manager.place(proc)
        if task.host is None:
            mapper.assign(task)
        manager.release(proc)
        if reclaim:
            manager.kill_idle_perpetual()
        return task

    def test_cycling_more_instances_than_hosts_never_exhausts(self):
        # 3 machines (startup + 2 locus), 8 sequential task instances
        manager, mapper = self.make_pair(perpetual=False)
        for _ in range(8):
            self.cycle_once(manager, mapper, reclaim=False)
        assert mapper.hosts_in_use() == []

    def test_perpetual_reclamation_frees_machines(self):
        # mid-run kill_idle_perpetual (the "ebb" of the ebb & flow)
        # must hand the machines back for the next flow
        manager, mapper = self.make_pair(perpetual=True)
        for _ in range(8):
            self.cycle_once(manager, mapper, reclaim=True)
        assert mapper.hosts_in_use() == []

    def test_mark_dead_frees_machine_exactly_once(self):
        manager, mapper = self.make_pair(perpetual=True)
        proc = self.FakeProc()
        task = manager.place(proc)
        mapper.assign(task)
        assert manager.mark_dead(task) is True
        assert mapper.hosts_in_use() == []
        # second kill is a no-op: no callbacks, no double free
        assert manager.mark_dead(task) is False
        # the resident unwinding later must not re-report the death
        manager.release(proc)
        assert mapper.hosts_in_use() == []
