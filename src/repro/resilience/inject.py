"""A deterministic, seedable fault injector for the execution layer.

The injector is *data*: a :class:`FaultPlan` is a tuple of
:class:`FaultRule` entries, each naming a fault kind, the grid(s) and
attempt(s) it applies to, and an optional deterministic sampling rate.
The same plan object drives two very different backends:

* **in-process, against the real pool** — :func:`resilient_entry` is
  the job wrapper the fault-tolerant dispatch loop of
  :mod:`repro.restructured.parallel` ships to the fork-pool workers.
  A matched ``crash`` rule really calls ``os._exit`` inside the worker
  OS process, a ``hang`` rule really sleeps through the deadline, so
  the recovery machinery is exercised against genuine process death,
  not a simulation of it;
* **the cluster simulator** — :meth:`FaultPlan.action` is consulted by
  :func:`repro.cluster.simulator.simulate_distributed` per (grid,
  attempt), which is how the chaos scenarios of
  :mod:`repro.cluster.scenarios` model crashes and slow hosts on the
  paper's 32-machine testbed.

Determinism guarantee: rule matching uses no wall clock and no global
RNG.  ``rate=`` sampling hashes ``(seed, l, m, attempt)``
(:func:`~repro.resilience.policy.deterministic_fraction`), so a seeded
plan injects the *same* faults on every run, in every process, on every
machine — the property the acceptance tests lean on when they assert a
recovered run is bitwise identical to a fault-free one.

Spec grammar (the CLI's ``--faults`` argument)::

    spec   := clause (';' clause)*
    clause := kind ['@' target] [':' params]
    kind   := 'crash' | 'hang' | 'slow' | 'raise'
    target := l ',' m | '*'
    params := key '=' value (',' key '=' value)*
    keys   := attempt (int or '*'), rate, seed, factor, seconds, exit_code

Examples::

    crash@3,2                    # kill the worker solving grid (3,2), attempt 1
    hang@5,1:seconds=3600        # grid (5,1)'s first attempt never returns
    slow@*:factor=4,rate=0.2     # a fifth of all jobs run on a 4x slower host
    raise@2,2:attempt=*          # every attempt at (2,2) throws transiently
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Optional

from .policy import deterministic_fraction

__all__ = [
    "FAULT_KINDS",
    "TransientWorkerError",
    "FaultRule",
    "FaultPlan",
    "resilient_entry",
]

FAULT_KINDS = ("crash", "hang", "slow", "raise")

#: exit status of an injected worker crash (recognizable in core dumps
#: and pool diagnostics; any non-zero status triggers the same recovery)
CRASH_EXIT_CODE = 23


class TransientWorkerError(RuntimeError):
    """The injected transient fault: the job raises instead of dying."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault: what, where, when, and how severe."""

    kind: str
    #: target grid; None matches any l (resp. m)
    l: Optional[int] = None
    m: Optional[int] = None
    #: attempt number the rule fires on; None = every attempt
    attempt: Optional[int] = 1
    #: deterministic sampling rate in (0, 1]; 1.0 = always
    rate: float = 1.0
    #: seed of the rate draw (per-rule, so plans compose predictably)
    seed: int = 0
    #: slow-host multiplier (kind == "slow")
    factor: float = 3.0
    #: hang duration (kind == "hang"); long enough to trip any deadline
    seconds: float = 3600.0
    #: worker exit status (kind == "crash")
    exit_code: int = CRASH_EXIT_CODE

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def matches(self, l: int, m: int, attempt: int) -> bool:
        """Does this rule fire for (grid, attempt)?  Deterministic."""
        if self.l is not None and self.l != l:
            return False
        if self.m is not None and self.m != m:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.rate >= 1.0:
            return True
        return (
            deterministic_fraction(self.seed, self.kind, l, m, attempt)
            < self.rate
        )


def _parse_clause(clause: str, default_seed: int) -> FaultRule:
    clause = clause.strip()
    head, _, params_text = clause.partition(":")
    kind, _, target = head.strip().partition("@")
    kind = kind.strip()
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} in clause {clause!r}; "
            f"choose from {FAULT_KINDS}"
        )
    # slow is a property of the host, not of one attempt: default to
    # every attempt so a retry does not magically land on fast hardware
    rule = FaultRule(
        kind=kind,
        seed=default_seed,
        attempt=None if kind == "slow" else 1,
    )
    target = target.strip()
    if target and target != "*":
        try:
            l_text, m_text = target.split(",")
            rule = replace(rule, l=int(l_text), m=int(m_text))
        except ValueError:
            raise ValueError(
                f"bad target {target!r} in clause {clause!r}; "
                "expected 'l,m' or '*'"
            ) from None
    for pair in filter(None, (p.strip() for p in params_text.split(","))):
        key, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"bad parameter {pair!r} in clause {clause!r}")
        key = key.strip()
        value = value.strip()
        if key == "attempt":
            rule = replace(rule, attempt=None if value == "*" else int(value))
        elif key == "rate":
            rule = replace(rule, rate=float(value))
        elif key == "seed":
            rule = replace(rule, seed=int(value))
        elif key == "factor":
            rule = replace(rule, factor=float(value))
        elif key == "seconds":
            rule = replace(rule, seconds=float(value))
        elif key == "exit_code":
            rule = replace(rule, exit_code=int(value))
        else:
            raise ValueError(
                f"unknown parameter {key!r} in clause {clause!r}"
            )
    return rule


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules; first match wins.

    Frozen and built from plain values, so a plan pickles cleanly across
    the fork boundary and two equal plans behave identically.
    """

    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Parse the ``--faults`` spec grammar (see module docstring)."""
        rules = tuple(
            _parse_clause(clause, seed)
            for clause in spec.split(";")
            if clause.strip()
        )
        if not rules:
            raise ValueError(f"fault spec {spec!r} contains no clauses")
        return cls(rules=rules)

    def action(self, l: int, m: int, attempt: int) -> Optional[FaultRule]:
        """The rule that fires for this (grid, attempt), if any."""
        for rule in self.rules:
            if rule.matches(l, m, attempt):
                return rule
        return None

    def describe(self) -> str:
        return "; ".join(
            f"{r.kind}@"
            + ("*" if r.l is None else f"{r.l},{r.m}")
            + (f":attempt={'*' if r.attempt is None else r.attempt}")
            + (f",rate={r.rate:g}" if r.rate < 1.0 else "")
            for r in self.rules
        )


# ----------------------------------------------------------------------
# the worker-side entry point
# ----------------------------------------------------------------------
def resilient_entry(item: tuple):
    """Run one job under fault injection, emitting heartbeats.

    ``item`` is ``(spec, plan, attempt, use_cache)``, optionally
    extended with a fifth element — the job's shared-memory
    :class:`~repro.perf.dataplane.ShmLease` — when the run uses the
    zero-copy data plane; top-level so multiprocessing pickles it by
    reference.  Heartbeats — ``(phase, (l, m), attempt, pid)`` tuples on
    the pool's inherited queue — tell the master *which worker process*
    holds *which job*, so a process liveness check can attribute an
    OS-level death to the exact lost job instead of waiting out its
    deadline.
    """
    spec, plan, attempt, use_cache = item[:4]
    lease = item[4] if len(item) > 4 else None
    # local imports: this module must stay importable (and picklable by
    # reference) without dragging the execution layer in at import time
    from repro.restructured import pool as pool_mod
    from repro.restructured.worker import execute_job, ship_payload

    heartbeats = pool_mod.child_heartbeat_queue()
    key = (spec.l, spec.m)
    pid = os.getpid()
    if heartbeats is not None:
        heartbeats.put(("start", key, attempt, pid))
    action = plan.action(spec.l, spec.m, attempt) if plan is not None else None
    if action is not None and action.kind == "crash":
        # a real, unannounced OS-level death — exactly what a segfault
        # or an OOM kill looks like from the master's side
        os._exit(action.exit_code)
    if action is not None and action.kind == "hang":
        time.sleep(action.seconds)
    if action is not None and action.kind == "raise":
        if heartbeats is not None:
            heartbeats.put(("fail", key, attempt, pid))
        raise TransientWorkerError(
            f"injected transient fault on grid {key}, attempt {attempt}"
        )
    started = time.perf_counter()
    payload = execute_job(spec, use_cache=use_cache)
    if action is not None and action.kind == "slow":
        # emulate a slow host: stretch the job to factor x its own time
        time.sleep((action.factor - 1.0) * (time.perf_counter() - started))
    # ship through the shm lease *after* the injected compute faults, so
    # a crashed or hung attempt never half-writes its block: a lease is
    # either carrying a complete checksummed payload or reclaimed whole
    payload = ship_payload(payload, lease)
    if heartbeats is not None:
        heartbeats.put(("done", key, attempt, pid))
    return payload
