"""Intra-grid decomposition: unsplit vs k-strip Schur substructuring.

The combination technique's critical path is the largest anisotropic
grid of the family — LPT packing cannot shrink a makespan below the
single longest job.  Splitting that job into ``k`` strip subsolves
(:mod:`repro.sparsegrid.decompose`) attacks exactly that floor.  This
bench measures, on the level-5 family at root 5:

* warm min-of-rounds **unsplit** walls for every grid (shared factor
  cache per grid, first round pays the factorizations);
* the **split** walls for ``k in {2, 4}`` on the critical-path grids
  (those within ``top_fraction`` of the longest wall), with the serial
  strip executor so every strip's compute is measured honestly on this
  machine;
* the **projected critical path** of each split solve
  (:func:`~repro.sparsegrid.decompose.projected_critical_seconds`):
  the wall this exact solve would see with its strips factored and
  back-substituted on ``k`` parallel lanes — the measured per-strip
  segment durations composed into a critical lane, the same
  machine-noise isolation the dispatch-makespan metric uses;
* the **end-to-end makespan** at ``makespan_workers`` workers: greedy
  LPT over the unsplit walls versus the same schedule with each split
  grid replaced by ``k`` lane-jobs — the critical lane at its projected
  critical seconds and the other ``k - 1`` lanes sharing the rest of
  the measured split wall, so the composition preserves the split
  solve's total measured compute.

The worker count is the regime the decomposition targets: with
``w >= 2*level + 1`` (the paper's worker-count relation) every grid has
its own worker, so LPT is pinned to the longest job and only splitting
that job can cut the makespan further.

Correctness is asserted alongside: ``split_k=1`` is bitwise identical
to the plain path, and every ``k >= 2`` solution stays within
:func:`~repro.sparsegrid.decompose.split_tolerance` of the unsplit
oracle.

Runs in a fast smoke mode inside the tier-1 suite (short integration
window, so the makespan ratio lands in every ``BENCH_split_solve.json``
trajectory); set ``REPRO_SPLIT_SOLVE_FULL=1`` for the full window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.warmpath import simulate_makespan
from repro.sparsegrid.decompose import (
    StripPlan,
    projected_critical_seconds,
    split_tolerance,
)
from repro.sparsegrid.grid import nested_loop_grids
from repro.sparsegrid.linsolve import FactorCache
from repro.sparsegrid.registry import make_problem
from repro.sparsegrid.subsolve import subsolve

PROBLEM = "rotating-cone"


def _warm_best(problem, grid, tol, t_end, rounds, *, split_k=1):
    """Min-of-rounds subsolve with a per-grid factor cache: the first
    round pays the factorizations, the best of the following ``rounds``
    is the warm wall."""
    cache = FactorCache()
    best = None
    for _ in range(rounds + 1):
        res = subsolve(
            problem, grid, tol, t_end,
            factor_cache=cache, split_k=split_k,
        )
        if best is None or res.wall_seconds < best.wall_seconds:
            best = res
    return best


@pytest.mark.benchmark(group="split-solve")
def test_split_k1_bitwise_identical(benchmark, split_solve_settings):
    """``split_k=1`` takes the literal unsplit code path — bitwise."""
    s = split_solve_settings
    problem = make_problem(PROBLEM)
    grid = max(
        nested_loop_grids(s["root"], s["level"]),
        key=lambda g: g.n_interior,
    )
    plain = subsolve(problem, grid, s["tol"], s["t_end"])
    k1 = benchmark.pedantic(
        lambda: subsolve(problem, grid, s["tol"], s["t_end"], split_k=1),
        rounds=1, iterations=1,
    )
    assert np.array_equal(plain.solution, k1.solution)
    assert k1.split_k == 1
    benchmark.extra_info["bitwise_identical"] = True


@pytest.mark.benchmark(group="split-solve")
def test_split_makespan_reduction(benchmark, split_solve_settings):
    """The headline measurement: splitting the critical-path grids must
    cut the end-to-end makespan by >= 1.3x at >= 2 workers (the smoke
    mode's floor is slightly relaxed for noise; see the settings
    fixture)."""
    s = split_solve_settings
    tol, t_end, rounds = s["tol"], s["t_end"], s["rounds"]
    workers = s["makespan_workers"]
    problem = make_problem(PROBLEM)
    grids = {
        (g.l, g.m): g for g in nested_loop_grids(s["root"], s["level"])
    }

    # 1. warm unsplit walls for the whole family
    unsplit = {
        key: _warm_best(problem, grid, tol, t_end, rounds)
        for key, grid in grids.items()
    }
    walls = {key: res.wall_seconds for key, res in unsplit.items()}
    max_wall = max(walls.values())
    split_keys = sorted(
        key for key, wall in walls.items()
        if wall >= s["top_fraction"] * max_wall
    )
    assert split_keys, "at least one critical-path grid must qualify"

    # 2. split the critical-path grids at each k; keep the best lane
    best_split = {}  # key -> (k, projected critical seconds, result)
    per_k_ratio = {}
    for key in split_keys:
        grid = grids[key]
        for k in s["k_options"]:
            if StripPlan.for_grid(grid, k).k < 2:
                continue
            res = _warm_best(problem, grid, tol, t_end, rounds, split_k=k)
            assert res.split_k == StripPlan.for_grid(grid, k).k
            diff = float(
                np.max(np.abs(res.solution - unsplit[key].solution))
            )
            assert diff <= split_tolerance(tol), (
                f"split {key} k={k}: |diff| {diff:.3e} exceeds "
                f"{split_tolerance(tol):.3e}"
            )
            crit = projected_critical_seconds(res.stats, res.wall_seconds)
            per_k_ratio[f"lane_speedup_{key}_k{k}"] = walls[key] / crit
            if key not in best_split or crit < best_split[key][1]:
                best_split[key] = (res.stats.split_k, crit, res)

    # 3. compose the makespans: LPT over the unsplit walls vs the same
    #    schedule with each split grid as k lane-jobs.  The critical
    #    lane costs the projected critical seconds; the other k-1 lanes
    #    share the rest of the measured split wall, so the split
    #    schedule carries the solve's full measured compute (split
    #    overhead included) — no work is dropped by the composition.
    mk_unsplit = simulate_makespan(
        sorted(walls.values(), reverse=True), workers
    )
    units: list[float] = []
    for key, wall in walls.items():
        if key in best_split:
            k, crit, res = best_split[key]
            units.append(crit)
            units.extend([(res.wall_seconds - crit) / (k - 1)] * (k - 1))
        else:
            units.append(wall)
    mk_split = simulate_makespan(sorted(units, reverse=True), workers)
    ratio = mk_unsplit / mk_split

    # 4. the overhead the split pays for its parallelism: the serial
    #    interface (Schur) work the halo exchanges feed, as a share of
    #    the top grid's critical lane
    top_key = max(walls, key=lambda key: walls[key])
    top_k, top_crit, top_res = best_split[top_key]
    overhead = (
        top_res.stats.schur_factor_seconds
        + top_res.stats.interface_solve_seconds
    )
    overhead_share = overhead / top_crit if top_crit > 0 else 0.0

    # time one warm split solve of the top grid as the benchmark body
    top_cache = FactorCache()
    subsolve(problem, grids[top_key], tol, t_end,
             factor_cache=top_cache, split_k=top_k)
    benchmark.pedantic(
        lambda: subsolve(problem, grids[top_key], tol, t_end,
                         factor_cache=top_cache, split_k=top_k),
        rounds=max(1, rounds - 1), iterations=1,
    )

    benchmark.extra_info["makespan_unsplit_seconds"] = mk_unsplit
    benchmark.extra_info["makespan_split_seconds"] = mk_split
    benchmark.extra_info["makespan_reduction"] = ratio
    benchmark.extra_info["makespan_workers"] = workers
    benchmark.extra_info["split_grids"] = ", ".join(
        f"({l},{m})×{best_split[(l, m)][0]}" for l, m in sorted(best_split)
    )
    benchmark.extra_info["halo_overhead_share"] = overhead_share
    benchmark.extra_info["halo_bytes_top_grid"] = int(
        top_res.stats.halo_bytes
    )
    benchmark.extra_info["halo_exchanges_top_grid"] = int(
        top_res.stats.halo_exchanges
    )
    for label, value in sorted(per_k_ratio.items()):
        benchmark.extra_info[label] = value

    print(f"\nsplit solve @{workers} workers: unsplit makespan "
          f"{mk_unsplit:.3f}s vs split {mk_split:.3f}s "
          f"(reduction {ratio:.2f}x); top grid {top_key} at k={top_k}, "
          f"interface overhead share {overhead_share:.3f}")
    floor = s["min_reduction"]
    assert ratio >= floor, (
        f"splitting the critical-path grids must cut the makespan by "
        f">= {floor}x, got {ratio:.2f}x "
        f"({mk_unsplit:.4f}s -> {mk_split:.4f}s)"
    )
