"""Prolongation, restriction and the combination formula."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import (
    Grid,
    SequentialApplication,
    combine,
    manufactured_problem,
    resample_1d,
    resample_2d,
)


class TestResample1D:
    def test_prolongation_doubles_cells(self):
        values = np.array([0.0, 1.0, 0.0])
        out = resample_1d(values, 1, axis=0)
        assert out.shape == (5,)

    def test_prolongation_is_linear_interpolation(self):
        values = np.array([0.0, 2.0])
        out = resample_1d(values, 1, axis=0)
        assert np.allclose(out, [0.0, 1.0, 2.0])

    def test_prolongation_preserves_existing_nodes(self):
        values = np.array([3.0, -1.0, 4.0])
        out = resample_1d(values, 2, axis=0)
        assert np.allclose(out[::4], values)

    def test_restriction_subsamples(self):
        values = np.linspace(0, 1, 9)
        out = resample_1d(values, -1, axis=0)
        assert np.allclose(out, values[::2])

    def test_zero_levels_is_identity(self):
        values = np.arange(5, dtype=float)
        assert np.array_equal(resample_1d(values, 0, axis=0), values)

    def test_prolong_then_restrict_is_identity(self):
        values = np.array([1.0, 4.0, 2.0, 7.0, 3.0])
        round_trip = resample_1d(resample_1d(values, 2, axis=0), -2, axis=0)
        assert np.allclose(round_trip, values)

    def test_respects_axis(self):
        values = np.zeros((3, 5))
        out = resample_1d(values, 1, axis=0)
        assert out.shape == (5, 5)
        out = resample_1d(values, 1, axis=1)
        assert out.shape == (3, 9)

    def test_linear_functions_reproduced_exactly(self):
        x = np.linspace(0, 1, 5)
        values = 3.0 * x + 1.0
        out = resample_1d(values, 3, axis=0)
        x_fine = np.linspace(0, 1, len(out))
        assert np.allclose(out, 3.0 * x_fine + 1.0)


class TestResample2D:
    def test_shape_mapping(self):
        src = Grid(2, 0, 2)
        dst = Grid(2, 2, 2)
        values = np.zeros(src.shape)
        assert resample_2d(values, src, dst).shape == dst.shape

    def test_mixed_prolong_restrict(self):
        src = Grid(2, 2, 0)
        dst = Grid(2, 1, 1)
        xx, yy = src.meshgrid()
        values = 2 * xx + 3 * yy  # bilinear: exactly representable
        out = resample_2d(values, src, dst)
        xx2, yy2 = dst.meshgrid()
        assert np.allclose(out, 2 * xx2 + 3 * yy2)

    def test_root_mismatch_rejected(self):
        with pytest.raises(ValueError):
            resample_2d(np.zeros(Grid(2, 0, 0).shape), Grid(2, 0, 0), Grid(3, 0, 0))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            resample_2d(np.zeros((3, 3)), Grid(2, 1, 1), Grid(2, 2, 2))


class TestCombine:
    def solutions_for(self, root, level, f):
        from repro.sparsegrid.grid import nested_loop_grids

        return {
            (g.l, g.m): g.sample(lambda x, y: f(x, y))
            for g in nested_loop_grids(root, level)
        }

    def test_constant_field_reproduced(self):
        solutions = self.solutions_for(2, 3, lambda x, y: np.full_like(x, 7.0))
        _, combined = combine(solutions, 2, 3)
        assert np.allclose(combined, 7.0)

    def test_bilinear_field_reproduced_exactly(self):
        f = lambda x, y: 2 * x - y + 3 * x * y + 1
        solutions = self.solutions_for(2, 3, f)
        target, combined = combine(solutions, 2, 3)
        xx, yy = target.meshgrid()
        assert np.allclose(combined, f(xx, yy))

    def test_target_grid_is_isotropic_at_level(self):
        solutions = self.solutions_for(2, 2, lambda x, y: x)
        target, _ = combine(solutions, 2, 2)
        assert (target.l, target.m) == (2, 2)

    def test_target_cap_bounds_target(self):
        solutions = self.solutions_for(2, 3, lambda x, y: x)
        target, _ = combine(solutions, 2, 3, target_cap=2)
        assert (target.l, target.m) == (2, 2)

    def test_missing_grid_rejected(self):
        solutions = self.solutions_for(2, 2, lambda x, y: x)
        del solutions[(1, 1)]
        with pytest.raises(KeyError):
            combine(solutions, 2, 2)

    def test_level_zero_is_passthrough(self):
        g = Grid(2, 0, 0)
        values = g.sample(lambda x, y: x * y)
        _, combined = combine({(0, 0): values}, 2, 0)
        assert np.allclose(combined, values)

    def test_combination_error_decreases_with_level(self):
        """The headline numerical property of the sparse-grid method:
        the combined solution converges as the level grows."""
        problem = manufactured_problem(diffusion=0.02, t_end=0.25)
        errors = []
        for level in (1, 3, 5):
            app = SequentialApplication(
                root=2, level=level, tol=1e-6, problem=problem
            )
            result = app.run()
            xx, yy = result.target_grid.meshgrid()
            exact = problem.exact(xx, yy, 0.25)
            errors.append(float(np.max(np.abs(result.combined - exact))))
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]
