"""The warm-path operator/assembly cache.

Every ``subsolve(l, m)`` call of the seed re-assembles its
:class:`~repro.sparsegrid.discretize.SpatialOperator` from scratch —
including across the five-run averages the measurement protocol
mandates, across cost-model calibration sweeps, and across every
benchmark repetition.  The operator, however, is a deterministic
function of ``(problem, grid, scheme)``: re-building it buys nothing
but wall time.

:class:`OperatorCache` is a bounded, process-local LRU keyed by the
*problem signature* — ``(problem_name, sorted kwargs)``, the same
by-name contract job specs already use to cross process boundaries —
plus the grid and the advection scheme.  Each entry carries

* the assembled :class:`SpatialOperator` (with the problem instance it
  embeds, so a hit also skips the registry re-instantiation), and
* a :class:`~repro.sparsegrid.linsolve.FactorCache` of LU factors for
  that operator, so repeated integrations also skip refactorization.

Reuse is bitwise safe: hits return the very objects a miss would have
built, and neither the operator nor an LU factor is mutated by an
integration.  Tolerance and final time are deliberately *not* part of
the key — the operator does not depend on them, and LU factors depend
only on ``(J, gamma, h)``.

The module-level default cache is what warm worker processes retain
between jobs; a forked pool inherits (copy-on-write) whatever the
parent already cached.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from .discretize import Scheme, SpatialOperator
from .grid import Grid
from .linsolve import FactorCache
from .problem import AdvectionDiffusionProblem

__all__ = [
    "CacheEntry",
    "OperatorCache",
    "operator_key",
    "default_operator_cache",
    "configure_default_operator_cache",
    "reset_default_operator_cache",
]

#: default bound of the process-local cache (every level-15 sweep fits:
#: 2*level+1 = 31 grids per diagonal pair)
DEFAULT_MAXSIZE = 32


def operator_key(
    problem_name: str,
    problem_kwargs: tuple,
    grid: Grid,
    scheme: str,
) -> tuple:
    """The cache key: problem signature + grid + scheme."""
    return (problem_name, tuple(problem_kwargs), grid.root, grid.l, grid.m, scheme)


@dataclass
class CacheEntry:
    """One cached assembly: the operator and its factor store."""

    operator: SpatialOperator
    factor_cache: FactorCache


class OperatorCache:
    """Bounded process-local LRU of assembled spatial operators."""

    def __init__(
        self, maxsize: int = DEFAULT_MAXSIZE, *, factor_maxsize: int = 64
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.factor_maxsize = factor_maxsize
        self._entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(
        self,
        key: Hashable,
        build: Callable[[], SpatialOperator],
    ) -> tuple[CacheEntry, bool]:
        """Return ``(entry, was_hit)``; ``build`` runs only on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry, True
        self.misses += 1
        entry = CacheEntry(
            operator=build(),
            factor_cache=FactorCache(self.factor_maxsize),
        )
        self._entries[key] = entry
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry, False

    def get_operator(
        self,
        problem: AdvectionDiffusionProblem | Callable[[], AdvectionDiffusionProblem],
        grid: Grid,
        *,
        scheme: Scheme = "upwind",
        problem_name: Optional[str] = None,
        problem_kwargs: tuple = (),
    ) -> tuple[CacheEntry, bool]:
        """Convenience wrapper building the key from a problem signature.

        ``problem`` may be an instance or a zero-argument factory (the
        factory is only invoked on a miss); the signature defaults to
        the problem's own name when ``problem_name`` is not given.
        """
        if problem_name is None:
            if callable(problem) and not isinstance(
                problem, AdvectionDiffusionProblem
            ):
                raise ValueError(
                    "problem_name is required when problem is a factory"
                )
            problem_name = problem.name

        def build() -> SpatialOperator:
            instance = (
                problem()
                if callable(problem)
                and not isinstance(problem, AdvectionDiffusionProblem)
                else problem
            )
            return SpatialOperator(grid, instance, scheme=scheme)

        key = operator_key(problem_name, problem_kwargs, grid, scheme)
        return self.get(key, build)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict[str, float]:
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
        }


# ----------------------------------------------------------------------
# the process-local default cache (what warm pool workers retain)
# ----------------------------------------------------------------------
_default: Optional[OperatorCache] = None
_default_maxsize = DEFAULT_MAXSIZE


def default_operator_cache() -> OperatorCache:
    """The process-local cache, created lazily."""
    global _default
    if _default is None:
        _default = OperatorCache(_default_maxsize)
    return _default


def configure_default_operator_cache(maxsize: int) -> OperatorCache:
    """Replace the default cache with an empty one of the given bound."""
    global _default, _default_maxsize
    _default_maxsize = maxsize
    _default = OperatorCache(maxsize)
    return _default


def reset_default_operator_cache() -> None:
    """Drop the default cache (tests; cold-path measurements)."""
    global _default
    _default = None
