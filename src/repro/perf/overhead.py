"""The §7 overhead decomposition.

The paper distinguishes three overhead categories introduced by the
restructuring:

1. the unpredictable effects of the multi-user environment;
2. the overhead of the concurrency itself (making a sequential program
   run as a concurrent one: remote task instances, data passing);
3. the overhead of the coordination layer (the protocol's events,
   handshakes, rendezvous bookkeeping).

A simulated :class:`~repro.cluster.simulator.DistributedRun` carries an
itemized breakdown; this module maps the items onto the paper's three
categories and quantifies the multi-user effect by differencing against
a quiet-cluster re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.simulator import DistributedRun

__all__ = ["OverheadReport", "decompose_run"]

#: breakdown items attributed to "the concurrency itself"
_CONCURRENCY_ITEMS = ("startup", "fork", "send_wait", "result_wait", "shutdown")
#: breakdown items attributed to "the coordination layer"
_COORDINATION_ITEMS = ("handshake", "events")


@dataclass(frozen=True)
class OverheadReport:
    """Elapsed time of one concurrent run, split §7-style."""

    elapsed_seconds: float
    useful_seconds: float          # critical-path work + master's own work
    concurrency_seconds: float     # category 2
    coordination_seconds: float    # category 3
    multiuser_seconds: float       # category 1 (vs. the quiet twin run)

    @property
    def overhead_fraction(self) -> float:
        total = (
            self.concurrency_seconds
            + self.coordination_seconds
            + self.multiuser_seconds
        )
        return total / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "elapsed": self.elapsed_seconds,
            "useful": self.useful_seconds,
            "concurrency": self.concurrency_seconds,
            "coordination": self.coordination_seconds,
            "multiuser": self.multiuser_seconds,
            "overhead_fraction": self.overhead_fraction,
        }


def decompose_run(
    run: DistributedRun, quiet_run: DistributedRun | None = None
) -> OverheadReport:
    """Split a run's elapsed time into the paper's categories.

    ``quiet_run`` is the same configuration re-simulated with
    :meth:`~repro.cluster.noise.MultiUserNoise.quiet` noise; the elapsed
    difference is the multi-user category.  Without it the category is
    reported as zero (dedicated machines).
    """
    b = run.breakdown
    concurrency = sum(b.get(item, 0.0) for item in _CONCURRENCY_ITEMS)
    coordination = sum(b.get(item, 0.0) for item in _COORDINATION_ITEMS)
    useful = (
        b.get("work_critical", 0.0)
        + b.get("master_init", 0.0)
        + b.get("prolongation", 0.0)
    )
    multiuser = 0.0
    if quiet_run is not None:
        multiuser = max(0.0, run.elapsed_seconds - quiet_run.elapsed_seconds)
        # the quiet twin absorbs the noise from every additive item; do
        # not double-count it inside the other categories
        concurrency = sum(quiet_run.breakdown.get(i, 0.0) for i in _CONCURRENCY_ITEMS)
        coordination = sum(quiet_run.breakdown.get(i, 0.0) for i in _COORDINATION_ITEMS)
        useful = (
            quiet_run.breakdown.get("work_critical", 0.0)
            + quiet_run.breakdown.get("master_init", 0.0)
            + quiet_run.breakdown.get("prolongation", 0.0)
        )
    return OverheadReport(
        elapsed_seconds=run.elapsed_seconds,
        useful_seconds=useful,
        concurrency_seconds=concurrency,
        coordination_seconds=coordination,
        multiuser_seconds=multiuser,
    )
