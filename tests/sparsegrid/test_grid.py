"""Grid family, nested-loop enumeration, combination coefficients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparsegrid import Grid, combination_grids, nested_loop_grids


class TestGrid:
    def test_cell_counts_are_dyadic(self):
        g = Grid(2, 3, 1)
        assert g.nx == 2 ** 5
        assert g.ny == 2 ** 3

    def test_mesh_widths(self):
        g = Grid(2, 1, 0)
        assert g.hx == pytest.approx(1 / 8)
        assert g.hy == pytest.approx(1 / 4)

    def test_shapes(self):
        g = Grid(1, 1, 2)
        assert g.shape == (g.nx + 1, g.ny + 1)
        assert g.interior_shape == (g.nx - 1, g.ny - 1)
        assert g.n_interior == (g.nx - 1) * (g.ny - 1)
        assert g.n_nodes == (g.nx + 1) * (g.ny + 1)

    def test_diagonal_and_anisotropy(self):
        g = Grid(2, 4, 1)
        assert g.diagonal == 5
        assert g.anisotropy == 3
        assert Grid(2, 2, 2).anisotropy == 0

    def test_nodes_span_unit_interval(self):
        g = Grid(2, 0, 0)
        x = g.x_nodes()
        assert x[0] == 0.0 and x[-1] == 1.0
        assert len(x) == g.nx + 1
        assert np.allclose(np.diff(x), g.hx)

    def test_meshgrid_indexing(self):
        g = Grid(1, 0, 1)
        xx, yy = g.meshgrid()
        assert xx.shape == g.shape
        assert xx[1, 0] == pytest.approx(g.hx)
        assert yy[0, 1] == pytest.approx(g.hy)

    def test_interior_meshgrid_excludes_boundary(self):
        g = Grid(1, 1, 1)
        xx, yy = g.interior_meshgrid()
        assert xx.shape == g.interior_shape
        assert xx.min() > 0 and xx.max() < 1

    def test_sample_evaluates_field(self):
        g = Grid(1, 0, 0)
        values = g.sample(lambda x, y: x + 2 * y)
        xx, yy = g.meshgrid()
        assert np.allclose(values, xx + 2 * yy)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            Grid(2, -1, 0)
        with pytest.raises(ValueError):
            Grid(-1, 0, 0)

    def test_equality_and_hash(self):
        assert Grid(2, 1, 1) == Grid(2, 1, 1)
        assert len({Grid(2, 1, 1), Grid(2, 1, 1)}) == 1


class TestNestedLoop:
    def test_worker_count_relation(self):
        """The paper's w = 2*level + 1."""
        for level in range(0, 8):
            assert len(nested_loop_grids(2, level)) == 2 * level + 1

    def test_level_zero_visits_single_grid(self):
        grids = nested_loop_grids(2, 0)
        assert [(g.l, g.m) for g in grids] == [(0, 0)]

    def test_loop_order_matches_paper(self):
        """lm ascends over {level-1, level}; l ascends inside."""
        grids = nested_loop_grids(2, 2)
        assert [(g.l, g.m) for g in grids] == [
            (0, 1), (1, 0),            # lm = 1
            (0, 2), (1, 1), (2, 0),    # lm = 2
        ]

    def test_all_grids_on_two_diagonals(self):
        for grid in nested_loop_grids(3, 4):
            assert grid.diagonal in (3, 4)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            nested_loop_grids(2, -1)

    def test_root_propagates(self):
        assert all(g.root == 3 for g in nested_loop_grids(3, 2))


class TestCombinationGrids:
    def test_coefficients_plus_one_on_top_diagonal(self):
        for grid, coeff in combination_grids(2, 3):
            expected = 1 if grid.diagonal == 3 else -1
            assert coeff == expected

    def test_level_zero_has_only_positive_term(self):
        pairs = list(combination_grids(2, 0))
        assert pairs == [(Grid(2, 0, 0), 1)]

    def test_coefficient_sum_is_one(self):
        """The combination formula must reproduce constants: the
        coefficients sum to +1."""
        for level in range(0, 6):
            assert sum(c for _, c in combination_grids(2, level)) == 1
