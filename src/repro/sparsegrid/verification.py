"""Verification utilities: error norms, convergence studies, orders.

The original developers judged their algorithms "effective (good
convergence rates)"; this module makes that judgement reproducible:

* grid-function error norms against an exact solution;
* convergence studies over level sequences — for single grids, for the
  combination technique, and for the time integrator — with observed
  orders computed from consecutive refinements;
* conservation checks (discrete mass) for the transport problems
  without an exact solution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .grid import Grid
from .problem import AdvectionDiffusionProblem
from .sequential import SequentialApplication
from .subsolve import subsolve

__all__ = [
    "error_norms",
    "ConvergenceRow",
    "ConvergenceStudy",
    "single_grid_study",
    "combination_study",
    "discrete_mass",
]


def error_norms(
    computed: np.ndarray, exact: np.ndarray
) -> dict[str, float]:
    """Max, L2 (grid-weighted RMS) and L1 errors of a nodal field."""
    if computed.shape != exact.shape:
        raise ValueError(
            f"shape mismatch: {computed.shape} vs {exact.shape}"
        )
    diff = np.abs(computed - exact)
    return {
        "max": float(diff.max()),
        "l2": float(np.sqrt(np.mean(diff**2))),
        "l1": float(np.mean(diff)),
    }


@dataclass(frozen=True)
class ConvergenceRow:
    """One refinement step of a study."""

    level: int
    error: float
    order: Optional[float]  # vs the previous row; None for the first
    wall_seconds: float


@dataclass
class ConvergenceStudy:
    """A sequence of refinements with observed convergence orders."""

    name: str
    norm: str
    rows: list[ConvergenceRow] = field(default_factory=list)

    def add(self, level: int, error: float, wall_seconds: float) -> None:
        order = None
        if self.rows and error > 0 and self.rows[-1].error > 0:
            step = level - self.rows[-1].level
            if step > 0:
                order = math.log(self.rows[-1].error / error) / (
                    step * math.log(2.0)
                )
        self.rows.append(ConvergenceRow(level, error, order, wall_seconds))

    @property
    def observed_order(self) -> float:
        """Median of the per-step orders (robust to pre-asymptotics)."""
        orders = [r.order for r in self.rows if r.order is not None]
        if not orders:
            raise ValueError(f"study {self.name!r} has fewer than two rows")
        return float(np.median(orders))

    def is_converging(self) -> bool:
        errors = [r.error for r in self.rows]
        return all(b < a for a, b in zip(errors, errors[1:]))

    def render(self) -> str:
        lines = [f"convergence study: {self.name} ({self.norm} norm)"]
        for row in self.rows:
            order = "  --" if row.order is None else f"{row.order:4.2f}"
            lines.append(
                f"  level {row.level:2d}: error {row.error:.4e}  "
                f"order {order}  [{row.wall_seconds:.2f}s]"
            )
        return "\n".join(lines)


def single_grid_study(
    problem: AdvectionDiffusionProblem,
    levels: Sequence[int],
    tol: float = 1.0e-7,
    root: int = 2,
    norm: str = "max",
    scheme: str = "upwind",
) -> ConvergenceStudy:
    """Refine isotropic grids ``(l, l)`` against the exact solution."""
    if problem.exact is None:
        raise ValueError(f"problem {problem.name!r} has no exact solution")
    study = ConvergenceStudy(f"single grid, {scheme}", norm)
    for level in levels:
        grid = Grid(root, level, level)
        result = subsolve(problem, grid, tol, scheme=scheme)
        xx, yy = grid.meshgrid()
        exact = problem.exact(xx, yy, problem.t_end)
        study.add(
            level, error_norms(result.solution, exact)[norm], result.wall_seconds
        )
    return study


def combination_study(
    problem: AdvectionDiffusionProblem,
    levels: Sequence[int],
    tol: float = 1.0e-7,
    root: int = 2,
    norm: str = "max",
) -> ConvergenceStudy:
    """Refine the combination-technique solution against the exact one."""
    if problem.exact is None:
        raise ValueError(f"problem {problem.name!r} has no exact solution")
    study = ConvergenceStudy("combination technique", norm)
    for level in levels:
        app = SequentialApplication(root=root, level=level, tol=tol, problem=problem)
        result = app.run()
        xx, yy = result.target_grid.meshgrid()
        exact = problem.exact(xx, yy, problem.t_end)
        study.add(
            level, error_norms(result.combined, exact)[norm], result.total_seconds
        )
    return study


def discrete_mass(values: np.ndarray, grid: Grid) -> float:
    """Trapezoidal mass of a nodal field (conservation diagnostics)."""
    if values.shape != grid.shape:
        raise ValueError(f"field shape {values.shape} does not match {grid}")
    wx = np.ones(grid.nx + 1)
    wx[0] = wx[-1] = 0.5
    wy = np.ones(grid.ny + 1)
    wy[0] = wy[-1] = 0.5
    return float((wx[:, None] * wy[None, :] * values).sum() * grid.hx * grid.hy)
