"""Unified run tracing: one structured timeline across every layer.

The restructuring the paper describes makes the run's coordination
structure explicit — master, workers-pool, rendezvous — but executing
that structure is not the same as *seeing* it.  This package records a
single chronological timeline of what every component did when:

* :mod:`recorder` — :class:`TraceRecorder` (injectable monotonic clock,
  typed :class:`TraceEvent` records, spans) and the low-overhead global
  hook (:func:`emit`, :func:`trace_span`) the shared pool and the
  MANIFOLD runtime report through;
* :mod:`export` — JSONL round-trip and the Chrome ``chrome://tracing``
  format;
* :mod:`analysis` — :class:`TraceAnalysis`: per-worker utilization,
  critical path, queue-wait vs compute breakdown and recovery overhead.

Entry points: ``repro run-parallel --trace out.jsonl`` records a run;
``repro analyze-trace out.jsonl`` reports on it.  See
``docs/observability.md``.
"""

from .analysis import JobSpan, SpanNestingError, TraceAnalysis
from .export import read_jsonl, write_chrome_trace, write_jsonl
from .recorder import (
    EVENT_KINDS,
    TraceEvent,
    TraceRecorder,
    current_recorder,
    emit,
    install_recorder,
    recording,
    trace_span,
    uninstall_recorder,
)

__all__ = [
    "EVENT_KINDS",
    "JobSpan",
    "SpanNestingError",
    "TraceAnalysis",
    "TraceEvent",
    "TraceRecorder",
    "current_recorder",
    "emit",
    "install_recorder",
    "read_jsonl",
    "recording",
    "trace_span",
    "uninstall_recorder",
    "write_chrome_trace",
    "write_jsonl",
]
