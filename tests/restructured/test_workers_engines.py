"""Worker wrappers, job specs and compute engines."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.restructured.worker import (
    InlineEngine,
    ProcessPoolEngine,
    SubsolveJobSpec,
    SubsolvePayload,
    execute_job,
    make_subsolve_worker,
)


def make_spec(**overrides) -> SubsolveJobSpec:
    base = dict(
        problem_name="rotating-cone",
        root=2,
        l=1,
        m=1,
        tol=1.0e-3,
        t_end=0.25,
    )
    base.update(overrides)
    return SubsolveJobSpec(**base)


class TestJobSpec:
    def test_spec_is_picklable(self):
        spec = make_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_grid_property(self):
        spec = make_spec(l=2, m=3)
        assert (spec.grid.l, spec.grid.m) == (2, 3)
        assert spec.grid.root == 2

    def test_problem_kwargs_roundtrip(self):
        spec = make_spec(problem_kwargs=(("diffusion", 0.01),))
        assert spec.kwargs() == {"diffusion": 0.01}


class TestExecuteJob:
    def test_returns_payload_with_solution(self):
        payload = execute_job(make_spec())
        assert isinstance(payload, SubsolvePayload)
        assert payload.solution.shape == make_spec().grid.shape
        assert payload.steps_accepted > 0
        assert payload.solves >= 2 * payload.steps_accepted
        assert payload.wall_seconds > 0

    def test_deterministic(self):
        a = execute_job(make_spec())
        b = execute_job(make_spec())
        assert np.array_equal(a.solution, b.solution)

    def test_problem_kwargs_affect_result(self):
        a = execute_job(make_spec())
        b = execute_job(make_spec(problem_kwargs=(("diffusion", 0.05),)))
        assert not np.array_equal(a.solution, b.solution)

    def test_payload_is_picklable(self):
        payload = execute_job(make_spec())
        clone = pickle.loads(pickle.dumps(payload))
        assert np.array_equal(clone.solution, payload.solution)


class TestEngines:
    def test_inline_engine_matches_direct_call(self):
        engine = InlineEngine()
        assert np.array_equal(
            engine.compute(make_spec()).solution, execute_job(make_spec()).solution
        )

    def test_process_pool_engine_matches_direct_call(self):
        with ProcessPoolEngine(processes=2) as engine:
            payload = engine.compute(make_spec())
        assert np.array_equal(payload.solution, execute_job(make_spec()).solution)

    def test_process_pool_engine_close_idempotent(self):
        engine = ProcessPoolEngine(processes=1)
        engine.close()
        engine.close()

    def test_worker_definition_uses_engine(self, runtime):
        from repro.manifold import Event, Stream
        from repro.protocol import WorkerJob

        engine = InlineEngine()
        defn = make_subsolve_worker(engine)
        worker = runtime.create(defn, Event.local("death_worker"))
        feeder = runtime.create(
            __import__("repro.manifold", fromlist=["AtomicDefinition"]).AtomicDefinition(
                "f", lambda p: None
            )
        )
        collector = runtime.create(
            __import__("repro.manifold", fromlist=["AtomicDefinition"]).AtomicDefinition(
                "c", lambda p: None
            )
        )
        Stream().connect(feeder.output, worker.input)
        Stream().connect(worker.output, collector.input)
        worker.activate()
        feeder.output.write(WorkerJob((1, 1), make_spec()))
        result = collector.input.read(timeout=30)
        assert result.job_id == (1, 1)
        assert isinstance(result.payload, SubsolvePayload)
