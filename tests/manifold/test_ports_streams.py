"""Ports and streams: wiring, FIFO merging, BK/KK dismantling."""

from __future__ import annotations

import threading
import time

import pytest

from repro.manifold import (
    AtomicDefinition,
    PortError,
    Runtime,
    Stream,
    StreamError,
    StreamType,
)

IDLE_BODY = AtomicDefinition("idle", lambda proc: proc.read())


@pytest.fixture()
def pair(runtime: Runtime):
    """Two inert processes (ports only; bodies block on read)."""
    a = runtime.create(IDLE_BODY)
    b = runtime.create(IDLE_BODY)
    return a, b


class TestStreamWiring:
    def test_connect_attaches_both_ends(self, pair):
        a, b = pair
        stream = Stream().connect(a.output, b.input)
        assert stream in a.output.attached_streams()
        assert stream in b.input.attached_streams()

    def test_source_must_be_output_port(self, pair):
        a, b = pair
        with pytest.raises(StreamError):
            Stream().connect(a.input, b.input)

    def test_sink_must_be_input_port(self, pair):
        a, b = pair
        with pytest.raises(StreamError):
            Stream().connect(a.output, b.output)

    def test_double_connect_rejected(self, pair):
        a, b = pair
        stream = Stream().connect(a.output, b.input)
        with pytest.raises(StreamError):
            stream.connect(a.output, b.input)

    def test_literal_stream_delivers_payload(self, pair):
        _, b = pair
        Stream.literal("hello", b.input)
        assert b.input.try_read() == "hello"

    def test_literal_stream_dies_after_drain(self, pair):
        _, b = pair
        stream = Stream.literal("hello", b.input)
        b.input.try_read()
        assert stream.is_dead()

    def test_literal_requires_input_port(self, pair):
        a, _ = pair
        with pytest.raises(StreamError):
            Stream.literal("x", a.output)


class TestDataFlow:
    def test_write_then_read(self, pair):
        a, b = pair
        Stream().connect(a.output, b.input)
        a.output.write(41)
        assert b.input.read(timeout=1.0) == 41

    def test_fifo_within_stream(self, pair):
        a, b = pair
        Stream().connect(a.output, b.input)
        for i in range(5):
            a.output.write(i)
        assert [b.input.read(timeout=1.0) for _ in range(5)] == list(range(5))

    def test_merge_across_streams_by_global_order(self, runtime):
        a = runtime.create(IDLE_BODY)
        c = runtime.create(IDLE_BODY)
        b = runtime.create(IDLE_BODY)
        Stream().connect(a.output, b.input)
        Stream().connect(c.output, b.input)
        a.output.write("first")
        c.output.write("second")
        a.output.write("third")
        got = [b.input.read(timeout=1.0) for _ in range(3)]
        assert got == ["first", "second", "third"]

    def test_write_replicates_to_all_streams(self, runtime):
        a = runtime.create(IDLE_BODY)
        b = runtime.create(IDLE_BODY)
        c = runtime.create(IDLE_BODY)
        Stream().connect(a.output, b.input)
        Stream().connect(a.output, c.input)
        a.output.write("fan")
        assert b.input.read(timeout=1.0) == "fan"
        assert c.input.read(timeout=1.0) == "fan"

    def test_read_from_output_rejected(self, pair):
        a, _ = pair
        with pytest.raises(PortError):
            a.output.read(timeout=0.01)

    def test_write_to_input_rejected(self, pair):
        a, _ = pair
        with pytest.raises(PortError):
            a.input.write(1)

    def test_read_blocks_until_unit_arrives(self, pair):
        a, b = pair
        Stream().connect(a.output, b.input)

        def writer():
            time.sleep(0.03)
            a.output.write("late")

        threading.Thread(target=writer).start()
        assert b.input.read(timeout=2.0) == "late"

    def test_write_blocks_until_stream_attached(self, pair):
        a, b = pair

        def connector():
            time.sleep(0.03)
            Stream().connect(a.output, b.input)

        threading.Thread(target=connector).start()
        a.output.write("waited", timeout=2.0)
        assert b.input.read(timeout=1.0) == "waited"

    def test_read_timeout_raises(self, pair):
        _, b = pair
        with pytest.raises(PortError):
            b.input.read(timeout=0.02)

    def test_write_timeout_without_stream_raises(self, pair):
        a, _ = pair
        with pytest.raises(PortError):
            a.output.write(1, timeout=0.02)

    def test_try_read_returns_none_when_empty(self, pair):
        _, b = pair
        assert b.input.try_read() is None

    def test_pending_counts_units(self, pair):
        a, b = pair
        Stream().connect(a.output, b.input)
        a.output.write(1)
        a.output.write(2)
        assert b.input.pending() == 2

    def test_interrupt_unblocks_reader(self, pair):
        _, b = pair
        error: list[Exception] = []

        def reader():
            try:
                b.input.read(timeout=5.0)
            except PortError as exc:
                error.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.03)
        b.input.interrupt()
        thread.join(timeout=2.0)
        assert error

    def test_unknown_port_name_rejected(self, pair):
        a, _ = pair
        with pytest.raises(PortError):
            a.port("nonexistent")


class TestDismantling:
    def test_default_stream_type_is_bk(self):
        assert Stream().type is StreamType.BK

    def test_bk_breaks_source_keeps_sink(self, pair):
        a, b = pair
        stream = Stream(StreamType.BK).connect(a.output, b.input)
        a.output.write("in flight")
        stream.dismantle()
        assert stream.source_broken and not stream.sink_broken
        # in-flight unit still deliverable
        assert b.input.read(timeout=1.0) == "in flight"

    def test_bk_source_rejects_writes_after_dismantle(self, pair):
        a, b = pair
        stream = Stream(StreamType.BK).connect(a.output, b.input)
        stream.dismantle()
        assert not stream.accepts_input()
        with pytest.raises(PortError):
            a.output.write("too late", timeout=0.02)

    def test_bk_drained_stream_is_dead(self, pair):
        a, b = pair
        stream = Stream(StreamType.BK).connect(a.output, b.input)
        stream.dismantle()
        assert stream.is_dead()

    def test_kk_survives_dismantle(self, pair):
        a, b = pair
        stream = Stream(StreamType.KK).connect(a.output, b.input)
        stream.dismantle()
        a.output.write("still flows")
        assert b.input.read(timeout=1.0) == "still flows"

    def test_bb_discards_in_flight_units(self, pair):
        a, b = pair
        stream = Stream(StreamType.BB).connect(a.output, b.input)
        a.output.write("lost")
        stream.dismantle()
        assert stream.is_dead()
        assert b.input.try_read() is None

    def test_kb_breaks_sink_only(self, pair):
        a, b = pair
        stream = Stream(StreamType.KB).connect(a.output, b.input)
        stream.dismantle()
        assert stream.sink_broken and not stream.source_broken
        assert stream not in b.input.attached_streams()

    def test_break_source_detaches_from_producer(self, pair):
        a, b = pair
        stream = Stream().connect(a.output, b.input)
        stream.break_source()
        assert stream not in a.output.attached_streams()

    def test_push_into_sink_broken_stream_raises(self, pair):
        a, b = pair
        stream = Stream().connect(a.output, b.input)
        stream.break_sink()
        from repro.manifold.units import Unit

        with pytest.raises(StreamError):
            stream.push(Unit("x"))

    def test_dead_streams_collected_from_port(self, pair):
        a, b = pair
        stream = Stream().connect(a.output, b.input)
        a.output.write("only one")
        stream.break_source()
        assert b.input.read(timeout=1.0) == "only one"
        assert b.input.try_read() is None  # triggers collection
        assert stream not in b.input.attached_streams()

    def test_dismantle_is_idempotent(self, pair):
        a, b = pair
        stream = Stream().connect(a.output, b.input)
        stream.dismantle()
        stream.dismantle()
        assert stream.source_broken

    def test_stream_type_flags(self):
        assert StreamType.BK.breaks_source and not StreamType.BK.breaks_sink
        assert StreamType.KK.breaks_source is False and StreamType.KK.breaks_sink is False
        assert StreamType.BB.breaks_source and StreamType.BB.breaks_sink
        assert not StreamType.KB.breaks_source and StreamType.KB.breaks_sink
