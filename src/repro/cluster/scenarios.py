"""Named experiment scenarios: the paper's configuration and its ablations.

Benchmarks, the CLI and the examples all sweep the same design choices;
this module gives each configuration a name and a single place to live:

* ``paper``            — the §6/§7 setup: 32 heterogeneous hosts, noise,
  one worker per perpetual task instance, master passes all data;
* ``dedicated``        — noise off (the machines the authors wished for);
* ``homogeneous``      — 32 identical 1200 MHz hosts;
* ``no-perpetual``     — every worker forks a fresh task instance;
* ``io-workers``       — the §4.1 alternative (master stops passing data);
* ``no-initial-data``  — workers rebuild their grid data locally;
* ``one-task``         — every worker bundled into a single task instance
  on one (single-CPU) machine: the ``{load n}`` shared configuration;
* ``chaos-crash``      — the paper setup under a seeded fault plan that
  crashes a deterministic ~15% of first job attempts (the recovery cost
  the paper's protocol cannot pay — it has no recovery story);
* ``chaos-slow-host``  — a deterministic ~20% of jobs land on hosts
  running 4x slow (the multi-user reality of §6, as injected faults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.resilience import FaultPlan

from .host import Host, paper_cluster, uniform_cluster
from .noise import MultiUserNoise
from .simulator import SimulationParams

__all__ = ["Scenario", "SCENARIOS", "get_scenario", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """One named simulator configuration."""

    name: str
    description: str
    make_params: Callable[[], SimulationParams]
    make_cluster: Callable[[], list[Host]] = paper_cluster

    def params(self) -> SimulationParams:
        return self.make_params()

    def cluster(self) -> list[Host]:
        return self.make_cluster()


def _one_task_params() -> SimulationParams:
    # large enough for any level the harness sweeps (w = 2*15 + 1)
    return SimulationParams(workers_per_task=64)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "paper",
            "the paper's configuration (heterogeneous, noisy, perpetual)",
            SimulationParams,
        ),
        Scenario(
            "dedicated",
            "dedicated machines: multi-user noise removed",
            lambda: SimulationParams(noise=MultiUserNoise.quiet()),
        ),
        Scenario(
            "homogeneous",
            "a homogeneous cluster of 32 x 1200 MHz machines",
            SimulationParams,
            lambda: uniform_cluster(32),
        ),
        Scenario(
            "no-perpetual",
            "task instances die when emptied: no reuse",
            lambda: SimulationParams(perpetual=False),
        ),
        Scenario(
            "io-workers",
            "the §4.1 I/O-worker alternative the authors did not try",
            lambda: SimulationParams(io_workers=True),
        ),
        Scenario(
            "no-initial-data",
            "workers rebuild initial grid data locally (no shipping)",
            lambda: SimulationParams(ship_initial_data=False),
        ),
        Scenario(
            "one-task",
            "all workers in one task instance on one machine ({load n})",
            _one_task_params,
        ),
        Scenario(
            "chaos-crash",
            "paper setup + seeded worker crashes on ~15% of first attempts",
            lambda: SimulationParams(
                fault_plan=FaultPlan.parse("crash@*:rate=0.15,seed=7")
            ),
        ),
        Scenario(
            "chaos-slow-host",
            "paper setup + ~20% of jobs on hosts running 4x slow",
            lambda: SimulationParams(
                fault_plan=FaultPlan.parse("slow@*:factor=4,rate=0.2,seed=11")
            ),
        ),
    )
}


def scenario_names() -> list[str]:
    return list(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
