"""E1 — Table 1: st, ct, m, su for both tolerances, levels 0..15.

Regenerates the paper's entire Table 1 on the simulated 32-machine
heterogeneous cluster with per-grid work from the calibrated cost
model, and checks the qualitative claims of §7 hold for our numbers:

* no speedup below ~level 10, clear speedup above;
* ``st`` grows geometrically (~2.4x per level in the paper);
* speedup always lags the weighted machine count;
* the 1e-4 runs cost roughly twice their 1e-3 counterparts.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to
see the regenerated table next to the paper's numbers.
"""

from __future__ import annotations

import pytest

from repro.harness import render_table1
from repro.harness.table1 import PAPER_TABLE1


@pytest.mark.benchmark(group="table1")
def test_table1_level15_cell(benchmark, experiment):
    """Benchmark the most expensive cell: level 15, five-run average."""
    row = benchmark.pedantic(
        lambda: experiment.run_level(15, 1.0e-3), rounds=3, iterations=1
    )
    assert row.su > 1.0


@pytest.mark.benchmark(group="table1")
def test_table1_full_sweep(benchmark, cost_model, table1_rows):
    """Regenerate and print the full table; benchmark one 1e-4 sweep
    column to keep the timed unit stable."""
    from repro.harness import Table1Experiment

    exp = Table1Experiment(cost_model, runs=5, seed=20040101)
    benchmark.pedantic(
        lambda: exp.run_all(levels=[0, 8, 15], tols=(1.0e-4,)),
        rounds=2,
        iterations=1,
    )

    rows = table1_rows
    print()
    print(render_table1(rows))

    by_key = {(r.tol, r.level): r for r in rows}
    # --- shape assertions against the paper -------------------------
    for tol in (1.0e-3, 1.0e-4):
        sts = [by_key[(tol, lvl)].st for lvl in range(16)]
        assert all(b > a for a, b in zip(sts, sts[1:])), "st must grow"
        growth = sts[15] / sts[12]
        assert 6 < growth < 30, f"st growth {growth} out of the geometric band"
        # break-even in the paper's neighbourhood
        crossover = next(lvl for lvl in range(16) if by_key[(tol, lvl)].su >= 1.0)
        assert 8 <= crossover <= 13
        # the headline factors
        assert 3.0 < by_key[(tol, 15)].su < 16.0
        assert by_key[(tol, 15)].m > 5.0
        # su lags m everywhere (§7)
        assert all(by_key[(tol, lvl)].su < by_key[(tol, lvl)].m for lvl in range(16))
    # 1e-4 costs more than 1e-3 at every level
    assert all(
        by_key[(1.0e-4, lvl)].st > by_key[(1.0e-3, lvl)].st for lvl in range(16)
    )


@pytest.mark.benchmark(group="table1")
def test_table1_paper_scale_mode(benchmark, cost_model):
    """One global constant closes the remaining gap to the paper.

    ``reference_scale = 3`` converts this machine's solver seconds into
    2003-Athlon-C seconds (one number for the whole table).  With it,
    the regenerated rows track the paper's closely: the crossover lands
    at level 10-11, st(9..10) within ~15%, m(15) within ~1 machine.
    """
    import dataclasses

    from repro.harness import Table1Experiment

    scaled = dataclasses.replace(cost_model, reference_scale=3.0)
    exp = Table1Experiment(scaled, runs=3, seed=1)

    rows = benchmark.pedantic(
        lambda: {lvl: exp.run_level(lvl, 1.0e-3) for lvl in (9, 10, 11, 15)},
        rounds=2,
        iterations=1,
    )
    print()
    for lvl, row in rows.items():
        paper = PAPER_TABLE1.get((1.0e-3, lvl))
        print(f"  level {lvl:2d}: st={row.st:8.1f} (paper {paper[0]:8.1f})  "
              f"ct={row.ct:6.1f} ({paper[1]:6.1f})  su={row.su:4.1f} "
              f"({paper[3]:4.1f})  m={row.m:4.1f} ({paper[2]:4.1f})")
    assert 0.7 < rows[9].st / 10.28 < 1.4
    assert 0.7 < rows[10].st / 24.14 < 1.4
    assert rows[10].su < 1.3 and rows[11].su > 1.0  # crossover at 10-11
    assert abs(rows[15].m - 12.2) < 2.5


@pytest.mark.benchmark(group="table1")
def test_table1_against_paper_magnitudes(benchmark, table1_rows):
    """Where the paper reports a row, our regenerated value should land
    within an order of magnitude for st and within ~5x for ct — we run
    a different decade of hardware/software, only the shape is claimed."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_key = {(r.tol, r.level): r for r in table1_rows}
    for (tol, level), (st_p, ct_p, m_p, su_p) in PAPER_TABLE1.items():
        row = by_key[(tol, level)]
        if st_p > 1.0:  # below the measurement floor the ratio is meaningless
            assert 0.1 < row.st / st_p < 10.0, (tol, level, row.st, st_p)
        assert 0.2 < row.ct / ct_p < 5.0, (tol, level, row.ct, ct_p)
        # ratios right at the break-even point are noise; compare only
        # where the paper reports a decisive win
        if su_p >= 2.0:
            assert 0.33 < row.su / su_p < 3.0, (tol, level, row.su, su_p)
