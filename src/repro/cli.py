"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the workflow of the paper:

* ``run-sequential`` — the original program (``SeqSourceCode.c``);
* ``run-concurrent`` — the restructured program (``mainprog.m``),
  optionally with real multiprocessing workers;
* ``run-parallel`` — the real multiprocessing fan-out with the warm
  execution layer (persistent pool, operator cache, cost-ordered
  dispatch) and its observability report;
* ``calibrate`` — measure the real solver and fit the cost model;
* ``table1`` — regenerate Table 1 on the simulated cluster;
* ``figures`` — regenerate Figures 1-5;
* ``trace`` — print one simulated run's §6 chronological output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Modernizing Existing Software: A Case "
        "Study' (SC 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_problem_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--root", type=int, default=2,
                       help="refinement level of the coarsest grid (paper: 2)")
        p.add_argument("--level", type=int, default=3,
                       help="additional refinement above the root")
        p.add_argument("--tol", type=float, default=1.0e-3,
                       help="the integrator tolerance le_tol")
        p.add_argument("--problem", default="rotating-cone",
                       help="registered problem name")

    p_seq = sub.add_parser("run-sequential", help="run the original program")
    add_problem_args(p_seq)

    p_conc = sub.add_parser("run-concurrent", help="run the restructured program")
    add_problem_args(p_conc)
    p_conc.add_argument(
        "--engine", choices=("threads", "processes", "task-instances"),
        default="threads",
        help="where worker computations execute: in the worker threads, "
        "in a process pool, or in per-worker OS task instances with "
        "perpetual reuse (the MLINK semantics, literally)",
    )
    p_conc.add_argument("--pool-per-diagonal", action="store_true",
                        help="one workers-pool per grid diagonal (two pools)")
    p_conc.add_argument("--verify", action="store_true",
                        help="also run sequentially and compare bitwise")

    p_par = sub.add_parser(
        "run-parallel",
        help="run the real multiprocessing fan-out on the warm path",
    )
    add_problem_args(p_par)
    p_par.add_argument("--processes", type=int, default=None,
                       help="pool size (default: min(grids, CPUs))")
    p_par.add_argument("--dispatch", choices=("longest-first", "static"),
                       default="longest-first",
                       help="job ordering: cost-model LPT or the seed's "
                       "static pool.map chunking")
    p_par.add_argument("--cold", action="store_true",
                       help="seed behaviour: throwaway pool, no operator "
                       "or factorization reuse")
    p_par.add_argument("--repeat", type=int, default=1,
                       help="repeat the run to show the warm-up trajectory")
    p_par.add_argument("--model", default=None,
                       help="calibration JSON for dispatch ordering "
                       "(default: structural proxy)")
    p_par.add_argument("--verify", action="store_true",
                       help="also run sequentially and compare bitwise")
    p_par.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject faults and run fault-tolerant: e.g. "
                       "'crash@1,2' or 'slow@*:factor=3,rate=0.2' "
                       "(see docs/resilience.md for the grammar)")
    p_par.add_argument("--fault-seed", type=int, default=0,
                       help="seed for rate-sampled fault rules")
    p_par.add_argument("--retry", type=int, default=None, metavar="N",
                       help="fault-tolerant execution with N attempts "
                       "per job (default policy: 3)")
    p_par.add_argument("--deadline-factor", type=float, default=None,
                       metavar="X",
                       help="fault-tolerant execution; declare a job "
                       "hung after X times its cost-model-predicted "
                       "seconds (default policy: 8.0)")
    p_par.add_argument("--deadline-seconds", type=float, default=None,
                       help="flat per-job deadline when no cost model "
                       "is given (default policy: 60s)")
    p_par.add_argument("--trace", default=None, metavar="OUT.jsonl",
                       help="record the run's structured event timeline "
                       "and write it as JSONL (inspect with analyze-trace)")
    p_par.add_argument("--data-plane", choices=("pickle", "shm"),
                       default="pickle", dest="data_plane",
                       help="result transport: pickle through the pool's "
                       "result pipe (seed behaviour) or zero-copy "
                       "shared-memory blocks with streaming combination")
    p_par.add_argument("--engine", choices=("pool", "task", "socket"),
                       default="pool",
                       help="execution substrate: the fork pool, "
                       "per-worker OS task instances, or worker daemons "
                       "over real TCP (see docs/distributed.md)")
    p_par.add_argument("--hosts", default=None, metavar="SPEC",
                       help="socket-engine hosts: 'localhost:N' spawns N "
                       "loopback daemons; 'tcp://host:port' dials a "
                       "running 'repro worker-daemon' (comma-separated)")
    p_par.add_argument("--split", default="off", metavar="K",
                       help="intra-grid decomposition of the critical-path "
                       "grids: 'off', 'auto' (cost-model decision), or an "
                       "integer strip count applied to the largest grids "
                       "(see docs/intra_grid.md)")

    p_wd = sub.add_parser(
        "worker-daemon",
        help="host task instances behind a TCP port for --engine socket",
    )
    p_wd.add_argument("--host", default="127.0.0.1",
                      help="bind address (default: loopback)")
    p_wd.add_argument("--port", type=int, default=0,
                      help="listen port (0 = ephemeral, announced on stdout)")
    p_wd.add_argument("--capacity", type=int, default=1,
                      help="concurrent jobs, each in its own OS task "
                      "instance (the MLINK {load N})")
    p_wd.add_argument("--heartbeat-interval", type=float, default=0.5,
                      dest="heartbeat_interval",
                      help="seconds between heartbeat frames")
    p_wd.add_argument("--drain-timeout", type=float, default=5.0,
                      dest="drain_timeout",
                      help="seconds granted to in-flight jobs to finish "
                      "and ship their results on a clean stop")
    p_wd.add_argument("--no-perpetual", action="store_true",
                      help="task instances exit after one job instead of "
                      "welcoming the next worker")

    p_val = sub.add_parser(
        "validate-socket",
        help="run one problem through the cluster simulator and the "
        "socket engine; report both overhead decompositions",
    )
    p_val.add_argument("--root", type=int, default=2)
    p_val.add_argument("--level", type=int, default=5)
    p_val.add_argument("--tol", type=float, default=1.0e-3)
    p_val.add_argument("--problem", default="rotating-cone")
    p_val.add_argument("--processes", type=int, default=2,
                       help="local worker daemons to spawn")
    p_val.add_argument("--seed", type=int, default=20040101)

    p_antr = sub.add_parser(
        "analyze-trace",
        help="analyze a JSONL run trace written by run-parallel --trace",
    )
    p_antr.add_argument("path", help="the JSONL trace file")
    p_antr.add_argument("--chrome", default=None, metavar="OUT.json",
                        help="also convert to Chrome tracing JSON "
                        "(open in chrome://tracing or Perfetto)")

    p_cal = sub.add_parser("calibrate", help="fit the cost model on real solves")
    p_cal.add_argument("--levels", type=int, nargs="+", default=[4, 5, 6])
    p_cal.add_argument("--tols", type=float, nargs="+",
                       default=[1.0e-3, 1.0e-4])
    p_cal.add_argument("--problem", default="rotating-cone")
    p_cal.add_argument("--root", type=int, default=2)
    p_cal.add_argument("--output", default="calibration.json",
                       help="where to write the fitted model")
    p_cal.add_argument("--repeats", type=int, default=2,
                       help="solves per grid; the fastest is kept, which "
                       "shields the fit from background load (default 2)")

    def add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default=None,
                       help="calibration JSON (default: calibrate in-process)")
        p.add_argument("--runs", type=int, default=5,
                       help="runs to average per cell (paper: 5)")
        p.add_argument("--seed", type=int, default=20040101)

    p_tab = sub.add_parser("table1", help="regenerate Table 1")
    add_model_args(p_tab)
    p_tab.add_argument("--levels", type=int, nargs="+",
                       default=list(range(16)))
    p_tab.add_argument("--tols", type=float, nargs="+",
                       default=[1.0e-3, 1.0e-4])

    p_fig = sub.add_parser("figures", help="regenerate Figures 1-5")
    add_model_args(p_fig)
    p_fig.add_argument("--max-level", type=int, default=15)

    p_trace = sub.add_parser("trace", help="print one simulated run's output")
    add_model_args(p_trace)
    p_trace.add_argument("--level", type=int, default=2)
    p_trace.add_argument("--tol", type=float, default=1.0e-3)

    p_exp = sub.add_parser(
        "experiments", help="list the experiment index, or run one quickly"
    )
    add_model_args(p_exp)
    p_exp.add_argument("--run", default=None, metavar="ID",
                       help="experiment id (e.g. E1) for a quick summary")

    p_abl = sub.add_parser(
        "ablations", help="compare the named design-choice scenarios"
    )
    add_model_args(p_abl)
    p_abl.add_argument("--level", type=int, default=15)
    p_abl.add_argument("--tol", type=float, default=1.0e-3)
    p_abl.add_argument("--scenarios", nargs="+", default=None,
                       help="subset of scenario names (default: all)")

    return parser


def _load_or_calibrate_model(args) -> "CostModel":
    from repro.perf import CostModel, measure_costs

    if getattr(args, "model", None):
        return CostModel.from_json(args.model)
    print("calibrating cost model (levels 4-6)...", file=sys.stderr)
    records = measure_costs(
        "rotating-cone", root=2, levels=[4, 5, 6], tols=[1.0e-3, 1.0e-4],
        repeats=2,
    )
    return CostModel.fit(records, root=2)


def cmd_run_sequential(args) -> int:
    from repro.sparsegrid import SequentialApplication
    from repro.sparsegrid.registry import make_problem

    app = SequentialApplication(
        root=args.root, level=args.level, tol=args.tol,
        problem=make_problem(args.problem),
    )
    result = app.run()
    print(f"grids: {result.n_grids}, total {result.total_seconds:.3f}s "
          f"(subsolve {result.subsolve_seconds:.3f}s, "
          f"prolongation {result.prolongation_seconds:.3f}s)")
    print(f"combined solution on {result.target_grid}: "
          f"min {result.combined.min():.4f}, max {result.combined.max():.4f}")
    return 0


def cmd_run_concurrent(args) -> int:
    from repro.restructured import (
        ProcessPoolEngine,
        TaskInstanceEngine,
        run_concurrent,
    )
    from repro.restructured.mainprog import DEFAULT_MLINK
    from repro.sparsegrid import SequentialApplication
    from repro.sparsegrid.registry import make_problem

    engine = None
    if args.engine == "processes":
        engine = ProcessPoolEngine()
    elif args.engine == "task-instances":
        engine = TaskInstanceEngine()
    result, tasks = run_concurrent(
        root=args.root, level=args.level, tol=args.tol,
        problem_name=args.problem,
        engine=engine,
        pool_per_diagonal=args.pool_per_diagonal,
        link_spec_text=DEFAULT_MLINK,
    )
    print(f"workers: {result.n_workers}, total {result.total_seconds:.3f}s "
          f"(pool {result.pool_seconds:.3f}s)")
    if tasks is not None:
        print(f"task instances forked: {len(tasks.instances())}, "
              f"peak alive {tasks.peak_instances()}")
    if isinstance(engine, ProcessPoolEngine):
        hits = sum(
            1 for p in result.payloads.values() if p.operator_cache_hit
        )
        print(f"process pool: {'warm' if engine.warm_start else 'cold'} "
              f"start, operator cache {hits}/{len(result.payloads)} hits")
        engine.close()
    if isinstance(engine, TaskInstanceEngine):
        print(f"OS task instances: {engine.stats.spawned} spawned, "
              f"{engine.stats.reused} worker(s) reused one")
        engine.close()
    if args.verify:
        seq = SequentialApplication(
            root=args.root, level=args.level, tol=args.tol,
            problem=make_problem(args.problem),
        ).run()
        identical = np.array_equal(seq.combined, result.combined)
        print(f"bitwise identical to sequential: {identical}")
        return 0 if identical else 1
    return 0


def cmd_run_parallel(args) -> int:
    from repro.perf import CostModel, warm_path_report
    from repro.restructured import run_multiprocessing
    from repro.sparsegrid import SequentialApplication
    from repro.sparsegrid.registry import make_problem

    model = CostModel.from_json(args.model) if args.model else None
    retry = deadline = None
    if args.retry is not None:
        from repro.resilience import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retry)
    if args.deadline_factor is not None or args.deadline_seconds is not None:
        from repro.resilience import DeadlinePolicy

        deadline = DeadlinePolicy(
            factor=args.deadline_factor
            if args.deadline_factor is not None
            else DeadlinePolicy.factor,
            default_seconds=args.deadline_seconds
            if args.deadline_seconds is not None
            else DeadlinePolicy.default_seconds,
        )
    split = args.split
    if split not in ("off", "auto"):
        try:
            split = int(split)
        except ValueError:
            raise SystemExit(
                f"--split must be 'off', 'auto' or an integer, got {split!r}"
            )
    result = None
    recorder = None
    for run in range(max(1, args.repeat)):
        if args.trace:
            # one recorder per run: the written trace (and the report's
            # trace metrics) describe the final run, not a mixture
            from repro.trace import TraceRecorder

            recorder = TraceRecorder()
        result = run_multiprocessing(
            root=args.root, level=args.level, tol=args.tol,
            problem_name=args.problem,
            processes=args.processes,
            dispatch=args.dispatch,
            cost_model=model,
            warm_pool=not args.cold,
            operator_cache=not args.cold,
            retry=retry,
            deadline=deadline,
            faults=args.faults,
            fault_seed=args.fault_seed,
            trace=recorder,
            data_plane=args.data_plane,
            engine=args.engine,
            hosts=args.hosts,
            split=split,
        )
        label = "cold" if args.cold else ("warm" if result.warm_pool else "cool")
        print(f"run {run + 1} ({label}): total {result.total_seconds:.3f}s "
              f"(pool {result.pool_seconds:.3f}s) on {result.processes} "
              f"process(es), {result.n_workers} grids")
    print()
    for line in warm_path_report(result, trace=recorder).lines():
        print(line)
    if result.faults:
        for line in result.fault_report.lines():
            print(line)
    if args.trace:
        from repro.trace import write_jsonl

        count = write_jsonl(recorder.events(), args.trace)
        print(f"trace: {count} events written to {args.trace}")
    if args.verify:
        seq = SequentialApplication(
            root=args.root, level=args.level, tol=args.tol,
            problem=make_problem(args.problem),
        ).run()
        if result.split_grids:
            # split solves are within a stated tolerance of the unsplit
            # oracle, not bitwise (see docs/intra_grid.md)
            from repro.sparsegrid.decompose import split_tolerance

            bound = split_tolerance(args.tol)
            diff = float(np.max(np.abs(seq.combined - result.combined)))
            ok = diff <= bound
            print(f"split verify: max |diff| vs sequential {diff:.3e} "
                  f"(tolerance {bound:.3e}): {'ok' if ok else 'FAIL'}")
            return 0 if ok else 1
        identical = np.array_equal(seq.combined, result.combined)
        print(f"bitwise identical to sequential: {identical}")
        return 0 if identical else 1
    return 0


def cmd_worker_daemon(args) -> int:
    from repro.restructured.netengine import WorkerDaemon

    daemon = WorkerDaemon(
        host=args.host,
        port=args.port,
        capacity=args.capacity,
        perpetual=not args.no_perpetual,
        heartbeat_interval=args.heartbeat_interval,
        drain_timeout=args.drain_timeout,
    )
    daemon.announce()
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        daemon.stop()
    return 0


def cmd_validate_socket(args) -> int:
    from repro.cluster.validation import validate_socket_engine

    report = validate_socket_engine(
        root=args.root,
        level=args.level,
        tol=args.tol,
        problem_name=args.problem,
        processes=args.processes,
        seed=args.seed,
    )
    for line in report.lines():
        print(line)
    return 0 if report.bitwise_identical else 1


def cmd_analyze_trace(args) -> int:
    from repro.trace import TraceAnalysis, read_jsonl, write_chrome_trace

    events = read_jsonl(args.path)
    analysis = TraceAnalysis(events)
    analysis.check_span_nesting()
    for line in analysis.report_lines():
        print(line)
    if args.chrome:
        count = write_chrome_trace(events, args.chrome)
        print(f"chrome trace ({count} records) written to {args.chrome}")
    return 0


def cmd_calibrate(args) -> int:
    from repro.perf import CostModel, measure_costs

    records = measure_costs(
        args.problem, root=args.root, levels=args.levels, tols=args.tols,
        repeats=args.repeats,
    )
    model = CostModel.fit(records, root=args.root)
    model.to_json(args.output)
    print(f"fitted on {len(records)} records: wall R^2 {model.r_squared:.3f}, "
          f"solves R^2 {model.solves_r_squared:.3f}")
    print(f"model written to {args.output}")
    return 0


def cmd_table1(args) -> int:
    from repro.harness import Table1Experiment, render_table1

    model = _load_or_calibrate_model(args)
    experiment = Table1Experiment(model, runs=args.runs, seed=args.seed)
    rows = experiment.run_all(levels=args.levels, tols=tuple(args.tols))
    print(render_table1(rows))
    return 0


def cmd_figures(args) -> int:
    from repro.harness import (
        Table1Experiment,
        figure1_ebb_flow,
        figure_speedup_machines,
        figure_times,
    )

    model = _load_or_calibrate_model(args)
    experiment = Table1Experiment(model, runs=args.runs, seed=args.seed)
    rows = experiment.run_all(
        levels=range(args.max_level + 1), tols=(1.0e-3, 1.0e-4)
    )
    print(figure1_ebb_flow(experiment, level=args.max_level, tol=1.0e-3).rendered)
    for fig in (
        figure_times(rows, 1.0e-3, 2),
        figure_speedup_machines(rows, 1.0e-3, 3),
        figure_times(rows, 1.0e-4, 4),
        figure_speedup_machines(rows, 1.0e-4, 5),
    ):
        print()
        print(fig.rendered)
    return 0


def cmd_trace(args) -> int:
    from repro.harness import Table1Experiment
    from repro.cluster.trace import render_trace

    model = _load_or_calibrate_model(args)
    experiment = Table1Experiment(model, runs=1, seed=args.seed)
    run = experiment.simulate_concurrent_once(
        args.level, args.tol, np.random.default_rng(args.seed)
    )
    print(render_trace(run))
    return 0


def cmd_ablations(args) -> int:
    from repro.cluster.scenarios import get_scenario, scenario_names
    from repro.cluster.simulator import simulate_distributed
    from repro.cluster.trace import machines_timeline, weighted_average_machines
    from repro.harness import render_table

    model = _load_or_calibrate_model(args)
    costs = model.level_costs(args.level, args.tol)
    prol = model.prolongation_seconds(args.level)
    names = args.scenarios or scenario_names()
    rows = []
    for name in names:
        scenario = get_scenario(name)
        run = simulate_distributed(
            [costs], scenario.cluster(), scenario.params(),
            np.random.default_rng(args.seed),
            master_prolongation_ref_seconds=prol,
        )
        timeline = machines_timeline(run)
        rows.append([
            name,
            run.elapsed_seconds,
            run.n_tasks_forked,
            weighted_average_machines(timeline, run.elapsed_seconds),
            scenario.description,
        ])
    print(render_table(
        ["scenario", "ct (s)", "tasks", "m", "description"],
        rows,
        title=f"Scenario ablations, level {args.level}, tol {args.tol:g}",
    ))
    return 0


def cmd_experiments(args) -> int:
    from repro.harness.experiments import get_experiment, render_index

    if args.run is None:
        print(render_index())
        return 0
    experiment = get_experiment(args.run)
    print(f"{experiment.id}: {experiment.paper_artifact} — {experiment.summary}")
    print(f"full regeneration: pytest {experiment.bench_target} --benchmark-only -s")
    if experiment.quick is None:
        print("(no quick summary: this experiment runs real code; use the bench)")
        return 0
    model = _load_or_calibrate_model(args)
    print()
    print(experiment.quick(model))
    return 0


_COMMANDS = {
    "run-sequential": cmd_run_sequential,
    "run-concurrent": cmd_run_concurrent,
    "run-parallel": cmd_run_parallel,
    "worker-daemon": cmd_worker_daemon,
    "validate-socket": cmd_validate_socket,
    "analyze-trace": cmd_analyze_trace,
    "calibrate": cmd_calibrate,
    "table1": cmd_table1,
    "figures": cmd_figures,
    "trace": cmd_trace,
    "ablations": cmd_ablations,
    "experiments": cmd_experiments,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
