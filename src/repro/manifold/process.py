"""Process instances: the workers and coordinators of an IWIM application.

A *process instance* is the unit of activity.  Following the paper:

* **Atomic (worker) processes** perform computation only.  They read
  from their own input ports, write to their own output ports, and raise
  events — they know nothing about who is connected to them.  Atomic
  processes here are plain Python callables run on a dedicated thread.
* **Coordinator processes** (manifolds, :mod:`repro.manifold.manifold`)
  do no computation; they react to event occurrences by rewiring streams
  between other processes' ports.

Both kinds share this module's :class:`ProcessBase` lifecycle: *created*
→ *active* → *terminated* (or *failed*).  On termination the runtime
broadcasts the predefined ``death`` event with the process as source,
which is what the protocol's ``ignore death`` declaration refers to.
"""

from __future__ import annotations

import enum
import itertools
import threading
import traceback
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

from .errors import PortError, ProcessError
from .events import Event, EventOccurrence
from .ports import Port, PortDirection, STANDARD_ERR, STANDARD_IN, STANDARD_OUT
from .units import ProcessReference

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduler import Runtime

__all__ = [
    "ProcessState",
    "ProcessBase",
    "AtomicProcess",
    "AtomicDefinition",
    "DEATH",
]

#: Predefined event broadcast by the runtime when any process dies.
DEATH = Event("death")

_instance_counter = itertools.count()


class ProcessState(enum.Enum):
    CREATED = "created"
    ACTIVE = "active"
    TERMINATED = "terminated"
    FAILED = "failed"

    @property
    def is_final(self) -> bool:
        return self in (ProcessState.TERMINATED, ProcessState.FAILED)


class ProcessBase:
    """Common lifecycle, ports and event-raising for all process kinds."""

    def __init__(
        self,
        runtime: "Runtime",
        name: str,
        *,
        in_ports: Sequence[str] = (STANDARD_IN,),
        out_ports: Sequence[str] = (STANDARD_OUT, STANDARD_ERR),
    ) -> None:
        self.runtime = runtime
        self.instance_id = next(_instance_counter)
        self.name = f"{name}#{self.instance_id}"
        self.definition_name = name
        self._state = ProcessState.CREATED
        self._state_lock = threading.Lock()
        self._terminated_evt = threading.Event()
        self._failure: Optional[BaseException] = None
        #: set by a supervisor when it converts this process's failure
        #: into protocol-visible units; handled failures are not
        #: re-raised by drivers
        self.failure_handled = False
        self.ports: dict[str, Port] = {}
        for pname in in_ports:
            self.ports[pname] = Port(self, pname, PortDirection.IN)
        for pname in out_ports:
            if pname in self.ports:
                raise ProcessError(f"duplicate port name {pname!r} on {name}")
            self.ports[pname] = Port(self, pname, PortDirection.OUT)
        #: task instance this process is bundled into (set by MLINK stage)
        self.task_instance = None

    # ------------------------------------------------------------------
    # ports
    # ------------------------------------------------------------------
    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise PortError(f"{self.name} has no port named {name!r}") from None

    @property
    def input(self) -> Port:
        return self.port(STANDARD_IN)

    @property
    def output(self) -> Port:
        return self.port(STANDARD_OUT)

    @property
    def error(self) -> Port:
        return self.port(STANDARD_ERR)

    def read(self, port: str = STANDARD_IN, timeout: Optional[float] = None) -> object:
        """Read one unit payload from one of this process's input ports."""
        return self.port(port).read(timeout=timeout)

    def write(
        self, payload: object, port: str = STANDARD_OUT, timeout: Optional[float] = None
    ) -> None:
        """Write one unit to one of this process's output ports."""
        self.port(port).write(payload, timeout=timeout)

    def reference(self) -> ProcessReference:
        """The ``&p`` value for this process."""
        return ProcessReference(self)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def raise_event(self, event: Event) -> EventOccurrence:
        """Broadcast ``event`` with this process as source."""
        occurrence = EventOccurrence(event, self)
        self.runtime.broadcast(occurrence)
        return occurrence

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> ProcessState:
        with self._state_lock:
            return self._state

    @property
    def failure(self) -> Optional[BaseException]:
        return self._failure

    def is_terminated(self) -> bool:
        return self._terminated_evt.is_set()

    def activate(self) -> "ProcessBase":
        """Start the process; idempotent activation is an error."""
        with self._state_lock:
            if self._state is not ProcessState.CREATED:
                raise ProcessError(f"{self.name} already activated ({self._state})")
            self._state = ProcessState.ACTIVE
        self.runtime.register_active(self)
        self._start()
        return self

    def _start(self) -> None:
        raise NotImplementedError

    def _finish(self, failure: Optional[BaseException] = None) -> None:
        with self._state_lock:
            if self._state.is_final:
                return
            self._failure = failure
            self._state = (
                ProcessState.FAILED if failure is not None else ProcessState.TERMINATED
            )
        for port in self.ports.values():
            port.interrupt()
        self._terminated_evt.set()
        self.runtime.on_process_death(self)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for the process to reach a final state."""
        return self._terminated_evt.wait(timeout)

    def kill(self) -> None:
        """Forcefully mark the process finished and interrupt its ports.

        The underlying thread unwinds at its next port operation; pure
        computation between port operations cannot be interrupted (the
        same is true of a POSIX thread busy in a C kernel).
        """
        self._finish(failure=None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name} {self.state.value}>"


class AtomicProcess(ProcessBase):
    """A non-compliant computation process wrapped for the runtime.

    ``body`` is any callable taking the process instance as its single
    argument.  It may use :meth:`read`, :meth:`write` and
    :meth:`raise_event`, exactly the surface the paper's "special ANSI C
    interface library" gives the wrapped legacy routines.
    """

    def __init__(
        self,
        runtime: "Runtime",
        name: str,
        body: Callable[["AtomicProcess"], None],
        args: tuple = (),
        kwargs: Optional[Mapping[str, object]] = None,
        *,
        in_ports: Sequence[str] = (STANDARD_IN,),
        out_ports: Sequence[str] = (STANDARD_OUT, STANDARD_ERR),
    ) -> None:
        super().__init__(runtime, name, in_ports=in_ports, out_ports=out_ports)
        self._body = body
        self._args = tuple(args)
        self._kwargs = dict(kwargs or {})
        self._thread: Optional[threading.Thread] = None
        #: last traceback text on failure, for diagnostics
        self.failure_traceback: Optional[str] = None

    @property
    def parameters(self) -> tuple:
        """Positional parameters the instance was created with."""
        return self._args

    def _start(self) -> None:
        self._thread = threading.Thread(
            target=self._thread_main, name=self.name, daemon=True
        )
        self._thread.start()

    def _thread_main(self) -> None:
        try:
            self._body(self, *self._args, **self._kwargs)
        except PortError:
            # Interrupted during shutdown/kill: a clean unwind, not a failure.
            self._finish(None)
        except BaseException as exc:  # noqa: BLE001 - report any worker failure
            self.failure_traceback = traceback.format_exc()
            self._finish(exc)
        else:
            self._finish(None)


class AtomicDefinition:
    """A reusable atomic-process definition (``manifold Worker(event) atomic.``).

    Instantiating a definition yields a fresh, not-yet-activated
    :class:`AtomicProcess`; the positional arguments play the role of
    the manifold parameters (the worker receives its ``death_worker``
    event this way).
    """

    def __init__(
        self,
        name: str,
        body: Callable[..., None],
        *,
        in_ports: Sequence[str] = (STANDARD_IN,),
        out_ports: Sequence[str] = (STANDARD_OUT, STANDARD_ERR),
    ) -> None:
        self.name = name
        self.body = body
        self.in_ports = tuple(in_ports)
        self.out_ports = tuple(out_ports)

    def instantiate(
        self,
        runtime: "Runtime",
        *args: object,
        **kwargs: object,
    ) -> AtomicProcess:
        return AtomicProcess(
            runtime,
            self.name,
            self.body,
            args=args,
            kwargs=kwargs,
            in_ports=self.in_ports,
            out_ports=self.out_ports,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AtomicDefinition({self.name})"
