"""A Python implementation of the MANIFOLD/IWIM coordination model.

This package is the runtime substrate of the reproduction: events and
event memories, ports, typed streams (BK/KK/BB/KB), atomic worker
processes, coordinator state machines (manifolds and manners), built-in
processes, and the MLINK/CONFIG composition and configuration stages.

The public surface is re-exported here so applications can write::

    from repro.manifold import (
        Runtime, Coordinator, Block, AtomicDefinition, Event, StreamType,
    )
"""

from .builtins import Variable, make_printer, make_sink, make_variable, make_void
from .config import ConfigSpec, HostMapper, parse_config
from .errors import (
    ConfigError,
    DeadlockError,
    EventError,
    LinkError,
    ManifoldError,
    PortError,
    ProcessError,
    StateMachineError,
    StreamError,
)
from .events import BEGIN, END, Event, EventMemory, EventOccurrence
from .manifold import Coordinator, Manner, run_application
from .mlink import LinkSpec, SExpr, TaskPattern, parse_braces, parse_mlink
from .ports import Port, PortDirection
from .process import (
    DEATH,
    AtomicDefinition,
    AtomicProcess,
    ProcessBase,
    ProcessState,
)
from .scheduler import Runtime
from .states import Block, HaltBlock, Preempted, StateContext
from .streams import Stream, StreamType
from .task import TaskInstance, TaskManager, TimelinePoint
from .units import ProcessReference, Unit
from .watchdog import StallReport, Watchdog

__all__ = [
    "BEGIN",
    "END",
    "DEATH",
    "AtomicDefinition",
    "AtomicProcess",
    "Block",
    "ConfigError",
    "ConfigSpec",
    "Coordinator",
    "DeadlockError",
    "Event",
    "EventError",
    "EventMemory",
    "EventOccurrence",
    "HaltBlock",
    "HostMapper",
    "LinkError",
    "LinkSpec",
    "Manner",
    "ManifoldError",
    "Port",
    "PortDirection",
    "Preempted",
    "ProcessBase",
    "ProcessError",
    "ProcessReference",
    "ProcessState",
    "Runtime",
    "SExpr",
    "StallReport",
    "StateContext",
    "StateMachineError",
    "Watchdog",
    "Stream",
    "StreamError",
    "StreamType",
    "TaskInstance",
    "TaskManager",
    "TaskPattern",
    "TimelinePoint",
    "Unit",
    "Variable",
    "make_printer",
    "make_sink",
    "make_variable",
    "make_void",
    "parse_braces",
    "parse_config",
    "parse_mlink",
    "run_application",
]
