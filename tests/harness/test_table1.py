"""Table 1 regeneration: row structure and the paper's shape claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import MultiUserNoise, SimulationParams, uniform_cluster
from repro.harness import Table1Experiment, render_table1
from repro.harness.table1 import PAPER_TABLE1, Table1Row


@pytest.fixture(scope="module")
def experiment(synthetic_cost_model):
    return Table1Experiment(synthetic_cost_model, runs=3, seed=7)


@pytest.fixture(scope="module")
def rows(experiment):
    return experiment.run_all(levels=range(0, 16, 3), tols=(1e-3,))


class TestRowStructure:
    def test_row_fields(self, experiment):
        row = experiment.run_level(4, 1e-3)
        assert row.level == 4
        assert row.tol == 1e-3
        assert row.st > 0 and row.ct > 0
        assert row.su == pytest.approx(row.st / row.ct)
        assert row.n_workers == 9
        assert 1 <= row.m <= row.peak_machines

    def test_deterministic_given_seed(self, synthetic_cost_model):
        a = Table1Experiment(synthetic_cost_model, runs=2, seed=3).run_level(5, 1e-3)
        b = Table1Experiment(synthetic_cost_model, runs=2, seed=3).run_level(5, 1e-3)
        assert a.st == b.st and a.ct == b.ct

    def test_different_seeds_differ(self, synthetic_cost_model):
        a = Table1Experiment(synthetic_cost_model, runs=2, seed=3).run_level(5, 1e-3)
        b = Table1Experiment(synthetic_cost_model, runs=2, seed=4).run_level(5, 1e-3)
        assert a.ct != b.ct

    def test_invalid_runs_rejected(self, synthetic_cost_model):
        with pytest.raises(ValueError):
            Table1Experiment(synthetic_cost_model, runs=0)


class TestPaperShape:
    """The qualitative claims of §7, asserted against our regeneration."""

    def test_sequential_time_grows_geometrically(self, rows):
        sts = [r.st for r in rows]
        assert all(b > a for a, b in zip(sts, sts[1:]))
        # roughly geometric at the top end
        assert rows[-1].st / rows[-2].st > 3.0  # 3 levels apart

    def test_no_gain_at_small_levels(self, rows):
        assert rows[0].su < 0.1  # level 0: hopeless
        assert rows[1].su < 1.0  # level 3: still below break-even

    def test_gain_at_large_levels(self, rows):
        assert rows[-1].su > 1.0  # level 15 wins

    def test_speedup_increases_with_level(self, rows):
        sus = [r.su for r in rows]
        assert sus[-1] > sus[-2] > sus[0]

    def test_machines_grow_with_level(self, rows):
        assert rows[-1].m > rows[0].m

    def test_speedup_lags_machines(self, rows):
        """'the average speedup in a run always lags behind the average
        number of machines it uses.'"""
        for row in rows:
            assert row.su < row.m

    def test_peak_bounded_by_workers_plus_master(self, rows):
        for row in rows:
            assert row.peak_machines <= row.n_workers + 1

    def test_tighter_tolerance_costs_more(self, experiment):
        loose = experiment.run_level(9, 1e-3)
        tight = experiment.run_level(9, 1e-4)
        assert tight.st > loose.st


class TestAblationsViaConfig:
    def test_pool_per_diagonal_is_slower(self, synthetic_cost_model):
        single = Table1Experiment(synthetic_cost_model, runs=2, seed=5)
        double = Table1Experiment(
            synthetic_cost_model, runs=2, seed=5, pool_per_diagonal=True
        )
        assert double.run_level(12, 1e-3).ct > single.run_level(12, 1e-3).ct

    def test_quiet_cluster_is_faster_on_average(self, synthetic_cost_model):
        noisy = Table1Experiment(synthetic_cost_model, runs=4, seed=5)
        quiet = Table1Experiment(
            synthetic_cost_model,
            runs=4,
            seed=5,
            params=SimulationParams(noise=MultiUserNoise.quiet()),
        )
        assert quiet.run_level(12, 1e-3).ct <= noisy.run_level(12, 1e-3).ct

    def test_small_cluster_limits_speedup(self, synthetic_cost_model):
        big = Table1Experiment(synthetic_cost_model, runs=2, seed=5)
        small = Table1Experiment(
            synthetic_cost_model, runs=2, seed=5, cluster=uniform_cluster(4)
        )
        assert small.run_level(14, 1e-3).su < big.run_level(14, 1e-3).su


class TestRendering:
    def test_render_contains_all_rows(self, rows):
        text = render_table1(rows)
        for row in rows:
            assert f" {row.level} " in text or f" {row.level} |" in text

    def test_render_includes_paper_columns(self, rows):
        text = render_table1(rows, compare_paper=True)
        assert "st(paper)" in text

    def test_render_without_paper(self, rows):
        text = render_table1(rows, compare_paper=False)
        assert "st(paper)" not in text

    def test_paper_table_transcription_sane(self):
        # spot-check the transcription against the paper text
        assert PAPER_TABLE1[(1.0e-3, 15)] == (2019.02, 259.69, 12.2, 7.8)
        assert PAPER_TABLE1[(1.0e-4, 0)] == (0.02, 7.68, 1.9, 0.0)
        for (tol, level), (st, ct, m, su) in PAPER_TABLE1.items():
            assert su == pytest.approx(st / ct, abs=0.06)
