"""Coordination-layer microbenchmarks on the *real* runtime.

The simulator's ``handshake_seconds``/``event_latency_seconds`` stand in
for the 2003 deployment; this bench measures what our own coordination
layer actually costs per worker — the directly measurable slice of the
paper's "overhead of the coordination layer" category — by running the
genuine ``ProtocolMW`` manner with no-op computations.
"""

from __future__ import annotations

import pytest

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    Runtime,
    run_application,
)
from repro.protocol import MasterProtocolClient, WorkerJob, make_worker_definition, protocol_mw


def run_noop_pools(n_workers: int, n_pools: int = 1) -> None:
    worker_defn = make_worker_definition("Worker", lambda x: x)

    def master_body(proc):
        client = MasterProtocolClient(proc, timeout=60)
        for _ in range(n_pools):
            client.run_pool([WorkerJob(i, i) for i in range(n_workers)])
        client.finished()

    master_defn = AtomicDefinition(
        "Master", master_body, in_ports=("input", "dataport")
    )
    runtime = Runtime("bench")

    def main_body():
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            master = ctx.spawn(master_defn)
            ctx.run_block(protocol_mw(master, worker_defn))
            ctx.terminated(master)
            ctx.halt()

        return block

    main = Coordinator(runtime, "Main", main_body, deadline=60)
    run_application(runtime, main, timeout=60)


@pytest.mark.benchmark(group="protocol")
def test_protocol_single_worker_roundtrip(benchmark):
    """One pool, one worker: the full create/wire/compute/rendezvous
    cycle through the real state machinery."""
    benchmark.pedantic(lambda: run_noop_pools(1), rounds=5, iterations=1)


@pytest.mark.benchmark(group="protocol")
def test_protocol_pool_of_eight(benchmark):
    benchmark.pedantic(lambda: run_noop_pools(8), rounds=5, iterations=1)


@pytest.mark.benchmark(group="protocol")
def test_protocol_pool_of_thirtyone(benchmark):
    """The level-15 worker count (w = 2*15 + 1)."""
    benchmark.pedantic(lambda: run_noop_pools(31), rounds=3, iterations=1)


@pytest.mark.benchmark(group="protocol")
def test_protocol_repeated_pools(benchmark):
    """Pool churn: five pools of four through one coordinator."""
    benchmark.pedantic(lambda: run_noop_pools(4, n_pools=5), rounds=3, iterations=1)


@pytest.mark.benchmark(group="protocol")
def test_protocol_scaling_is_subquadratic(benchmark):
    """Per-worker coordination cost must not blow up with pool size."""
    import time

    def measure(n: int) -> float:
        start = time.perf_counter()
        run_noop_pools(n)
        return time.perf_counter() - start

    benchmark.pedantic(lambda: run_noop_pools(16), rounds=3, iterations=1)
    t4 = min(measure(4) for _ in range(2))
    t32 = min(measure(32) for _ in range(2))
    # 8x the workers may cost at most ~24x the wall time (generous: the
    # point is to catch quadratic/pathological coordination costs)
    assert t32 < 24 * max(t4, 1e-3), (t4, t32)
