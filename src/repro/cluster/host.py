"""Host inventory: the workstations of the simulated cluster.

The paper's cluster: "All the machines in our cluster have an AMD
Athlon Processor and a cache size of 256Kb.  However 24 machines have a
clock cycle of 1200Hz, 5 machines have a clock cycle of 1400Hz, and 3
machines have a clock cycle of 1466Hz" — connected by switched 100 Mbps
Ethernet.  (The paper writes "Hz" where it plainly means MHz.)

Host names follow the paper's CWI convention of musical instruments on
the ``sen.cwi.nl`` domain (bumpa, diplice, alboka, altfluit, arghul,
basfluit, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Host", "paper_cluster", "uniform_cluster", "STARTUP_HOST_NAME"]

#: The paper's start-up machine ("the machine we are sitting behind").
STARTUP_HOST_NAME = "bumpa.sen.cwi.nl"

#: Musical-instrument host names in the paper's style; the first six are
#: the ones that actually appear in the paper's output listing.
_INSTRUMENTS = [
    "bumpa", "diplice", "alboka", "altfluit", "arghul", "basfluit",
    "cimbalom", "dulcimer", "erhu", "fujara", "gadulka", "hackbrett",
    "igil", "jinghu", "kantele", "launeddas", "mandola", "nyckelharpa",
    "ocarina", "panpipe", "quena", "rebec", "sarangi", "tambura",
    "udu", "vielle", "whistle", "xalam", "yayli", "zurna",
    "bombarde", "crwth",
]


@dataclass(frozen=True)
class Host:
    """One single-processor workstation."""

    name: str
    clock_mhz: int
    cache_kb: int = 256

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be positive, got {self.clock_mhz}")

    @property
    def speed_factor(self) -> float:
        """Relative speed against the 1200 MHz reference machine.

        The cost model expresses per-grid work in reference seconds;
        a 1400 MHz host runs it ``1400/1200`` times faster.  "Their
        speeds are of the same order of magnitude" — the factor stays
        within [1.0, 1.22] for the paper's mix.
        """
        return self.clock_mhz / 1200.0

    def __str__(self) -> str:
        return f"{self.name}({self.clock_mhz}MHz)"


def paper_cluster() -> list[Host]:
    """The paper's exact 32-machine mix, start-up machine first.

    24 x 1200 MHz (including the start-up machine), 5 x 1400 MHz,
    3 x 1466 MHz.  Ordered so the slow majority comes first — the
    CONFIG locus assigns hosts in order, matching a realistic
    first-available policy.
    """
    clocks = [1200] * 24 + [1400] * 5 + [1466] * 3
    return [
        Host(name=f"{_INSTRUMENTS[i]}.sen.cwi.nl", clock_mhz=clock)
        for i, clock in enumerate(clocks)
    ]


def uniform_cluster(n: int, clock_mhz: int = 1200) -> list[Host]:
    """A homogeneous cluster ("unfortunately ... not available" to the
    authors; useful for ablating the heterogeneity effect)."""
    if n < 1:
        raise ValueError(f"cluster needs at least one host, got {n}")
    if n > len(_INSTRUMENTS):
        names = [f"node{i:03d}" for i in range(n)]
    else:
        names = [f"{inst}.sen.cwi.nl" for inst in _INSTRUMENTS[:n]]
    return [Host(name=name, clock_mhz=clock_mhz) for name in names]
