"""The paper's gluing modules: the generic master/worker protocol.

This package is the Python port of ``protocolMW.m`` (§4.2 of the paper)
plus the behaviour interfaces of §4.3:

* :func:`~repro.protocol.master_worker.protocol_mw` — the ``ProtocolMW``
  manner: master/worker coordination parameterized by the master process
  and the worker manifold definition;
* :func:`~repro.protocol.master_worker.create_worker_pool` — the
  ``Create_Worker_Pool`` manner it uses;
* :class:`~repro.protocol.interfaces.MasterProtocolClient` and
  :func:`~repro.protocol.interfaces.make_worker_definition` — the
  "special ANSI C interface library" equivalents that let legacy
  computation code comply with the protocol.
"""

from .events import (
    A_RENDEZVOUS,
    CREATE_POOL,
    CREATE_WORKER,
    FINISHED,
    RENDEZVOUS,
    ProtocolEvents,
    events_for,
)
from .interfaces import (
    FailedWorkerResult,
    MasterProtocolClient,
    WorkerJob,
    WorkerPoolError,
    WorkerResult,
    make_worker_definition,
)
from .master_worker import create_worker_pool, protocol_mw
from .supervision import SupervisionRegistry, make_supervisor

__all__ = [
    "A_RENDEZVOUS",
    "CREATE_POOL",
    "CREATE_WORKER",
    "FINISHED",
    "RENDEZVOUS",
    "FailedWorkerResult",
    "MasterProtocolClient",
    "ProtocolEvents",
    "SupervisionRegistry",
    "WorkerJob",
    "WorkerPoolError",
    "WorkerResult",
    "create_worker_pool",
    "events_for",
    "make_supervisor",
    "make_worker_definition",
    "protocol_mw",
]
