"""Stress and concurrency-hammering tests.

Scaled-up versions of the protocol and primitives: wide pools, pool
churn, concurrent independent protocols in one runtime, and raw
event-memory contention.  These catch ordering and lifetime bugs the
unit tests' small configurations cannot.
"""

from __future__ import annotations

import threading

import pytest

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    Event,
    EventMemory,
    Runtime,
    run_application,
)
from repro.protocol import (
    MasterProtocolClient,
    WorkerJob,
    make_worker_definition,
    protocol_mw,
)


def run_protocol_app(runtime, master_defn, worker_defn, timeout=120.0):
    def main_body():
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            master = ctx.spawn(master_defn)
            ctx.run_block(protocol_mw(master, worker_defn))
            ctx.terminated(master)
            ctx.halt()

        return block

    main = Coordinator(runtime, "Main", main_body, deadline=timeout)
    run_application(runtime, main, timeout=timeout)


class TestWidePools:
    def test_pool_of_sixty_four_workers(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x + 1)
        got = {}

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=90)
            for result in client.run_pool([WorkerJob(i, i) for i in range(64)]):
                got[result.job_id] = result.payload
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_protocol_app(runtime, master_defn, worker_defn)
        assert got == {i: i + 1 for i in range(64)}

    def test_paper_scale_pool(self, runtime):
        """w = 2*15 + 1 = 31 workers, the level-15 configuration."""
        worker_defn = make_worker_definition("Worker", lambda x: x * 2)
        count = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=90)
            results = client.run_pool([WorkerJob(i, i) for i in range(31)])
            count.append(len(results))
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_protocol_app(runtime, master_defn, worker_defn)
        assert count == [31]


class TestPoolChurn:
    def test_twenty_consecutive_pools(self, runtime):
        worker_defn = make_worker_definition("Worker", lambda x: x)
        totals = []

        def master_body(proc):
            client = MasterProtocolClient(proc, timeout=120)
            total = 0
            for round_number in range(20):
                for result in client.run_pool(
                    [WorkerJob(i, round_number) for i in range(3)]
                ):
                    total += result.payload
            totals.append(total)
            client.finished()

        master_defn = AtomicDefinition(
            "Master", master_body, in_ports=("input", "dataport")
        )
        run_protocol_app(runtime, master_defn, worker_defn, timeout=180)
        assert totals == [3 * sum(range(20))]


class TestConcurrentProtocols:
    def test_two_independent_masters_in_one_runtime(self, runtime):
        """Per-master event scoping: two full protocols run
        concurrently in one runtime without stealing each other's
        occurrences."""
        worker_a = make_worker_definition("WorkerA", lambda x: ("A", x))
        worker_b = make_worker_definition("WorkerB", lambda x: ("B", x * 10))
        got: dict[str, list] = {"A": [], "B": []}

        def make_master(tag, n):
            def body(proc):
                client = MasterProtocolClient(proc, timeout=90)
                for result in client.run_pool(
                    [WorkerJob(i, i) for i in range(n)]
                ):
                    got[tag].append(result.payload)
                client.finished()

            return AtomicDefinition(
                f"Master{tag}", body, in_ports=("input", "dataport")
            )

        def main_for(master_defn, worker_defn, name):
            def main_body():
                block = Block(name)

                @block.state(BEGIN)
                def begin(ctx):
                    master = ctx.spawn(master_defn)
                    ctx.run_block(protocol_mw(master, worker_defn))
                    ctx.terminated(master)
                    ctx.halt()

                return block

            return Coordinator(runtime, name, main_body, deadline=90)

        main_a = main_for(make_master("A", 8), worker_a, "MainA")
        main_b = main_for(make_master("B", 8), worker_b, "MainB")
        main_a.activate()
        main_b.activate()
        assert main_a.join(timeout=90) and main_b.join(timeout=90)
        for main in (main_a, main_b):
            if main.failure is not None:
                raise main.failure
        assert sorted(got["A"]) == [("A", i) for i in range(8)]
        assert sorted(got["B"]) == [("B", i * 10) for i in range(8)]


class TestEventMemoryContention:
    def test_many_producers_one_consumer(self):
        memory = EventMemory()
        n_producers, per_producer = 8, 200
        event = Event("tick")

        def produce():
            for _ in range(per_producer):
                memory.post(event)

        threads = [threading.Thread(target=produce) for _ in range(n_producers)]
        for thread in threads:
            thread.start()
        consumed = 0
        while consumed < n_producers * per_producer:
            occ = memory.wait_for_match(
                lambda o: 0 if o.event == event else None, timeout=5.0
            )
            assert occ is not None, "lost occurrences under contention"
            consumed += 1
        for thread in threads:
            thread.join()
        assert len(memory) == 0

    def test_concurrent_discard_and_post(self):
        memory = EventMemory()
        keep, drop = Event("keep"), Event("drop")
        stop = threading.Event()

        def poster():
            while not stop.is_set():
                memory.post(keep)
                memory.post(drop)

        thread = threading.Thread(target=poster)
        thread.start()
        dropped = 0
        for _ in range(200):
            dropped += memory.discard([drop])
        stop.set()
        thread.join()
        memory.discard([drop])
        assert all(occ.event == keep for occ in memory.snapshot())


class TestRuntimeChurn:
    def test_repeated_full_applications(self):
        """Build and tear down whole runtimes repeatedly: no state leaks
        between applications."""
        for round_number in range(10):
            with Runtime(f"churn{round_number}") as runtime:
                worker_defn = make_worker_definition("Worker", lambda x: x + 1)
                seen = []

                def master_body(proc):
                    client = MasterProtocolClient(proc, timeout=30)
                    seen.extend(client.run_pool([WorkerJob(0, round_number)]))
                    client.finished()

                master_defn = AtomicDefinition(
                    "Master", master_body, in_ports=("input", "dataport")
                )
                run_protocol_app(runtime, master_defn, worker_defn, timeout=30)
                assert seen[0].payload == round_number + 1
