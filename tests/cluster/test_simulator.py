"""The discrete-event cluster simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    EthernetModel,
    GridCost,
    MultiUserNoise,
    SimulationParams,
    paper_cluster,
    simulate_distributed,
    simulate_sequential,
    uniform_cluster,
)


def quiet_params(**overrides) -> SimulationParams:
    defaults = dict(noise=MultiUserNoise.quiet())
    defaults.update(overrides)
    return SimulationParams(**defaults)


def costs_for(works: list[float], result_bytes: int = 10_000) -> list[GridCost]:
    return [
        GridCost(l=i, m=0, work_ref_seconds=w, result_bytes=result_bytes)
        for i, w in enumerate(works)
    ]


def run(works, params=None, cluster=None, seed=0, pools=None, prol=0.0):
    params = params or quiet_params()
    cluster = cluster or uniform_cluster(8)
    pools = pools if pools is not None else [costs_for(works)]
    return simulate_distributed(
        pools, cluster, params, np.random.default_rng(seed),
        master_prolongation_ref_seconds=prol,
    )


class TestSequentialSimulation:
    def test_elapsed_is_work_plus_overheads(self):
        params = quiet_params()
        seq = simulate_sequential(
            costs_for([1.0, 2.0, 3.0]), uniform_cluster(1)[0], params,
            np.random.default_rng(0),
        )
        assert seq.elapsed_seconds == pytest.approx(
            0.05 + params.master_init_seconds + 6.0, rel=1e-6
        )

    def test_faster_host_is_faster(self):
        params = quiet_params()
        slow = simulate_sequential(
            costs_for([10.0]), uniform_cluster(1, 1200)[0], params,
            np.random.default_rng(0),
        )
        fast = simulate_sequential(
            costs_for([10.0]), uniform_cluster(1, 1466)[0], params,
            np.random.default_rng(0),
        )
        assert fast.elapsed_seconds < slow.elapsed_seconds

    def test_noise_increases_elapsed(self):
        noisy = SimulationParams(
            noise=MultiUserNoise(jitter_sigma=0.0, background_probability=1.0)
        )
        base = simulate_sequential(
            costs_for([100.0]), uniform_cluster(1)[0], quiet_params(),
            np.random.default_rng(0),
        )
        perturbed = simulate_sequential(
            costs_for([100.0]), uniform_cluster(1)[0], noisy,
            np.random.default_rng(0),
        )
        assert perturbed.elapsed_seconds > base.elapsed_seconds

    def test_prolongation_included(self):
        a = simulate_sequential(
            costs_for([1.0]), uniform_cluster(1)[0], quiet_params(),
            np.random.default_rng(0),
        )
        b = simulate_sequential(
            costs_for([1.0]), uniform_cluster(1)[0], quiet_params(),
            np.random.default_rng(0), prolongation_ref_seconds=5.0,
        )
        assert b.elapsed_seconds == pytest.approx(a.elapsed_seconds + 5.0)


class TestDistributedSimulation:
    def test_deterministic_given_seed(self):
        a = run([1.0, 2.0, 3.0], seed=42)
        b = run([1.0, 2.0, 3.0], seed=42)
        assert a.elapsed_seconds == b.elapsed_seconds

    def test_all_workers_present(self):
        result = run([1.0] * 5)
        assert result.n_workers == 5
        assert sorted(w.grid for w in result.workers) == [(i, 0) for i in range(5)]

    def test_workers_overlap_in_time(self):
        """Concurrency: with big equal jobs, intervals overlap."""
        result = run([30.0] * 4)
        starts = [w.welcome for w in result.workers]
        ends = [w.bye for w in result.workers]
        assert max(starts) < min(ends)

    def test_elapsed_below_serial_sum_for_big_jobs(self):
        works = [50.0] * 6
        dist = run(works)
        assert dist.elapsed_seconds < sum(works)

    def test_elapsed_above_max_single_job(self):
        works = [50.0, 40.0, 30.0]
        dist = run(works)
        assert dist.elapsed_seconds > 50.0

    def test_small_jobs_dominated_by_overhead(self):
        """The paper's no-gain regime: tiny work, elapsed ~ constants."""
        params = quiet_params()
        dist = run([0.01] * 5, params=params)
        floor = params.startup_seconds + 5 * params.handshake_seconds
        assert dist.elapsed_seconds > floor

    def test_task_reuse_with_tiny_jobs(self):
        """Workers die before the next fork: tasks are reused and fewer
        machines than workers are needed (the paper's §6 observation)."""
        result = run([0.01] * 10)
        assert result.n_tasks_forked < 10

    def test_no_reuse_with_long_jobs(self):
        result = run([60.0] * 6)
        assert result.n_tasks_forked == 6

    def test_non_perpetual_never_reuses(self):
        result = run([0.01] * 6, params=quiet_params(perpetual=False))
        assert result.n_tasks_forked == 6

    def test_workers_per_task_bundles(self):
        result = run([5.0] * 6, params=quiet_params(workers_per_task=6))
        assert result.n_tasks_forked == 1

    def test_heterogeneous_hosts_speed_work(self):
        """A 1466 MHz host finishes the same work faster."""
        params = quiet_params()
        slow = run([24.0], cluster=uniform_cluster(2, 1200), params=params)
        fast = run([24.0], cluster=uniform_cluster(2, 1466), params=params)
        slow_w = slow.workers[0]
        fast_w = fast.workers[0]
        assert fast_w.compute_seconds < slow_w.compute_seconds

    def test_result_bytes_serialize_on_master_nic(self):
        """Bigger results, later arrivals: the master's NIC is the
        bottleneck the paper concedes."""
        small = run([5.0] * 8, pools=[costs_for([5.0] * 8, result_bytes=1_000)])
        big = run([5.0] * 8, pools=[costs_for([5.0] * 8, result_bytes=5_000_000)])
        assert big.elapsed_seconds > small.elapsed_seconds + 2.0

    def test_ship_initial_data_costs_time(self):
        costs = costs_for([5.0] * 6, result_bytes=5_000_000)
        with_data = run(None, pools=[costs], params=quiet_params(ship_initial_data=True))
        without = run(None, pools=[costs], params=quiet_params(ship_initial_data=False))
        assert with_data.elapsed_seconds > without.elapsed_seconds

    def test_two_pools_form_a_barrier(self):
        """Splitting into pools serializes: elapsed grows."""
        works = [20.0] * 6
        single = run(works)
        double = run(None, pools=[costs_for(works[:3]), costs_for(works[3:])])
        assert double.elapsed_seconds > single.elapsed_seconds

    def test_breakdown_accounts_for_elapsed(self):
        result = run([10.0, 20.0, 5.0])
        b = result.breakdown
        assert b["fork"] > 0
        assert b["handshake"] > 0
        assert b["work_critical"] == pytest.approx(
            max(w.compute_seconds for w in result.workers)
        )

    def test_prolongation_on_master(self):
        base = run([1.0])
        with_prol = run([1.0], prol=7.0)
        assert with_prol.elapsed_seconds == pytest.approx(
            base.elapsed_seconds + 7.0, rel=1e-6
        )
        assert with_prol.breakdown["prolongation"] == pytest.approx(7.0)

    def test_cluster_exhaustion_queues_workers(self):
        """More long jobs than machines: placement waits, elapsed grows
        beyond the single-wave time."""
        cluster = uniform_cluster(4)  # master + 3 worker machines
        result = run([30.0] * 9, cluster=cluster)
        assert result.n_tasks_forked <= 3
        assert result.elapsed_seconds > 60.0

    def test_master_host_not_used_for_workers(self):
        result = run([5.0] * 4)
        assert all(w.host.name != result.master_host.name for w in result.workers)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            simulate_distributed(
                [costs_for([1.0])], [], quiet_params(), np.random.default_rng(0)
            )

    def test_invalid_cost_rejected(self):
        with pytest.raises(ValueError):
            GridCost(l=0, m=0, work_ref_seconds=-1.0, result_bytes=0)
        with pytest.raises(ValueError):
            GridCost(l=0, m=0, work_ref_seconds=1.0, result_bytes=-1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            SimulationParams(workers_per_task=0)

    def test_speedup_crossover_shape(self):
        """The Table 1 shape in miniature: overhead-dominated at small
        work, speedup > 1 once per-worker work dwarfs the constants."""
        params = quiet_params()
        host = uniform_cluster(1)[0]

        def speedup(per_worker: float, n: int = 9) -> float:
            works = [per_worker] * n
            st = simulate_sequential(
                costs_for(works), host, params, np.random.default_rng(0)
            ).elapsed_seconds
            ct = run(works, params=params, cluster=uniform_cluster(12)).elapsed_seconds
            return st / ct

        assert speedup(0.05) < 1.0
        assert speedup(60.0) > 3.0
