"""Performance modelling and measurement.

* :mod:`costmodel` — measures real ``subsolve`` costs at calibration
  levels and fits an extrapolating model, so Table-1-scale sweeps
  (level 15 ~ half an hour of 2003 CPU time *per run*) stay tractable;
* :mod:`timing` — wall-clock measurement with n-run averaging (the
  paper's five-run ``/bin/time`` protocol);
* :mod:`metrics` — speedup and machine-usage summary statistics;
* :mod:`overhead` — the §7 overhead decomposition (multi-user effects,
  concurrency overhead, coordination-layer overhead);
* :mod:`warmpath` — warm-path observability: operator/factorization
  cache effectiveness, cold-vs-warm pool timings, and the
  dispatch-order makespan metric;
* :mod:`dataplane` — the zero-copy shared-memory data plane: pooled
  arena of ``multiprocessing.shared_memory`` blocks with
  generation-tagged leases, so workers write result arrays in place and
  the master attaches without a copy.
"""

from .bridge import costs_from_run, records_from_run, replay_on_cluster
from .costmodel import CalibrationError, CostModel, CostRecord, measure_costs
from .dataplane import (
    DATA_PLANES,
    DataPlane,
    DataPlaneAudit,
    DataPlaneError,
    ShmDescriptor,
    ShmLease,
    StaleLeaseError,
    payload_nbytes,
    write_through_lease,
)
from .metrics import RunStatistics, speedup, summarize_runs
from .overhead import OverheadReport, decompose_run
from .timing import TimingResult, time_callable
from .warmpath import (
    DispatchMakespan,
    WarmPathReport,
    dispatch_makespan,
    simulate_makespan,
    static_chunk_makespan,
    warm_path_report,
)

__all__ = [
    "CalibrationError",
    "CostModel",
    "CostRecord",
    "DATA_PLANES",
    "DataPlane",
    "DataPlaneAudit",
    "DataPlaneError",
    "DispatchMakespan",
    "OverheadReport",
    "RunStatistics",
    "ShmDescriptor",
    "ShmLease",
    "StaleLeaseError",
    "TimingResult",
    "WarmPathReport",
    "costs_from_run",
    "decompose_run",
    "dispatch_makespan",
    "measure_costs",
    "payload_nbytes",
    "records_from_run",
    "replay_on_cluster",
    "simulate_makespan",
    "speedup",
    "static_chunk_makespan",
    "summarize_runs",
    "time_callable",
    "warm_path_report",
]
