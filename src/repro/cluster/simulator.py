"""Discrete-event simulation of the restructured application's runs.

The simulator reproduces the timing structure of §6/§7 without the
authors' testbed:

* the master (and the ``Main`` coordinator) live in the first task
  instance on the start-up machine;
* each ``create_worker`` forks a task instance on a free machine —
  *unless* an emptied perpetual task instance can welcome the worker
  (the reuse behaviour that lets a run use fewer machines than
  workers);
* the master passes all data to and from the workers, so every job and
  every result serializes through the master's NIC (§4.1);
* per-grid compute time is ``work_ref / host.speed_factor * noise``,
  with ``work_ref`` from the calibrated cost model (reference machine =
  the 1200 MHz Athlon class);
* the master's creation loop, result reading, rendezvous and final
  prolongation follow the behaviour interface of §4.3 step by step.

Approximation (documented): the master's job sends reserve the NIC in
program order, and result transfers are serialized in compute-completion
order behind them.  Interleavings where an early result races a late
job send are resolved in favour of the send; at the message sizes
involved this shifts arrivals by at most one transfer time.

The result records everything the paper reports: the elapsed time, the
per-worker Welcome/Bye intervals (Figure 1's raw data), and a full
overhead decomposition (the §7 overhead categories, itemized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .host import Host
from .network import EthernetModel
from .noise import MultiUserNoise, NoiseSample

__all__ = [
    "GridCost",
    "SimulationParams",
    "WorkerInterval",
    "DistributedRun",
    "SequentialRun",
    "simulate_distributed",
    "simulate_sequential",
]


@dataclass(frozen=True)
class GridCost:
    """The cost-model summary of one ``subsolve(l, m)`` call."""

    l: int
    m: int
    #: wall seconds of the subsolve on the reference (1200 MHz) machine
    work_ref_seconds: float
    #: bytes of the result (the full nodal solution array)
    result_bytes: int
    #: bytes the master sends the worker (job spec; plus the grid data
    #: when the configuration ships initial data)
    job_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.work_ref_seconds < 0:
            raise ValueError(f"work must be non-negative, got {self.work_ref_seconds}")
        if self.result_bytes < 0 or self.job_bytes < 0:
            raise ValueError("byte counts must be non-negative")


@dataclass
class SimulationParams:
    """Timing constants of the coordination layer and the run set-up.

    Defaults are chosen to be plausible for the paper's 2003-era
    MANIFOLD-over-PVM deployment and are validated against the paper's
    small-level concurrent times (where the constants dominate):
    ``ct(0) ~ 7.7 s`` and the near-linear growth of ``ct`` with the
    worker count through the no-gain levels.
    """

    #: application start: MLINK'ed executable load, CONFIG, first task
    startup_seconds: float = 5.8
    #: master's sequential initialization ("some initial computations")
    master_init_seconds: float = 0.1
    #: one event propagation between process instances
    event_latency_seconds: float = 0.004
    #: forking a fresh task instance on a (remote) machine
    fork_seconds: float = 1.25
    #: per-worker creation/handshake cost even on a reused task instance
    handshake_seconds: float = 0.55
    #: does the master ship the grid's initial data to the worker?
    ship_initial_data: bool = True
    #: application wind-down after the master's Bye
    shutdown_seconds: float = 0.2
    network: EthernetModel = field(default_factory=EthernetModel)
    noise: MultiUserNoise = field(default_factory=MultiUserNoise)
    #: task-instance load limit for Worker instances (1 = the paper's
    #: distributed config: one worker per task; larger values re-bundle
    #: workers into shared task instances, the "parallel" config)
    workers_per_task: int = 1
    #: emptied task instances stay alive for reuse ({perpetual})
    perpetual: bool = True
    #: the §4.1 alternative the authors did not try: dedicated I/O
    #: workers relieve the master of data passing — job and result
    #: transfers spread over ``n_io_workers`` NICs instead of
    #: serializing through the master's, at extra coordination cost
    io_workers: bool = False
    n_io_workers: int = 4
    #: extra per-worker coordination when I/O workers are interposed
    io_worker_overhead_seconds: float = 0.15
    #: chaos model: a :class:`~repro.resilience.FaultPlan` consulted per
    #: (grid, attempt) — the same plan object that drives real process
    #: kills in the fork pool drives simulated ones on the testbed.
    #: ``slow`` stretches the compute; ``crash``/``hang``/``raise`` cost
    #: wasted compute plus detection plus a re-fork and handshake on the
    #: retry, itemized under ``breakdown["recovery"]``
    fault_plan: object = None
    #: master-side time to detect a dead or hung worker (deadline poll)
    recovery_detect_seconds: float = 1.5
    #: attempts per grid before the simulated master gives up (mirrors
    #: :class:`~repro.resilience.RetryPolicy.max_attempts`)
    max_fault_attempts: int = 3
    #: fraction of an attempt's compute wasted when the worker dies
    crash_waste_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.workers_per_task < 1:
            raise ValueError(
                f"workers_per_task must be >= 1, got {self.workers_per_task}"
            )
        if self.max_fault_attempts < 1:
            raise ValueError(
                f"max_fault_attempts must be >= 1, got {self.max_fault_attempts}"
            )


@dataclass(frozen=True)
class WorkerInterval:
    """One worker's life, as the trace records it."""

    grid: tuple[int, int]
    host: Host
    task_id: int
    welcome: float      # worker starts (has its job)
    bye: float          # worker dies (result delivered)
    compute_seconds: float
    forked_task: bool   # did this worker force a fresh task instance?


@dataclass
class DistributedRun:
    """Outcome of one simulated distributed run."""

    elapsed_seconds: float
    workers: list[WorkerInterval]
    master_host: Host
    master_welcome: float
    master_bye: float
    #: overhead decomposition (the §7 categories, itemized)
    breakdown: dict[str, float]
    #: hosts that ever housed a task instance (master host first)
    hosts_used: list[Host]
    n_tasks_forked: int
    #: injected faults the simulated master recovered from
    n_faults: int = 0

    @property
    def n_workers(self) -> int:
        return len(self.workers)


@dataclass
class SequentialRun:
    """Outcome of one simulated sequential run."""

    elapsed_seconds: float
    host: Host
    noise: NoiseSample


class _SimTask:
    """Placement bookkeeping for one simulated worker task instance."""

    __slots__ = ("id", "host", "slot_busy_until", "forked_at")

    def __init__(self, task_id: int, host: Host, forked_at: float) -> None:
        self.id = task_id
        self.host = host
        self.forked_at = forked_at
        self.slot_busy_until: list[float] = []

    def busy_slots(self, t: float) -> int:
        return sum(1 for until in self.slot_busy_until if until > t)

    def free_slot_at(self, limit: int) -> float:
        """Earliest time a worker slot is available under ``limit``.

        The busy count at time ``t`` is ``#{u > t}``; it drops below
        ``limit`` exactly at the ``limit``-th largest busy-until value.
        """
        if len(self.slot_busy_until) < limit:
            return 0.0
        return sorted(self.slot_busy_until, reverse=True)[limit - 1]


def simulate_distributed(
    pools: Sequence[Sequence[GridCost]],
    cluster: Sequence[Host],
    params: SimulationParams,
    rng: np.random.Generator,
    *,
    master_prolongation_ref_seconds: float = 0.0,
) -> DistributedRun:
    """Simulate one distributed run of the restructured application.

    ``pools`` is the master's pool structure: one inner sequence per
    workers-pool, in the order the master requests them (the default
    configuration is a single pool containing every grid of the nested
    loop; the per-diagonal ablation passes two).
    """
    if not cluster:
        raise ValueError("cluster must contain at least one host")
    network = params.network
    network.reset()
    noise_by_host: dict[str, NoiseSample] = {
        h.name: params.noise.sample(rng) for h in cluster
    }

    master_host = cluster[0]
    master_nic = master_host.name
    breakdown = {
        "startup": params.startup_seconds,
        "master_init": params.master_init_seconds,
        "fork": 0.0,
        "handshake": 0.0,
        "events": 0.0,
        "send_wait": 0.0,
        "result_wait": 0.0,
        "work_critical": 0.0,
        "prolongation": 0.0,
        "recovery": 0.0,
        "shutdown": params.shutdown_seconds,
    }
    n_faults = 0

    # --- placement state ---------------------------------------------
    tasks: list[_SimTask] = []
    # (available_from, host): the master's machine is not in the locus
    host_pool: list[tuple[float, Host]] = [(0.0, h) for h in cluster[1:]]
    n_forked = 0

    def place_worker(t: float) -> tuple[_SimTask, float, bool]:
        """Task housing a worker requested at ``t``; returns
        ``(task, ready_time, forked)``."""
        nonlocal n_forked
        if params.perpetual or params.workers_per_task > 1:
            for task in tasks:
                if task.busy_slots(t) < params.workers_per_task:
                    return task, t, False
        if host_pool:
            free_at, host = min(host_pool, key=lambda e: e[0])
        else:
            # every machine holds a live task: queue on the task whose
            # next worker slot frees earliest
            if not tasks:
                raise RuntimeError("no worker machines available in the cluster")
            task = min(
                tasks, key=lambda task: task.free_slot_at(params.workers_per_task)
            )
            ready = task.free_slot_at(params.workers_per_task)
            return task, max(t, ready), False
        host_pool.remove((free_at, host))
        task = _SimTask(len(tasks) + 1, host, max(t, free_at))
        tasks.append(task)
        n_forked += 1
        return task, max(t, free_at), True

    # --- the master's timeline -----------------------------------------
    t_master = params.startup_seconds
    master_welcome = t_master
    t_master += params.master_init_seconds

    workers: list[WorkerInterval] = []
    worker_counter = 0

    def data_nic(index: int) -> str:
        """NIC that carries worker ``index``'s data transfers."""
        if params.io_workers:
            return f"io-worker-{index % max(1, params.n_io_workers)}"
        return master_nic

    for pool in pools:
        # step 3(a): create_pool event to the coordinator
        t_master += params.event_latency_seconds
        breakdown["events"] += params.event_latency_seconds

        staged: list[tuple[GridCost, _SimTask, float, float, bool, int]] = []
        for cost in pool:
            # step 3(b): create_worker event
            t_master += params.event_latency_seconds
            task, ready, forked = place_worker(t_master)
            if forked:
                t_master = ready + params.fork_seconds
                breakdown["fork"] += params.fork_seconds
            else:
                t_master = ready
            t_master += params.handshake_seconds
            breakdown["handshake"] += params.handshake_seconds
            # step 3(c): &worker arrives at the master
            t_master += params.event_latency_seconds
            breakdown["events"] += 2 * params.event_latency_seconds

            # step 3(d): master writes the job (serialized on its NIC,
            # or handed to an I/O worker in the §4.1 alternative)
            send_bytes = cost.job_bytes + (
                cost.result_bytes if params.ship_initial_data else 0
            )
            nic = data_nic(worker_counter)
            if params.io_workers:
                # master only hands the job over; the I/O worker moves it
                t_master += params.io_worker_overhead_seconds
                breakdown["handshake"] += params.io_worker_overhead_seconds
                _, send_end = network.occupy(nic, t_master, send_bytes)
            else:
                _, send_end = network.occupy(nic, t_master, send_bytes)
                breakdown["send_wait"] += send_end - t_master
                t_master = send_end

            sample = noise_by_host[task.host.name]
            compute = (
                cost.work_ref_seconds / task.host.speed_factor * sample.slowdown
            )
            # chaos model: replay the fault plan's escalation on this
            # grid.  A fault wastes part of an attempt, then costs the
            # master a detection poll plus a re-fork and handshake for
            # the replacement worker; a slow host stretches the job.
            # The grid keeps its single trace interval — recovery is
            # folded into its compute span and itemized in the
            # breakdown, which is how the §7 decomposition would see it.
            if params.fault_plan is not None:
                recovery = 0.0
                for attempt in range(1, params.max_fault_attempts + 1):
                    action = params.fault_plan.action(cost.l, cost.m, attempt)
                    if action is None:
                        break
                    if action.kind == "slow":
                        compute *= action.factor
                        break
                    wasted = (
                        0.0
                        if action.kind == "raise"
                        else compute * params.crash_waste_fraction
                    )
                    recovery += (
                        wasted
                        + params.recovery_detect_seconds
                        + params.fork_seconds
                        + params.handshake_seconds
                    )
                    n_faults += 1
                compute += recovery
                breakdown["recovery"] += recovery
            welcome = send_end
            # single-processor hosts timeshare: a worker landing next to
            # k busy co-residents of its task instance runs ~(k+1)x
            # slower (first-order model; exact interleaving would need a
            # per-host CPU scheduler, which the ablation does not need)
            co_residents = task.busy_slots(welcome)
            if co_residents:
                compute *= 1 + co_residents
            compute_end = welcome + compute
            # reserve the slot until the estimated result hand-off; the
            # exact bye (NIC-contended) replaces it in the result phase
            task.slot_busy_until.append(
                compute_end + network.transfer_seconds(cost.result_bytes)
            )
            staged.append((cost, task, welcome, compute_end, forked, worker_counter))
            worker_counter += 1

        # step 3(f): read all results (completion order; master NIC
        # serializes the transfers)
        last_arrival = t_master
        pool_intervals: list[WorkerInterval] = []
        for cost, task, welcome, compute_end, forked, index in sorted(
            staged, key=lambda s: s[3]
        ):
            _, arrival = network.occupy(data_nic(index), compute_end, cost.result_bytes)
            pool_intervals.append(
                WorkerInterval(
                    grid=(cost.l, cost.m),
                    host=task.host,
                    task_id=task.id,
                    welcome=welcome,
                    bye=arrival,
                    compute_seconds=compute_end - welcome,
                    forked_task=forked,
                )
            )
            last_arrival = max(last_arrival, arrival)

        breakdown["result_wait"] += max(0.0, last_arrival - t_master)
        breakdown["work_critical"] += max(
            (w.compute_seconds for w in pool_intervals), default=0.0
        )
        t_master = max(t_master, last_arrival)
        workers.extend(pool_intervals)

        # steps 3(g)-(h): rendezvous round trip
        t_master += 2 * params.event_latency_seconds
        breakdown["events"] += 2 * params.event_latency_seconds

    # step 4: finished; step 5: prolongation on the master's machine
    master_sample = noise_by_host[master_host.name]
    prol = (
        master_prolongation_ref_seconds
        / master_host.speed_factor
        * master_sample.slowdown
    )
    breakdown["prolongation"] = prol
    t_master += prol
    master_bye = t_master
    elapsed = t_master + params.shutdown_seconds

    hosts_used = [master_host] + [task.host for task in tasks]
    return DistributedRun(
        elapsed_seconds=elapsed,
        workers=workers,
        master_host=master_host,
        master_welcome=master_welcome,
        master_bye=master_bye,
        breakdown=breakdown,
        hosts_used=hosts_used,
        n_tasks_forked=n_forked,
        n_faults=n_faults,
    )


def simulate_sequential(
    costs: Sequence[GridCost],
    host: Host,
    params: SimulationParams,
    rng: np.random.Generator,
    *,
    prolongation_ref_seconds: float = 0.0,
) -> SequentialRun:
    """Simulate one run of the *original* sequential program.

    No MANIFOLD layer: just the program start, the nested loop's work,
    and the prolongation, all on one machine under one noise draw.
    """
    sample = params.noise.sample(rng)
    work = sum(c.work_ref_seconds for c in costs)
    elapsed = (
        0.05  # plain process start
        + params.master_init_seconds
        + (work + prolongation_ref_seconds) / host.speed_factor * sample.slowdown
    )
    return SequentialRun(elapsed_seconds=elapsed, host=host, noise=sample)
