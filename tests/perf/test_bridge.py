"""The real-run → simulation bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.simulator import GridCost
from repro.perf.bridge import costs_from_run, records_from_run, replay_on_cluster
from repro.perf.costmodel import CostModel
from repro.restructured import run_concurrent, run_multiprocessing
from repro.sparsegrid import SequentialApplication
from tests.conftest import synthetic_records


@pytest.fixture(scope="module")
def sequential_result():
    return SequentialApplication(root=2, level=2, tol=1e-3).run()


@pytest.fixture(scope="module")
def concurrent_result():
    result, _ = run_concurrent(root=2, level=2, tol=1e-3, timeout=120)
    return result


class TestCostsFromRun:
    def test_sequential_run_converts(self, sequential_result):
        costs = costs_from_run(sequential_result)
        assert len(costs) == 5
        assert all(isinstance(c, GridCost) for c in costs)
        assert all(c.work_ref_seconds > 0 for c in costs)

    def test_loop_order_preserved(self, sequential_result):
        costs = costs_from_run(sequential_result)
        assert [(c.l, c.m) for c in costs] == [
            (0, 1), (1, 0), (0, 2), (1, 1), (2, 0)
        ]

    def test_concurrent_run_converts(self, concurrent_result):
        costs = costs_from_run(concurrent_result)
        assert len(costs) == 5

    def test_multiprocessing_run_converts(self):
        result = run_multiprocessing(root=2, level=1, tol=1e-3, processes=2)
        assert len(costs_from_run(result)) == 3

    def test_result_bytes_match_solutions(self, sequential_result):
        costs = costs_from_run(sequential_result)
        by_key = {(c.l, c.m): c for c in costs}
        for key, sub in sequential_result.data.results.items():
            assert by_key[key].result_bytes == sub.solution.nbytes

    def test_incomplete_run_rejected(self, sequential_result):
        import copy

        broken = copy.deepcopy(sequential_result)
        del broken.data.results[(1, 1)]
        with pytest.raises(ValueError, match="missing grids"):
            costs_from_run(broken)


class TestRecordsFromRun:
    def test_records_feed_cost_model(self, sequential_result):
        records = records_from_run(sequential_result)
        assert len(records) == 5
        assert all(r.tol == 1e-3 for r in records)
        # too few for a fit alone, but concatenating with other
        # calibration records works.  The companion set is synthetic
        # (noise-free ground truth) so this test cannot be knocked over
        # by background load inflating a second live run's timings —
        # the load-degeneracy itself is covered deterministically in
        # test_costmodel.py::TestDegenerateFitRecovery
        more = synthetic_records(levels=range(4, 7), tols=(1e-3,))
        model = CostModel.fit(records + more, root=2, noise_floor_seconds=1e-3)
        assert model.work_seconds(2, 2, 1e-3) > 0

    def test_invalid_wall_seconds_rejected(self, sequential_result):
        import copy
        import dataclasses

        broken = copy.deepcopy(sequential_result)
        sub = broken.data.results[(1, 1)]
        broken.data.results[(1, 1)] = dataclasses.replace(
            sub, wall_seconds=float("nan")
        )
        with pytest.raises(ValueError, match="invalid wall_seconds"):
            records_from_run(broken)
        with pytest.raises(ValueError, match="invalid wall_seconds"):
            costs_from_run(broken)
        broken.data.results[(1, 1)] = dataclasses.replace(
            sub, wall_seconds=-0.5
        )
        with pytest.raises(ValueError, match="invalid wall_seconds"):
            records_from_run(broken)


class TestReplay:
    def test_replay_produces_distributed_run(self, sequential_result):
        run = replay_on_cluster(sequential_result, seed=3)
        assert run.n_workers == 5
        assert run.master_host.name == "bumpa.sen.cwi.nl"
        assert run.elapsed_seconds > 0

    def test_replay_deterministic(self, sequential_result):
        a = replay_on_cluster(sequential_result, seed=3)
        b = replay_on_cluster(sequential_result, seed=3)
        assert a.elapsed_seconds == b.elapsed_seconds

    def test_replay_overhead_dominated_at_small_level(self, sequential_result):
        """A level-2 workload is hopeless on the cluster: the simulated
        concurrent time dwarfs the measured sequential time — the same
        conclusion as Table 1's small levels."""
        run = replay_on_cluster(sequential_result, seed=3)
        assert run.elapsed_seconds > 5 * sequential_result.total_seconds
