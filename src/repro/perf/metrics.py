"""Summary metrics of the evaluation: speedup and run statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["speedup", "RunStatistics", "summarize_runs"]


def speedup(sequential_seconds: float, concurrent_seconds: float) -> float:
    """The paper's ``su = st / ct``."""
    if sequential_seconds < 0:
        raise ValueError(f"sequential time must be >= 0, got {sequential_seconds}")
    if concurrent_seconds <= 0:
        raise ValueError(f"concurrent time must be > 0, got {concurrent_seconds}")
    return sequential_seconds / concurrent_seconds


@dataclass(frozen=True)
class RunStatistics:
    """Average over repeated runs of one configuration."""

    mean_seconds: float
    std_seconds: float
    n_runs: int
    samples: tuple[float, ...]

    @property
    def spread_ratio(self) -> float:
        low = min(self.samples)
        return max(self.samples) / low if low > 0 else float("inf")


def summarize_runs(samples: Sequence[float]) -> RunStatistics:
    if not samples:
        raise ValueError("need at least one sample")
    arr = np.asarray(samples, dtype=float)
    return RunStatistics(
        mean_seconds=float(arr.mean()),
        std_seconds=float(arr.std()),
        n_runs=len(samples),
        samples=tuple(float(s) for s in samples),
    )
