"""The zero-copy data plane: per-payload transport and end-to-end cost.

Two comparisons, both A/B against the seed's pickle transport:

* **per-payload transfer** — one result array moved master-ward.  The
  pickle side pays the real protocol: ``pickle.dumps``, a round trip
  through an actual OS pipe (what ``multiprocessing.Pool``'s result
  channel is), ``pickle.loads``.  The shm side pays the worker's
  ``memcpy`` into its leased block plus the master's attach (generation
  check + edge-page checksum + zero-copy view).  The issue's acceptance
  floor: shm >= 1.3x faster at level >= 5 payload sizes;
* **end-to-end makespan** — ``run_multiprocessing`` with
  ``data_plane="pickle"`` vs ``"shm"`` at the same level, bitwise
  identity asserted.  On small levels the subsolves dominate, so this
  mostly demonstrates that streaming combination is never a regression.

Runs in a fast smoke mode inside the tier-1 suite; set
``REPRO_DATA_PLANE_FULL=1`` for the full measurement.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from repro.perf.dataplane import DataPlane, write_through_lease
from repro.restructured import run_multiprocessing, shutdown_pool
from repro.sparsegrid.grid import nested_loop_grids

ROOT = 2
_PIPE_CHUNK = 65536


def _payloads(root: int, level: int) -> list[np.ndarray]:
    """One result-sized array per grid of the level's combination.

    Payload bytes scale with ``root + level``, and the transport
    comparison is a pure function of bytes: at the test problem's toy
    ``root=2`` a level-5 grid is ~5 KB, where per-payload constants
    (pickle protocol vs ``shm_open`` + mmap) decide, while the MB-scale
    payloads of any production-sized root are copy-bound — the regime
    the data plane exists for.  The bench therefore sizes payloads at a
    larger root and keeps the level-``>=5`` combination structure of the
    acceptance criterion.
    """
    rng = np.random.default_rng(20040101 + level)
    return [
        rng.standard_normal(grid.shape)
        for grid in nested_loop_grids(root, level)
    ]


def _pipe_round_trip(array: np.ndarray, r: int, w: int) -> np.ndarray:
    """Serialize, push through a real OS pipe, deserialize.

    Interleaves writes and drains so a payload larger than the pipe
    buffer cannot deadlock the single-threaded measurement.
    """
    blob = pickle.dumps(array, protocol=pickle.HIGHEST_PROTOCOL)
    view = memoryview(blob)
    received = bytearray()
    sent = 0
    while sent < len(blob):
        sent += os.write(w, view[sent:sent + _PIPE_CHUNK])
        received += os.read(r, _PIPE_CHUNK)
    while len(received) < len(blob):
        received += os.read(r, _PIPE_CHUNK)
    return pickle.loads(bytes(received))


@pytest.mark.benchmark(group="data-plane")
def test_per_payload_transfer_shm_vs_pickle(benchmark, data_plane_settings):
    """One fan-in's worth of payloads through each transport."""
    level = data_plane_settings["payload_level"]
    rounds = data_plane_settings["transport_rounds"]
    payloads = _payloads(data_plane_settings["payload_root"], level)
    total_bytes = sum(p.nbytes for p in payloads)

    r, w = os.pipe()
    pickle_samples: list[float] = []

    def timed_pickle_fan_in():
        # runs as the per-round setup, so the two transports interleave
        # round for round and background load hits both alike (this
        # machine's throughput swings are larger than the effect)
        started = time.perf_counter()
        for array in payloads:
            out = _pipe_round_trip(array, r, w)
        pickle_samples.append(time.perf_counter() - started)
        assert np.array_equal(out, payloads[-1])

    with DataPlane() as plane:
        leases = [
            plane.lease((i, 0), array.nbytes)
            for i, array in enumerate(payloads)
        ]

        def shm_fan_in():
            for lease, array in zip(leases, payloads):
                descriptor = write_through_lease(lease, array)
                view = plane.attach(descriptor)
            return view

        try:
            out = benchmark.pedantic(
                shm_fan_in,
                setup=timed_pickle_fan_in,
                rounds=rounds,
                iterations=1,
            )
        finally:
            os.close(r)
            os.close(w)
        assert np.array_equal(out, payloads[-1])

    pickle_seconds = min(pickle_samples)
    shm_seconds = min(benchmark.stats.stats.data)
    ratio = pickle_seconds / shm_seconds
    benchmark.extra_info["level"] = level
    benchmark.extra_info["payload_bytes"] = total_bytes
    benchmark.extra_info["pickle_seconds"] = pickle_seconds
    benchmark.extra_info["shm_seconds"] = shm_seconds
    benchmark.extra_info["shm_speedup"] = ratio
    print(f"\ndata plane: {len(payloads)} payloads ({total_bytes} bytes) "
          f"at level {level}: pickle {pickle_seconds * 1e6:.0f}us vs shm "
          f"{shm_seconds * 1e6:.0f}us ({ratio:.1f}x)")
    assert ratio >= 1.3, (
        f"shm transport must be >= 1.3x faster than the pickle pipe at "
        f"level {level}, got {ratio:.2f}x"
    )


@pytest.mark.benchmark(group="data-plane")
def test_end_to_end_makespan_shm_vs_pickle(benchmark, data_plane_settings):
    """Whole runs under each transport, identity asserted."""
    level = data_plane_settings["run_level"]
    tol = data_plane_settings["tol"]
    rounds = data_plane_settings["run_rounds"]

    shutdown_pool()
    reference = run_multiprocessing(root=ROOT, level=level, tol=tol)
    pickle_samples: list[float] = []
    pickle_results: list = []

    def timed_pickle_run():
        # per-round setup: interleave the transports so load hits both
        started = time.perf_counter()
        pickle_results.append(
            run_multiprocessing(root=ROOT, level=level, tol=tol)
        )
        pickle_samples.append(time.perf_counter() - started)

    result = benchmark.pedantic(
        lambda: run_multiprocessing(
            root=ROOT, level=level, tol=tol, data_plane="shm"
        ),
        setup=timed_pickle_run,
        rounds=rounds,
        iterations=1,
    )
    pickle_result = pickle_results[-1]
    shutdown_pool()

    assert np.array_equal(result.combined, reference.combined)
    assert np.array_equal(pickle_result.combined, reference.combined)
    assert result.shm_fallbacks == 0
    assert result.data_plane_audit.clean
    assert result.overlap_ratio > 0

    pickle_seconds = min(pickle_samples)
    shm_seconds = min(benchmark.stats.stats.data)
    benchmark.extra_info["level"] = level
    benchmark.extra_info["pickle_seconds"] = pickle_seconds
    benchmark.extra_info["shm_seconds"] = shm_seconds
    benchmark.extra_info["overlap_ratio"] = result.overlap_ratio
    benchmark.extra_info["transport_shm_bytes"] = result.transport_shm_bytes
    print(f"\nend to end at level {level}: pickle {pickle_seconds:.3f}s vs "
          f"shm {shm_seconds:.3f}s, overlap ratio "
          f"{result.overlap_ratio:.2f}")
    # the subsolves dominate at bench levels; the requirement on the
    # run level is no-regression, the transport win is the test above
    assert shm_seconds <= pickle_seconds * 1.25
