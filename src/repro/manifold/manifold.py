"""Coordinator processes (manifolds) and manners.

A **manifold** is a process whose body is a state block: it coordinates
other processes by wiring streams in reaction to event occurrences, and
performs no computation itself.  A **manner** is a parameterized
subprogram — a block executed *within the caller's process instance*,
sharing its event memory (the paper's ``ProtocolMW`` and
``Create_Worker_Pool`` are manners).

Usage sketch, mirroring ``mainprog.m``::

    def main_body(argv):
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            master = ctx.spawn(master_defn, argv)
            ctx.run_block(protocol_mw(master, worker_defn))
            ctx.halt()

        return block

    coordinator = Coordinator(runtime, "Main", main_body, args=(argv,))
    coordinator.activate()

A manner is simply a function returning a :class:`Block`; the caller
runs it with ``ctx.run_block(manner(...))``.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Callable, Optional, Sequence

from .errors import ProcessError
from .events import EventMemory
from .ports import STANDARD_ERR, STANDARD_IN, STANDARD_OUT
from .process import ProcessBase
from .scheduler import Runtime
from .states import Block, BlockExit, HaltBlock, Preempted, StateContext

__all__ = ["Coordinator", "Manner"]

#: A manner: a callable building a block from its actual parameters.
Manner = Callable[..., Block]


class Coordinator(ProcessBase):
    """A manifold instance: runs a state block on its own thread.

    Parameters
    ----------
    body:
        Either a ready :class:`Block` or a callable ``(*args) -> Block``
        (the manifold definition; ``args`` are the manifold parameters).
    poll_interval:
        How often blocking primitives re-check non-event predicates
        (process termination, deadlines).  Purely an implementation
        knob; event arrivals wake waiters immediately.
    deadline:
        Optional wall-clock budget in seconds; exceeded ⇒ the
        coordinator fails with :class:`StateMachineError` instead of
        hanging forever (used by tests and the deadlock detector).
    """

    def __init__(
        self,
        runtime: Runtime,
        name: str,
        body: Block | Callable[..., Block],
        args: Sequence[object] = (),
        *,
        in_ports: Sequence[str] = (STANDARD_IN,),
        out_ports: Sequence[str] = (STANDARD_OUT, STANDARD_ERR),
        poll_interval: float = 0.02,
        deadline: Optional[float] = None,
    ) -> None:
        super().__init__(runtime, name, in_ports=in_ports, out_ports=out_ports)
        self._body = body
        self._args = tuple(args)
        self.event_memory = EventMemory(owner_name=name)
        self.poll_interval = poll_interval
        self._deadline_seconds = deadline
        self._deadline_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self.failure_traceback: Optional[str] = None
        self._trace_lines: list[str] = []
        self._trace_lock = threading.Lock()
        runtime.subscribe(self.event_memory)
        runtime.adopt(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start(self) -> None:
        if self._deadline_seconds is not None:
            self._deadline_at = time.monotonic() + self._deadline_seconds
        self._thread = threading.Thread(
            target=self._thread_main, name=self.name, daemon=True
        )
        self._thread.start()

    def deadline_exceeded(self) -> bool:
        return self._deadline_at is not None and time.monotonic() > self._deadline_at

    def _thread_main(self) -> None:
        ctx = StateContext(self)
        try:
            block = self._body if isinstance(self._body, Block) else self._body(*self._args)
            ctx.run_block(block)
        except (HaltBlock, BlockExit):
            self._finish(None)
        except Preempted as exc:
            # An event unwound past the outermost block: treat the event
            # as unhandled-at-top-level and end the coordinator cleanly,
            # recording what happened for diagnostics.
            self.trace_message(
                f"top-level preemption by {exc.occurrence.event.name!r}; ending"
            )
            self._finish(None)
        except BaseException as exc:  # noqa: BLE001 - report coordinator failure
            self.failure_traceback = traceback.format_exc()
            self._finish(exc)
        else:
            self._finish(None)

    def _finish(self, failure: Optional[BaseException] = None) -> None:
        self.event_memory.close()
        self.runtime.unsubscribe(self.event_memory)
        super()._finish(failure)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def trace_message(self, text: str) -> None:
        """Record a MES(...)-style message for tests and run traces."""
        with self._trace_lock:
            self._trace_lines.append(text)

    def trace(self) -> list[str]:
        with self._trace_lock:
            return list(self._trace_lines)


def run_application(
    runtime: Runtime,
    main: Coordinator,
    timeout: Optional[float] = None,
) -> None:
    """Activate ``main``, wait for it, then wind the application down.

    Joining *all* processes would hang on intentionally perpetual
    service processes (``void``, ``variable``); the convention — the one
    the paper's application follows — is that the main coordinator only
    finishes once every worker it is responsible for has finished, so
    joining ``main`` is the application's natural end.  Afterwards the
    runtime is shut down, unwinding any service processes, and the first
    recorded failure (coordinator or worker) is re-raised so drivers see
    worker exceptions instead of silent hangs.
    """
    main.activate()
    finished = main.join(timeout)
    failures = runtime.failures()
    runtime.shutdown()
    if not finished:
        raise ProcessError(
            f"application {runtime.name!r} did not finish within {timeout}s"
        )
    for proc in failures:
        if proc.failure is not None and not proc.failure_handled:
            raise proc.failure
