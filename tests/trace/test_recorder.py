"""TraceRecorder: clock injection, the global hook, spans, fault lift."""

from __future__ import annotations

import threading

import pytest

from repro.resilience import FaultEvent
from repro.trace import (
    TraceEvent,
    TraceRecorder,
    current_recorder,
    emit,
    install_recorder,
    recording,
    trace_span,
    uninstall_recorder,
)


class FakeClock:
    """A controllable monotonic clock for exactly-known timelines."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRecording:
    def test_events_timestamped_by_injected_clock(self):
        clock = FakeClock()
        rec = TraceRecorder(clock=clock)
        rec.record("job_submit", key=(1, 2), attempt=1)
        clock.advance(2.5)
        rec.record("job_done", key=(1, 2), attempt=1)
        a, b = rec.events()
        assert a.t == 100.0
        assert b.t == 102.5

    def test_explicit_timestamp_overrides_clock(self):
        rec = TraceRecorder(clock=FakeClock())
        event = rec.record("job_start", key=(0, 1), t=42.0)
        assert event.t == 42.0

    def test_seq_is_monotone_and_unique(self):
        rec = TraceRecorder(clock=FakeClock())
        for _ in range(5):
            rec.record("manifold_event")
        seqs = [e.seq for e in rec.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_extra_kwargs_land_in_data(self):
        rec = TraceRecorder(clock=FakeClock())
        event = rec.record("job_done", key=(1, 1), wall_seconds=0.25)
        assert event.data == {"wall_seconds": 0.25}

    def test_len_counts_events(self):
        rec = TraceRecorder(clock=FakeClock())
        assert len(rec) == 0
        rec.record("worker_spawn", worker=123)
        assert len(rec) == 1

    def test_thread_safe_recording(self):
        rec = TraceRecorder(clock=FakeClock())

        def hammer():
            for _ in range(200):
                rec.record("manifold_event")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = rec.events()
        assert len(events) == 800
        assert len({e.seq for e in events}) == 800


class TestFaultLift:
    def test_fault_event_lifts_into_trace(self):
        rec = TraceRecorder(clock=FakeClock())
        fault = FaultEvent(
            key=(2, 3),
            kind="crash",
            attempt=1,
            action="retry",
            detected_by="liveness",
            error="worker pid 7 died",
            seconds_lost=0.5,
        )
        event = rec.record_fault(fault)
        assert event.kind == "fault"
        assert event.key == (2, 3)
        assert event.attempt == 1
        assert event.data["fault_kind"] == "crash"
        assert event.data["action"] == "retry"
        assert event.data["detected_by"] == "liveness"
        assert event.data["seconds_lost"] == 0.5


class TestSpans:
    def test_span_emits_matched_pair(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("fanout"):
            rec.record("job_submit", key=(0, 1))
        begin, _, end = rec.events()
        assert begin.kind == "span_begin" and end.kind == "span_end"
        assert begin.data["span"] == end.data["span"] == "fanout"
        assert begin.data["span_id"] == end.data["span_id"]

    def test_nested_spans_get_distinct_ids(self):
        rec = TraceRecorder(clock=FakeClock())
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        ids = {e.data["span_id"] for e in rec.events()}
        assert len(ids) == 2

    def test_span_closes_on_exception(self):
        rec = TraceRecorder(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with rec.span("doomed"):
                raise RuntimeError("boom")
        assert [e.kind for e in rec.events()] == ["span_begin", "span_end"]


class TestGlobalHook:
    def test_emit_is_noop_without_recorder(self):
        uninstall_recorder()
        emit("worker_spawn", worker=1)  # must not raise
        assert current_recorder() is None

    def test_install_and_uninstall(self):
        rec = TraceRecorder(clock=FakeClock())
        install_recorder(rec)
        try:
            assert current_recorder() is rec
            emit("worker_spawn", worker=9)
            assert len(rec) == 1
        finally:
            uninstall_recorder(rec)
        assert current_recorder() is None

    def test_uninstall_other_recorder_is_noop(self):
        a = TraceRecorder(clock=FakeClock())
        b = TraceRecorder(clock=FakeClock())
        install_recorder(a)
        try:
            uninstall_recorder(b)
            assert current_recorder() is a
        finally:
            uninstall_recorder(a)

    def test_recording_context_restores_previous(self):
        outer = TraceRecorder(clock=FakeClock())
        inner = TraceRecorder(clock=FakeClock())
        install_recorder(outer)
        try:
            with recording(inner):
                emit("rendezvous")
            emit("rendezvous")
        finally:
            uninstall_recorder(outer)
        assert len(inner) == 1
        assert len(outer) == 1

    def test_recording_none_is_noop(self):
        uninstall_recorder()
        with recording(None):
            assert current_recorder() is None

    def test_trace_span_noop_when_off(self):
        uninstall_recorder()
        with trace_span("anything"):
            pass  # must not raise

    def test_trace_span_records_when_on(self):
        rec = TraceRecorder(clock=FakeClock())
        with recording(rec):
            with trace_span("fanout"):
                pass
        assert [e.kind for e in rec.events()] == ["span_begin", "span_end"]


class TestEventDicts:
    def test_round_trip_preserves_fields(self):
        event = TraceEvent(
            seq=3, t=1.5, kind="job_done", key=(2, 1), worker=77,
            attempt=2, data={"wall_seconds": 0.1},
        )
        back = TraceEvent.from_dict(event.to_dict())
        assert back == event

    def test_key_round_trips_as_tuple(self):
        event = TraceEvent(seq=1, t=0.0, kind="job_start", key=(4, 5))
        assert TraceEvent.from_dict(event.to_dict()).key == (4, 5)

    def test_minimal_event_round_trips(self):
        event = TraceEvent(seq=1, t=0.25, kind="rendezvous")
        back = TraceEvent.from_dict(event.to_dict())
        assert back.key is None and back.worker is None
        assert back.attempt == 0 and back.data == {}
