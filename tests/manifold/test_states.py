"""Coordinator state machinery: transitions, preemption, nesting, save."""

from __future__ import annotations

import time

import pytest

from repro.manifold import (
    BEGIN,
    END,
    AtomicDefinition,
    Block,
    Coordinator,
    Event,
    Runtime,
    StateMachineError,
    StreamType,
)
from repro.manifold.states import HaltBlock

GO = Event("go")
STOP = Event("stop")
OTHER = Event("other")


def run_coordinator(runtime: Runtime, block_factory, timeout: float = 5.0) -> Coordinator:
    coord = Coordinator(runtime, "C", block_factory, deadline=timeout)
    coord.activate()
    assert coord.join(timeout=timeout + 1), "coordinator did not finish"
    if coord.failure is not None:
        raise coord.failure
    return coord


class TestBlockStructure:
    def test_block_without_begin_rejected(self, runtime):
        block = Block("nobegin")
        block.add_state(GO, lambda ctx: None)

        coord = Coordinator(runtime, "C", block, deadline=2)
        coord.activate()
        coord.join(timeout=3)
        assert isinstance(coord.failure, StateMachineError)

    def test_duplicate_state_rejected(self):
        block = Block("dup")
        block.add_state(BEGIN, lambda ctx: None)
        with pytest.raises(StateMachineError):
            block.add_state(BEGIN, lambda ctx: None)

    def test_begin_state_runs_first(self, runtime):
        visits = []

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                visits.append("begin")
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert visits == ["begin"]

    def test_setup_runs_before_begin(self, runtime):
        order = []

        def factory():
            def setup(ctx):
                order.append("setup")
                return {"x": 42}

            block = Block("b", setup=setup)

            @block.state(BEGIN)
            def begin(ctx):
                order.append(("begin", ctx.local("x")))
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert order == ["setup", ("begin", 42)]


class TestTransitions:
    def test_post_drives_transition(self, runtime):
        visits = []

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                visits.append("begin")
                ctx.post(GO)
                ctx.idle()

            @block.state(GO)
            def go(ctx):
                visits.append("go")
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert visits == ["begin", "go"]

    def test_external_event_preempts_idle(self, runtime):
        visits = []
        defn = AtomicDefinition(
            "raiser", lambda p, ev: (time.sleep(0.02), p.raise_event(ev))[-1]
        )

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                ctx.spawn(defn, GO)
                ctx.idle()

            @block.state(GO)
            def go(ctx):
                visits.append("go")
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert visits == ["go"]

    def test_terminated_returns_when_process_dies(self, runtime):
        quick = AtomicDefinition("quick", lambda p: None)
        visits = []

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                proc = ctx.spawn(quick)
                ctx.terminated(proc)
                visits.append("after-terminated")
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert visits == ["after-terminated"]

    def test_terminated_preempted_by_event(self, runtime):
        defn = AtomicDefinition(
            "raiser", lambda p, ev: (time.sleep(0.02), p.raise_event(ev))[-1]
        )
        void_like = AtomicDefinition("never", lambda p: p.read())
        visits = []

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                never = ctx.spawn(void_like)
                ctx.spawn(defn, GO)
                ctx.terminated(never)
                visits.append("unexpected")

            @block.state(GO)
            def go(ctx):
                visits.append("preempted")
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert visits == ["preempted"]

    def test_state_waits_for_next_event_after_body(self, runtime):
        """A state body that returns leaves the coordinator waiting in
        the state for the next transition."""
        visits = []
        defn = AtomicDefinition(
            "raiser", lambda p, ev: (time.sleep(0.03), p.raise_event(ev))[-1]
        )

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                visits.append("begin")
                ctx.spawn(defn, STOP)
                # body returns without idling

            @block.state(STOP)
            def stop(ctx):
                visits.append("stop")
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert visits == ["begin", "stop"]

    def test_same_state_can_reenter(self, runtime):
        counter = []

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                ctx.post(GO)
                ctx.idle()

            @block.state(GO)
            def go(ctx):
                counter.append(1)
                if len(counter) < 3:
                    ctx.post(GO)
                    ctx.idle()
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert len(counter) == 3

    def test_priority_orders_simultaneous_events(self, runtime):
        visits = []

        def factory():
            block = Block("b", priority={GO: 2, STOP: 1})

            @block.state(BEGIN)
            def begin(ctx):
                ctx.post(STOP)
                ctx.post(GO)
                ctx.idle()

            @block.state(GO)
            def go(ctx):
                visits.append("go")
                ctx.idle()

            @block.state(STOP)
            def stop(ctx):
                visits.append("stop")
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert visits == ["go", "stop"]

    def test_ignore_discards_on_block_exit(self, runtime):
        leftover = []

        def factory():
            block = Block("b", ignore=(OTHER,))

            @block.state(BEGIN)
            def begin(ctx):
                ctx.memory.post(OTHER)
                ctx.memory.post(OTHER)
                ctx.halt()

            outer = Block("outer")

            @outer.state(BEGIN)
            def outer_begin(ctx):
                ctx.run_block(block)
                leftover.append(len(ctx.memory))
                ctx.halt()

            return outer

        run_coordinator(runtime, factory)
        assert leftover == [0]


class TestNestedBlocks:
    def test_outer_label_preempts_inner_block(self, runtime):
        """The paper's pattern: an inner begin-only block is preempted
        by an event whose handling label lives one block out."""
        visits = []
        defn = AtomicDefinition(
            "raiser", lambda p, ev: (time.sleep(0.02), p.raise_event(ev))[-1]
        )

        def factory():
            outer = Block("outer")

            @outer.state(BEGIN)
            def outer_begin(ctx):
                ctx.spawn(defn, GO)
                inner = Block("inner")

                @inner.state(BEGIN)
                def inner_begin(ictx):
                    visits.append("inner")
                    ictx.idle()

                ctx.run_block(inner)
                visits.append("unexpected")

            @outer.state(GO)
            def go(ctx):
                visits.append("outer-go")
                ctx.halt()

            return outer

        run_coordinator(runtime, factory)
        assert visits == ["inner", "outer-go"]

    def test_save_all_shields_outer_labels(self, runtime):
        """A save-all inner block must NOT be preempted by outer labels."""
        visits = []

        def factory():
            outer = Block("outer")

            @outer.state(BEGIN)
            def outer_begin(ctx):
                ctx.memory.post(GO)  # would match outer's GO state
                inner = Block("inner", save_all=True)

                @inner.state(BEGIN)
                def inner_begin(ictx):
                    visits.append("inner")
                    ictx.post(END)
                    ictx.idle()

                @inner.state(END)
                def inner_end(ictx):
                    visits.append("inner-end")
                    ictx.halt()

                ctx.run_block(inner)
                visits.append("after-inner")
                ctx.idle()

            @outer.state(GO)
            def go(ctx):
                visits.append("outer-go")
                ctx.halt()

            return outer

        run_coordinator(runtime, factory)
        # inner handled its own events first; the saved GO fires only
        # after the inner block exits
        assert visits == ["inner", "inner-end", "after-inner", "outer-go"]

    def test_halt_exits_only_innermost_block(self, runtime):
        visits = []

        def factory():
            outer = Block("outer")

            @outer.state(BEGIN)
            def outer_begin(ctx):
                inner = Block("inner")

                @inner.state(BEGIN)
                def inner_begin(ictx):
                    visits.append("inner")
                    ictx.halt()

                ctx.run_block(inner)
                visits.append("outer-continues")
                ctx.halt()

            return outer

        run_coordinator(runtime, factory)
        assert visits == ["inner", "outer-continues"]

    def test_locals_resolve_through_stack(self, runtime):
        seen = []

        def factory():
            outer = Block("outer", setup=lambda ctx: {"shared": "outer-value"})

            @outer.state(BEGIN)
            def outer_begin(ctx):
                inner = Block("inner", setup=lambda c: {"mine": "inner-value"})

                @inner.state(BEGIN)
                def inner_begin(ictx):
                    seen.append(ictx.local("shared"))
                    seen.append(ictx.local("mine"))
                    ictx.halt()

                ctx.run_block(inner)
                ctx.halt()

            return outer

        run_coordinator(runtime, factory)
        assert seen == ["outer-value", "inner-value"]

    def test_missing_local_raises_keyerror(self, runtime):
        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                ctx.local("nope")

            return block

        coord = Coordinator(runtime, "C", factory, deadline=2)
        coord.activate()
        coord.join(timeout=3)
        assert isinstance(coord.failure, KeyError)


class TestStreamsInStates:
    def test_state_streams_dismantled_on_transition(self, runtime):
        idle_defn = AtomicDefinition("idle", lambda p: p.read())
        streams = {}

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                a = ctx.create(idle_defn)
                b = ctx.create(idle_defn)
                streams["bk"] = ctx.connect(a.output, b.input)
                streams["kk"] = ctx.connect(a.output, b.input, type=StreamType.KK)
                ctx.post(GO)
                ctx.idle()

            @block.state(GO)
            def go(ctx):
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert streams["bk"].source_broken
        assert not streams["kk"].source_broken

    def test_send_delivers_literal(self, runtime):
        idle_defn = AtomicDefinition("idle", lambda p: p.read())
        received = []

        def factory():
            block = Block("b")

            @block.state(BEGIN)
            def begin(ctx):
                target = ctx.create(idle_defn)
                ctx.send("payload", target.input)
                received.append(target.input.try_read())
                ctx.halt()

            return block

        run_coordinator(runtime, factory)
        assert received == ["payload"]

    def test_deadline_fails_hung_coordinator(self, runtime):
        def factory():
            block = Block("hang")

            @block.state(BEGIN)
            def begin(ctx):
                ctx.idle()  # nothing will ever preempt

            return block

        coord = Coordinator(runtime, "C", factory, deadline=0.2, poll_interval=0.02)
        coord.activate()
        assert coord.join(timeout=5)
        assert isinstance(coord.failure, StateMachineError)
