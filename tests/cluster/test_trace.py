"""Chronological Welcome/Bye output and the machines timeline."""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro.cluster import (
    GridCost,
    MultiUserNoise,
    SimulationParams,
    simulate_distributed,
    uniform_cluster,
)
from repro.cluster.trace import (
    MachinePoint,
    ascii_timeline,
    machines_timeline,
    render_trace,
    trace_messages,
    weighted_average_machines,
)


@pytest.fixture()
def sample_run():
    costs = [
        GridCost(l=i, m=0, work_ref_seconds=w, result_bytes=10_000)
        for i, w in enumerate([5.0, 15.0, 25.0, 2.0])
    ]
    params = SimulationParams(noise=MultiUserNoise.quiet())
    return simulate_distributed(
        [costs], uniform_cluster(8), params, np.random.default_rng(0)
    )


class TestTraceMessages:
    def test_one_welcome_and_bye_per_process(self, sample_run):
        messages = trace_messages(sample_run)
        welcomes = [m for m in messages if m.text == "Welcome"]
        byes = [m for m in messages if m.text == "Bye"]
        assert len(welcomes) == sample_run.n_workers + 1  # workers + master
        assert len(byes) == sample_run.n_workers + 1

    def test_chronological_order(self, sample_run):
        times = [m.time for m in trace_messages(sample_run)]
        assert times == sorted(times)

    def test_master_welcome_first(self, sample_run):
        first = trace_messages(sample_run)[0]
        assert first.manifold.startswith("Master")
        assert first.text == "Welcome"

    def test_master_bye_last(self, sample_run):
        last = trace_messages(sample_run)[-1]
        assert last.manifold.startswith("Master")
        assert last.text == "Bye"

    def test_rendered_format_matches_paper(self, sample_run):
        """label: host taskid procid seconds micros / task manifold
        source line -> message"""
        text = render_trace(sample_run)
        pattern = re.compile(
            r"^\S+\.sen\.cwi\.nl \d+ \d+ \d{10} \d+\n"
            r"  mainprog (Master\(port in\)|Worker\(event\)) "
            r"ResSourceCode\.c \d+ -> (Welcome|Bye)$",
            re.MULTILINE,
        )
        matches = pattern.findall(text)
        assert len(matches) == 2 * (sample_run.n_workers + 1)

    def test_source_lines_match_paper(self, sample_run):
        text = render_trace(sample_run)
        assert "ResSourceCode.c 136 -> Welcome" in text  # master welcome
        assert "ResSourceCode.c 337 -> Bye" in text      # master bye
        assert "ResSourceCode.c 351 -> Welcome" in text  # worker welcome
        assert "ResSourceCode.c 370 -> Bye" in text      # worker bye


class TestMachinesTimeline:
    def test_starts_at_one_machine(self, sample_run):
        timeline = machines_timeline(sample_run)
        # the start-up machine is in use from t=0
        assert timeline[0].machines == 0
        assert timeline[1].time == 0.0
        assert timeline[1].machines == 1

    def test_peak_bounded_by_hosts(self, sample_run):
        timeline = machines_timeline(sample_run)
        assert max(p.machines for p in timeline) <= len(sample_run.hosts_used)

    def test_count_never_negative(self, sample_run):
        assert all(p.machines >= 0 for p in machines_timeline(sample_run))

    def test_ebb_and_flow(self, sample_run):
        """The count rises above one and falls back: dynamic expansion
        and shrinking."""
        counts = [p.machines for p in machines_timeline(sample_run)]
        assert max(counts) >= 3
        assert counts[-1] <= 1

    def test_weighted_average_between_bounds(self, sample_run):
        timeline = machines_timeline(sample_run)
        avg = weighted_average_machines(timeline, sample_run.elapsed_seconds)
        assert 1.0 <= avg <= max(p.machines for p in timeline)

    def test_weighted_average_constant_staircase(self):
        timeline = [MachinePoint(0.0, 3)]
        assert weighted_average_machines(timeline, 10.0) == pytest.approx(3.0)

    def test_weighted_average_two_steps(self):
        timeline = [MachinePoint(0.0, 1), MachinePoint(5.0, 3)]
        assert weighted_average_machines(timeline, 10.0) == pytest.approx(2.0)

    def test_weighted_average_validates_t_end(self):
        with pytest.raises(ValueError):
            weighted_average_machines([MachinePoint(0.0, 1)], 0.0)

    def test_ascii_timeline_renders(self, sample_run):
        timeline = machines_timeline(sample_run)
        art = ascii_timeline(timeline, sample_run.elapsed_seconds)
        assert "#" in art
        assert art.count("\n") >= 10

    def test_ascii_timeline_empty(self):
        assert "empty" in ascii_timeline([], 1.0)
        assert "no machines" in ascii_timeline([MachinePoint(0.0, 0)], 1.0)
