"""Trace analysis: what a run's timeline says about its coordination.

The related work (S-Net vs CnC; Jongmans & Arbab's protocol-code
analysis) argues that coordination-level performance claims need
per-component timelines, not just end-to-end wall time.  This module
computes exactly those numbers from a :class:`~repro.trace.TraceEvent`
timeline:

* **job spans** — every ``(key, attempt)`` with a ``job_done`` becomes a
  :class:`JobSpan` carrying its queue wait (``start - submit``) and
  compute time (``done - start``);
* **per-worker utilization** — busy seconds over the traced window, per
  worker lane; always ≤ 1 for serial workers (an invariant the tests
  assert);
* **critical path** — the traced makespan (first submit to last
  completion) together with the chain of jobs on the last-finishing
  worker, which is the chain that set it;
* **queue-wait vs compute breakdown** — total seconds jobs spent
  waiting for a worker versus computing;
* **recovery overhead** — seconds lost to faults (from the lifted
  ``fault`` events) plus the compute spent on replayed attempts and
  fallbacks, which must be consistent with the run's
  :class:`~repro.resilience.FaultReport`;
* **transport vs compute** — when the run used the shared-memory data
  plane, the ``payload_shm_write``/``payload_attach``/``combine_chunk``
  events split payload movement (and the streaming combination the
  master overlapped with it) from the subsolve compute itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .recorder import TraceEvent, TraceRecorder

__all__ = ["JobSpan", "TraceAnalysis", "SpanNestingError"]

#: lane name used for events with no worker (master-side work)
MASTER_LANE = "master"


class SpanNestingError(ValueError):
    """A ``span_begin``/``span_end`` pair is unbalanced or interleaved."""


@dataclass(frozen=True)
class JobSpan:
    """One completed job attempt, reassembled from its lifecycle events."""

    key: tuple
    attempt: int
    worker: object
    submit_t: Optional[float]
    start_t: float
    done_t: float
    #: the in-master sequential fallback computed this attempt
    fallback: bool = False

    @property
    def queue_wait_seconds(self) -> float:
        if self.submit_t is None:
            return 0.0
        return max(0.0, self.start_t - self.submit_t)

    @property
    def compute_seconds(self) -> float:
        return max(0.0, self.done_t - self.start_t)


class TraceAnalysis:
    """Derived metrics of one traced run."""

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events = sorted(events, key=lambda e: (e.t, e.seq))
        self.jobs = self._assemble_jobs(self.events)
        times = [e.t for e in self.events]
        self.t_begin = min(times) if times else 0.0
        self.t_end = max(times) if times else 0.0

    @classmethod
    def from_recorder(cls, recorder: TraceRecorder) -> "TraceAnalysis":
        return cls(recorder.events())

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    @staticmethod
    def _assemble_jobs(events: Iterable[TraceEvent]) -> list[JobSpan]:
        submits: dict[tuple, float] = {}
        starts: dict[tuple, tuple[float, object]] = {}
        jobs: list[JobSpan] = []
        for event in events:
            if event.key is None:
                continue
            ident = (event.key, event.attempt)
            if event.kind == "job_submit":
                submits[ident] = event.t
            elif event.kind == "job_start":
                starts[ident] = (event.t, event.worker)
            elif event.kind == "job_done":
                start_t, worker = starts.pop(
                    ident, (submits.get(ident, event.t), event.worker)
                )
                jobs.append(
                    JobSpan(
                        key=event.key,
                        attempt=event.attempt,
                        worker=event.worker if event.worker is not None else worker,
                        submit_t=submits.get(ident),
                        start_t=start_t,
                        done_t=event.t,
                        fallback=bool(event.data.get("fallback", False)),
                    )
                )
        return jobs

    # ------------------------------------------------------------------
    # the traced window
    # ------------------------------------------------------------------
    @property
    def elapsed_seconds(self) -> float:
        return self.t_end - self.t_begin

    # ------------------------------------------------------------------
    # per-worker utilization
    # ------------------------------------------------------------------
    def worker_busy_seconds(self) -> dict[object, float]:
        busy: dict[object, float] = {}
        for job in self.jobs:
            lane = job.worker if job.worker is not None else MASTER_LANE
            busy[lane] = busy.get(lane, 0.0) + job.compute_seconds
        return busy

    def worker_utilization(self) -> dict[object, float]:
        """Busy fraction of the traced window, per worker lane."""
        window = self.elapsed_seconds
        if window <= 0.0:
            return {lane: 0.0 for lane in self.worker_busy_seconds()}
        return {
            lane: busy / window
            for lane, busy in self.worker_busy_seconds().items()
        }

    @property
    def mean_utilization(self) -> float:
        util = self.worker_utilization()
        if not util:
            return 0.0
        return sum(util.values()) / len(util)

    # ------------------------------------------------------------------
    # queue wait vs compute
    # ------------------------------------------------------------------
    @property
    def total_compute_seconds(self) -> float:
        return sum(j.compute_seconds for j in self.jobs)

    @property
    def total_queue_wait_seconds(self) -> float:
        return sum(j.queue_wait_seconds for j in self.jobs)

    # ------------------------------------------------------------------
    # critical path
    # ------------------------------------------------------------------
    def critical_path(self) -> list[JobSpan]:
        """The job chain on the worker whose last job finishes last.

        For a single-join fan-out (this application) the makespan ends
        with some worker's final completion; that worker's job sequence
        is the chain that determined it.
        """
        if not self.jobs:
            return []
        last = max(self.jobs, key=lambda j: j.done_t)
        chain = [j for j in self.jobs if j.worker == last.worker]
        chain.sort(key=lambda j: j.start_t)
        return chain

    @property
    def critical_path_seconds(self) -> float:
        """First submission (or start) to last completion."""
        if not self.jobs:
            return 0.0
        begin = min(
            j.submit_t if j.submit_t is not None else j.start_t
            for j in self.jobs
        )
        return max(j.done_t for j in self.jobs) - begin

    # ------------------------------------------------------------------
    # recovery overhead
    # ------------------------------------------------------------------
    def fault_events(self) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == "fault"]

    @property
    def n_faults(self) -> int:
        return len(self.fault_events())

    @property
    def n_retries(self) -> int:
        return sum(1 for e in self.events if e.kind == "retry")

    @property
    def retry_backoff_seconds(self) -> float:
        """Total retry backoff the run waited through.

        On the reactor engine this is *parked* time, not stalled time:
        the faulted grid sits on a timer while every healthy link keeps
        completing, so none of it is attributable to other workers.
        """
        return sum(
            float(e.data.get("backoff_seconds", 0.0))
            for e in self.events
            if e.kind == "retry"
        )

    @property
    def n_respawns(self) -> int:
        return sum(1 for e in self.events if e.kind == "respawn")

    @property
    def n_fallbacks(self) -> int:
        return sum(1 for e in self.events if e.kind == "fallback")

    @property
    def recovered_keys(self) -> set[tuple]:
        """Keys that faulted at least once but have a completed job."""
        completed = {j.key for j in self.jobs}
        return {e.key for e in self.fault_events() if e.key in completed}

    @property
    def fault_seconds_lost(self) -> float:
        """Seconds the lifted fault events report as lost work."""
        return sum(
            float(e.data.get("seconds_lost", 0.0)) for e in self.fault_events()
        )

    @property
    def replay_compute_seconds(self) -> float:
        """Compute spent on attempts past the first (replays, fallbacks)."""
        return sum(
            j.compute_seconds for j in self.jobs if j.attempt > 1 or j.fallback
        )

    @property
    def recovery_overhead_seconds(self) -> float:
        """Work the run paid *because* of faults: lost + replayed."""
        return self.fault_seconds_lost + self.replay_compute_seconds

    # ------------------------------------------------------------------
    # transport vs compute (the zero-copy data plane)
    # ------------------------------------------------------------------
    def _data_seconds(self, kind: str) -> float:
        return sum(
            float(e.data.get("seconds", 0.0))
            for e in self.events
            if e.kind == kind
        )

    @property
    def shm_write_seconds(self) -> float:
        """Worker-side seconds spent copying payloads into shm blocks."""
        return self._data_seconds("payload_shm_write")

    @property
    def attach_seconds(self) -> float:
        """Master-side seconds spent attaching (mapping + verifying)."""
        return self._data_seconds("payload_attach")

    @property
    def transport_seconds(self) -> float:
        """Total payload-movement seconds (shm write + attach)."""
        return self.shm_write_seconds + self.attach_seconds

    @property
    def transport_bytes(self) -> int:
        """Payload bytes moved through the shared-memory data plane."""
        return sum(
            int(e.data.get("payload_bytes", 0))
            for e in self.events
            if e.kind == "payload_attach"
        )

    @property
    def n_shm_payloads(self) -> int:
        return sum(1 for e in self.events if e.kind == "payload_attach")

    @property
    def combine_chunk_seconds(self) -> float:
        """Master-side seconds spent in streaming per-chunk combination."""
        return self._data_seconds("combine_chunk")

    @property
    def n_segment_reaps(self) -> int:
        """Segments reclaimed by the fault ladder or reaped at close."""
        return sum(1 for e in self.events if e.kind == "segment_reaped")

    # ------------------------------------------------------------------
    # network vs compute (the socket engine)
    # ------------------------------------------------------------------
    @property
    def net_send_seconds(self) -> float:
        """Master-side seconds spent writing frames to daemon sockets."""
        return self._data_seconds("net_send")

    @property
    def net_recv_seconds(self) -> float:
        """Master-side seconds spent reading frames off daemon sockets."""
        return self._data_seconds("net_recv")

    @property
    def network_seconds(self) -> float:
        """Total socket-transport seconds — the time the socket engine
        spends moving bytes, split out from the compute it carries."""
        return self.net_send_seconds + self.net_recv_seconds

    @property
    def network_bytes(self) -> int:
        """Framed bytes moved over daemon sockets, both directions."""
        return sum(
            int(e.data.get("frame_bytes", 0))
            for e in self.events
            if e.kind in ("net_send", "net_recv")
        )

    @property
    def n_reconnects(self) -> int:
        """Connections re-established after a drop or daemon death."""
        return sum(1 for e in self.events if e.kind == "reconnect")

    # ------------------------------------------------------------------
    # split efficiency (intra-grid strip substructuring)
    # ------------------------------------------------------------------
    def _data_sum(self, kind: str, field: str) -> float:
        return sum(
            float(e.data.get(field, 0.0))
            for e in self.events
            if e.kind == kind
        )

    @property
    def n_strip_factors(self) -> int:
        """Fresh strip LU factorizations (events may carry counts)."""
        return int(
            sum(
                int(e.data.get("count", 1))
                for e in self.events
                if e.kind == "strip_factor"
            )
        )

    @property
    def strip_factor_seconds(self) -> float:
        """Seconds spent factoring strip blocks, summed over strips."""
        return self._data_seconds("strip_factor")

    @property
    def critical_strip_factor_seconds(self) -> float:
        """Per-call max-over-strips factor seconds — what ``k`` lanes
        would pay (falls back to the serial sum when the event carries
        no critical figure)."""
        total = self._data_sum("strip_factor", "critical_seconds")
        return total if total > 0.0 else self.strip_factor_seconds

    @property
    def n_halo_exchanges(self) -> int:
        return int(self._data_sum("halo_exchange", "exchanges"))

    @property
    def halo_bytes(self) -> int:
        """Halo/interface vector bytes moved by split solves."""
        return int(self._data_sum("halo_exchange", "payload_bytes"))

    @property
    def n_schur_solves(self) -> int:
        return int(
            sum(
                int(e.data.get("count", 1))
                for e in self.events
                if e.kind == "schur_solve"
            )
        )

    @property
    def schur_solve_seconds(self) -> float:
        """Master-side seconds in the dense interface (Schur) solves."""
        return self._data_seconds("schur_solve")

    @property
    def split_overhead_seconds(self) -> float:
        """Seconds a split pays that the unsplit path would not: the
        interface solves (halo movement through shm is accounted by the
        data-plane metrics)."""
        return self.schur_solve_seconds

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_span_nesting(self) -> list[tuple[str, float, float]]:
        """Validate ``span_begin``/``span_end`` pairing and nesting.

        Returns the completed ``(name, begin_t, end_t)`` spans; raises
        :class:`SpanNestingError` on an unbalanced or interleaved pair.
        """
        stacks: dict[object, list[TraceEvent]] = {}
        spans: list[tuple[str, float, float]] = []
        for event in self.events:
            if event.kind not in ("span_begin", "span_end"):
                continue
            lane = event.worker if event.worker is not None else MASTER_LANE
            stack = stacks.setdefault(lane, [])
            if event.kind == "span_begin":
                stack.append(event)
                continue
            if not stack:
                raise SpanNestingError(
                    f"span_end {event.data.get('span')!r} without a begin"
                )
            begin = stack.pop()
            if begin.data.get("span_id") != event.data.get("span_id"):
                raise SpanNestingError(
                    f"interleaved spans: begin {begin.data.get('span')!r} "
                    f"closed by end {event.data.get('span')!r}"
                )
            spans.append((str(begin.data.get("span")), begin.t, event.t))
        leftovers = [s for stack in stacks.values() for s in stack]
        if leftovers:
            raise SpanNestingError(
                "unclosed spans: "
                + ", ".join(repr(s.data.get("span")) for s in leftovers)
            )
        return spans

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    def report_lines(self) -> list[str]:
        """The CLI's ``analyze-trace`` output."""
        lines = [
            f"trace: {len(self.events)} events, {len(self.jobs)} completed "
            f"job attempts over {self.elapsed_seconds:.3f}s",
        ]
        util = self.worker_utilization()
        for lane in sorted(util, key=str):
            busy = self.worker_busy_seconds()[lane]
            lines.append(
                f"  worker {lane}: utilization {util[lane]:.2f} "
                f"({busy:.3f}s busy)"
            )
        if util:
            lines.append(f"  mean utilization: {self.mean_utilization:.2f}")
        lines.append(
            f"queue wait {self.total_queue_wait_seconds:.3f}s vs compute "
            f"{self.total_compute_seconds:.3f}s"
        )
        chain = self.critical_path()
        if chain:
            path = " -> ".join(str(j.key) for j in chain)
            lines.append(
                f"critical path: {self.critical_path_seconds:.3f}s via "
                f"worker {chain[-1].worker}: {path}"
            )
        if self.n_faults:
            lines.append(
                f"recovery: {self.n_faults} faults, {self.n_retries} retries, "
                f"{self.n_respawns} respawns, {self.n_fallbacks} fallbacks; "
                f"overhead {self.recovery_overhead_seconds:.3f}s "
                f"({self.fault_seconds_lost:.3f}s lost + "
                f"{self.replay_compute_seconds:.3f}s replayed)"
            )
            if self.retry_backoff_seconds:
                lines.append(
                    f"  retry backoff: {self.retry_backoff_seconds:.3f}s "
                    f"parked on timers (healthy links kept completing)"
                )
        if self.n_shm_payloads:
            lines.append(
                f"data plane: {self.n_shm_payloads} shm payloads, "
                f"{self.transport_bytes} bytes; transport "
                f"{self.transport_seconds:.3f}s "
                f"({self.shm_write_seconds:.3f}s write + "
                f"{self.attach_seconds:.3f}s attach), streaming combine "
                f"{self.combine_chunk_seconds:.3f}s"
            )
            if self.n_segment_reaps:
                lines.append(
                    f"  segments reaped by the fault ladder: "
                    f"{self.n_segment_reaps}"
                )
        if self.network_seconds or self.n_reconnects:
            lines.append(
                f"network: {self.network_bytes} framed bytes over sockets; "
                f"{self.network_seconds:.3f}s "
                f"({self.net_send_seconds:.3f}s send + "
                f"{self.net_recv_seconds:.3f}s recv), "
                f"{self.n_reconnects} reconnect(s)"
            )
        if self.n_halo_exchanges or self.n_schur_solves:
            lines.append(
                f"split: {self.n_strip_factors} strip factors "
                f"({self.strip_factor_seconds:.3f}s serial, "
                f"{self.critical_strip_factor_seconds:.3f}s critical), "
                f"{self.n_schur_solves} interface solves "
                f"({self.schur_solve_seconds:.3f}s), "
                f"{self.n_halo_exchanges} halo exchanges "
                f"({self.halo_bytes} bytes)"
            )
        return lines
