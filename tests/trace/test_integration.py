"""Tracing wired through the real execution layers.

These tests run the actual multiprocessing fan-out (plain and
fault-injected) and the MANIFOLD runtime with a recorder attached, then
assert the timeline's invariants: span nesting holds, serial worker
utilization stays <= 1, job spans cover every grid, and the recovery
picture agrees with the run's own FaultReport.
"""

from __future__ import annotations

import pytest

from repro.manifold import Runtime
from repro.manifold.events import Event, EventOccurrence
from repro.resilience import RetryPolicy
from repro.restructured import run_multiprocessing
from repro.trace import (
    TraceAnalysis,
    TraceRecorder,
    read_jsonl,
    recording,
    write_jsonl,
)

LEVEL = 2
N_GRIDS = 2 * LEVEL + 1


@pytest.fixture(scope="module")
def traced_run():
    rec = TraceRecorder()
    result = run_multiprocessing(
        root=2, level=LEVEL, tol=1e-3, processes=2, trace=rec
    )
    return result, rec


@pytest.fixture(scope="module")
def traced_faulted_run():
    rec = TraceRecorder()
    result = run_multiprocessing(
        root=2, level=LEVEL, tol=1e-3, processes=2,
        faults="raise@1,1",
        retry=RetryPolicy(backoff_seconds=0.0, jitter=0.0),
        trace=rec,
    )
    return result, rec


class TestPlainRunTrace:
    def test_every_grid_has_a_completed_job_span(self, traced_run):
        result, rec = traced_run
        analysis = TraceAnalysis(rec.events())
        assert {j.key for j in analysis.jobs} == set(result.payloads)

    def test_submit_start_done_ordering(self, traced_run):
        _, rec = traced_run
        analysis = TraceAnalysis(rec.events())
        for job in analysis.jobs:
            assert job.submit_t is not None
            assert job.submit_t <= job.start_t <= job.done_t

    def test_worker_pids_populate_lanes(self, traced_run):
        result, rec = traced_run
        analysis = TraceAnalysis(rec.events())
        pids = {p.worker_pid for p in result.payloads.values()}
        assert set(analysis.worker_utilization()) <= pids

    def test_serial_worker_utilization_at_most_one(self, traced_run):
        _, rec = traced_run
        util = TraceAnalysis(rec.events()).worker_utilization()
        for frac in util.values():
            assert frac <= 1.0 + 1e-9

    def test_span_nesting_holds(self, traced_run):
        _, rec = traced_run
        spans = TraceAnalysis(rec.events()).check_span_nesting()
        names = {name for name, _, _ in spans}
        assert {"fanout", "prolongation"} <= names

    def test_round_trip_preserves_analysis(self, traced_run, tmp_path):
        _, rec = traced_run
        path = tmp_path / "run.jsonl"
        write_jsonl(rec.events(), path)
        direct = TraceAnalysis(rec.events())
        reloaded = TraceAnalysis(read_jsonl(path))
        assert reloaded.worker_utilization() == direct.worker_utilization()
        assert (
            reloaded.critical_path_seconds == direct.critical_path_seconds
        )
        reloaded.check_span_nesting()

    def test_untraced_run_unaffected(self):
        result = run_multiprocessing(root=2, level=1, tol=1e-3, processes=2)
        assert len(result.payloads) == 3


class TestFaultedRunTrace:
    def test_fault_and_retry_events_present(self, traced_faulted_run):
        _, rec = traced_faulted_run
        analysis = TraceAnalysis(rec.events())
        assert analysis.n_faults >= 1
        assert analysis.n_retries >= 1

    def test_recovery_agrees_with_fault_report(self, traced_faulted_run):
        result, rec = traced_faulted_run
        analysis = TraceAnalysis(rec.events())
        report = result.fault_report
        assert analysis.n_faults == len(report.events)
        assert analysis.recovered_keys == set(report.recovered_keys)

    def test_replayed_attempt_traced(self, traced_faulted_run):
        _, rec = traced_faulted_run
        analysis = TraceAnalysis(rec.events())
        replays = [j for j in analysis.jobs if j.attempt > 1]
        assert any(j.key == (1, 1) for j in replays)
        assert analysis.recovery_overhead_seconds > 0.0

    def test_span_nesting_survives_faults(self, traced_faulted_run):
        _, rec = traced_faulted_run
        TraceAnalysis(rec.events()).check_span_nesting()

    def test_result_identical_to_fault_free(self, traced_faulted_run):
        import numpy as np

        result, _ = traced_faulted_run
        clean = run_multiprocessing(root=2, level=LEVEL, tol=1e-3, processes=2)
        assert np.array_equal(result.combined, clean.combined)


class TestManifoldTrace:
    def test_runtime_events_land_in_recorder(self):
        rec = TraceRecorder()
        with recording(rec):
            runtime = Runtime("traced")
            runtime.raise_event(Event("rendezvous"))
            runtime.raise_event(Event("death_worker"))
            runtime.raise_event(Event("custom_thing"))
            runtime.shutdown()
        kinds = [e.kind for e in rec.events()]
        assert "rendezvous" in kinds
        assert "death_worker" in kinds
        assert "manifold_event" in kinds

    def test_no_recorder_no_events(self):
        runtime = Runtime("untraced")
        runtime.raise_event(Event("rendezvous"))
        runtime.shutdown()  # nothing to assert beyond not raising
