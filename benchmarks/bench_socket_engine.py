"""The socket engine's coordination tax, priced against the fork pool.

The distributed configuration pays for what the in-process pool gets
free: daemon spawn (process + import, not just a fork), a framed TCP
round trip per job, and heartbeat traffic.  This bench measures that
tax end to end — same problem, same level, ``engine="socket"`` over
loopback daemons vs the warm fork pool — and itemizes the network side
from the engine's own accounting (framed bytes, send/recv seconds,
daemon spawn time).

There is no speedup claim here: on one machine the socket engine is
strictly overhead, and the point of the measurement is that the
overhead is (a) bounded and (b) fully accounted for — the wire seconds
plus spawn cost explain the gap.  Bitwise identity is asserted both
ways.

Runs in a fast smoke mode inside the tier-1 suite; set
``REPRO_SOCKET_ENGINE_FULL=1`` for the full measurement.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.restructured import run_multiprocessing, shutdown_pool

ROOT = 2


@pytest.mark.benchmark(group="socket-engine")
def test_socket_engine_vs_fork_pool(benchmark, socket_engine_settings):
    """Whole runs through each engine, identity asserted."""
    level = socket_engine_settings["level"]
    tol = socket_engine_settings["tol"]
    processes = socket_engine_settings["processes"]
    rounds = socket_engine_settings["rounds"]

    shutdown_pool()
    reference = run_multiprocessing(
        root=ROOT, level=level, tol=tol, processes=processes
    )
    pool_samples: list[float] = []

    def timed_pool_run():
        # per-round setup: interleave the engines so load hits both
        started = time.perf_counter()
        result = run_multiprocessing(
            root=ROOT, level=level, tol=tol, processes=processes
        )
        pool_samples.append(time.perf_counter() - started)
        assert np.array_equal(result.combined, reference.combined)

    result = benchmark.pedantic(
        lambda: run_multiprocessing(
            root=ROOT, level=level, tol=tol, processes=processes,
            engine="socket", hosts=f"localhost:{processes}",
        ),
        setup=timed_pool_run,
        rounds=rounds,
        iterations=1,
    )
    shutdown_pool()

    assert np.array_equal(result.combined, reference.combined)
    assert result.engine == "socket"
    assert result.daemons == processes
    assert result.reconnects == 0
    assert result.net_bytes_received > result.net_bytes_sent > 0

    pool_seconds = min(pool_samples)
    socket_seconds = min(benchmark.stats.stats.data)
    wire_seconds = result.net_send_seconds + result.net_recv_seconds
    spawn_seconds = result.pool_cold_start_seconds
    benchmark.extra_info["level"] = level
    benchmark.extra_info["pool_seconds"] = pool_seconds
    benchmark.extra_info["socket_seconds"] = socket_seconds
    benchmark.extra_info["daemon_spawn_seconds"] = spawn_seconds
    benchmark.extra_info["wire_seconds"] = wire_seconds
    benchmark.extra_info["framed_bytes"] = (
        result.net_bytes_sent + result.net_bytes_received
    )
    print(f"\nsocket engine at level {level}: pool {pool_seconds:.3f}s vs "
          f"socket {socket_seconds:.3f}s (daemon spawn {spawn_seconds:.3f}s, "
          f"wire {wire_seconds * 1e3:.1f} ms, "
          f"{result.net_bytes_sent + result.net_bytes_received} framed bytes)")
    # the tax must stay bounded: daemon spawn dominates, the wire is
    # milliseconds — the socket run may not cost more than the pool run
    # plus the spawn it visibly paid, with generous headroom for noise
    assert socket_seconds <= pool_seconds + spawn_seconds + 2.0
