"""The socket-backed distributed task engine: MLINK semantics over TCP.

The cluster simulator predicts what the paper's MANIFOLD/PVM deployment
*would* do; this module runs the same master/worker protocol over real
sockets.  A :class:`WorkerDaemon` is one machine of the paper's testbed:
an OS process listening on a TCP port, hosting task instances (the
:class:`~repro.restructured.taskengine.TaskInstanceEngine`) whose
``{load N}`` capacity and ``{perpetual}`` reuse mirror the MLINK
pattern attributes, reachable by address exactly like a CONFIG
``{host}`` entry.  The master side (:class:`SocketTaskEngine`) plays
the MANIFOLD master: it spawns or connects to daemons, ships job specs,
and collects results — every byte crossing a real socket.

Master threading model: **one thread, one selector**.  The master owns
every daemon socket through a single :class:`selectors.DefaultSelector`
reactor — non-blocking sockets with a stateful per-link
:class:`_FrameDecoder` doing incremental frame decoding, a per-link
write queue with partial-send handling, and a :class:`_TimerWheel` that
schedules everything the thread-per-link predecessor used to block on:
retry backoff, reconnect backoff, heartbeat-silence deadlines, per-job
deadlines.  No code path on the dispatch loop ever calls
``time.sleep``; its only blocking point is ``selector.select`` with the
wheel's next due time as the timeout.  That is what lets one master
hold dozens (or hundreds) of daemon links without a reader thread per
link, and it removes a whole class of head-of-line stalls: one grid
backing off, or one flapping daemon reconnecting, no longer freezes
completion handling for every healthy daemon.

Wire protocol: length-prefixed frames.  A frame is an 8-byte header
(``RPRO`` magic + big-endian payload length) followed by the pickled
``(kind, data)`` body.  Kinds: ``hello``/``heartbeat``/``result``/
``error`` from the daemon, ``job``/``stop`` from the master.  The magic
check rejects cross-talk from a non-daemon peer before any unpickling.

Failure model — composing with the resilience ladder of
:mod:`repro.resilience`:

* a **dropped connection** (daemon killed, network reset, truncated
  frame) convicts every job in flight on that daemon as a ``crash``
  fault; the master reconnects (re-spawning a local daemon, or
  re-dialing a remote one) with timer-driven exponential backoff,
  recorded as a ``reconnect`` trace event;
* a **silent daemon** — no frame within ``heartbeat_timeout`` — is a
  ``hang``: the daemon is killed and replaced, its jobs re-dispatched;
* a **per-job deadline** (cost-model-scaled) catches a wedged job on an
  otherwise healthy daemon; the daemon is replaced so the wedged
  compute cannot outlive the run (or scribble into a reclaimed lease);
* escalation follows the same :class:`~repro.resilience.policy.
  EscalationPolicy` ladder as the fork pool — retry, reassign,
  in-master sequential fallback, structured failure.

Replays are idempotent: results are keyed ``(l, m)`` and a result frame
whose attempt does not match the outstanding one is dropped, so a
daemon that answers *after* being declared lost cannot corrupt the run.

Data plane: a **locally spawned** daemon shares the master's machine,
so the zero-copy shm transport works — the daemon writes through the
job's :class:`~repro.perf.dataplane.ShmLease` and only the descriptor
crosses the socket.  A daemon reached by address is not known to be
host-local, so its jobs carry no lease and the payload falls back to
pickle framing (the per-payload fallback of :func:`~repro.restructured.
worker.ship_payload` keeps either path bitwise identical).  One
subtlety: an attach inside a spawned daemon registers the segment with
the *daemon's* resource tracker, which would unlink the master's live
segment when the daemon exits — the daemon unregisters each segment
right after its first attach (:func:`_untrack_after_ship`).
"""

from __future__ import annotations

import errno
import heapq
import os
import pickle
import selectors
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from .taskengine import TaskInstanceDied, TaskInstanceEngine
from .worker import SubsolveJobSpec, SubsolvePayload, execute_job, ship_payload

__all__ = [
    "FrameError",
    "send_frame",
    "recv_frame",
    "HostSpec",
    "parse_hosts",
    "WorkerDaemon",
    "NetOutcome",
    "SocketTaskEngine",
]

#: frame header: magic + big-endian body length
MAGIC = b"RPRO"
_HEADER = struct.Struct("!4sI")

#: refuse to allocate absurd frames (a corrupted or hostile header)
MAX_FRAME_BYTES = 1 << 30

#: scheduling slack added to deadline timers so a conviction never
#: lands a clock-granularity tick *before* its full window has elapsed
_DEADLINE_GRACE = 0.005


class FrameError(ConnectionError):
    """The framed stream broke: bad magic, truncation, oversize."""


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes from a blocking socket.

    Returns ``None`` on a clean EOF at a frame boundary (the peer closed
    between frames); raises :class:`FrameError` on EOF mid-frame (the
    peer died with a frame in flight — e.g. a connection dropped during
    a result transfer).  The daemon side and the tests use this; the
    master's reactor decodes incrementally through :class:`_FrameDecoder`
    instead, because it must never block waiting for one peer.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and not chunks:
                return None
            raise FrameError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, kind: str, data: object) -> tuple[int, float]:
    """Send one ``(kind, data)`` frame; returns ``(bytes, seconds)``.

    The seconds are the time spent inside ``sendall`` — with a full
    socket buffer that is real backpressure wait, the master-side
    ``send_wait`` of the overhead decomposition.
    """
    body = pickle.dumps((kind, data), protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(MAGIC, len(body)) + body
    t0 = time.perf_counter()
    sock.sendall(frame)
    return len(frame), time.perf_counter() - t0


def recv_frame(
    sock: socket.socket,
) -> Optional[tuple[str, object, int, float]]:
    """Receive one frame; returns ``(kind, data, bytes, seconds)``.

    ``None`` means the peer closed cleanly between frames.  The seconds
    cover only the *body* transfer (the header wait is idle time, not
    network time).
    """
    header = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} bytes exceeds the cap")
    t0 = time.perf_counter()
    body = _recv_exact(sock, length, at_boundary=False)
    seconds = time.perf_counter() - t0
    kind, data = pickle.loads(body)
    return kind, data, _HEADER.size + length, seconds


class _FrameDecoder:
    """Stateful incremental decoder of one link's ``RPRO`` frame stream.

    The reactor feeds it whatever ``recv`` returned; it hands back every
    frame those bytes completed.  This replaces the blocking
    ``_recv_exact`` on the master's hot path — the reactor never waits
    for a specific peer's next byte, it consumes whatever any socket
    offers.  A frame's ``seconds`` span from its header being parsed to
    its body completing, the incremental analogue of the blocking body
    transfer the threaded reader used to time.
    """

    __slots__ = ("_buf", "_body_len", "_body_t0")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._body_len: Optional[int] = None
        self._body_t0 = 0.0

    @property
    def mid_frame(self) -> bool:
        """True when an EOF now would truncate a frame in flight."""
        return self._body_len is not None or bool(self._buf)

    def describe_partial(self) -> str:
        """How far into the current frame the stream broke."""
        if self._body_len is not None:
            return f"{len(self._buf)}/{self._body_len} body bytes"
        return f"{len(self._buf)}/{_HEADER.size} header bytes"

    def feed(self, data: bytes) -> list[tuple[str, object, int, float]]:
        """Consume ``data``; return the ``(kind, data, bytes, seconds)``
        frames it completed (possibly none, possibly several)."""
        self._buf.extend(data)
        frames: list[tuple[str, object, int, float]] = []
        while True:
            if self._body_len is None:
                if len(self._buf) < _HEADER.size:
                    break
                magic, length = _HEADER.unpack(bytes(self._buf[: _HEADER.size]))
                if magic != MAGIC:
                    raise FrameError(f"bad frame magic {magic!r}")
                if length > MAX_FRAME_BYTES:
                    raise FrameError(f"frame of {length} bytes exceeds the cap")
                del self._buf[: _HEADER.size]
                self._body_len = length
                self._body_t0 = time.perf_counter()
            if len(self._buf) < self._body_len:
                break
            body = bytes(self._buf[: self._body_len])
            del self._buf[: self._body_len]
            nbytes = _HEADER.size + self._body_len
            seconds = time.perf_counter() - self._body_t0
            self._body_len = None
            kind, payload = pickle.loads(body)
            frames.append((kind, payload, nbytes, seconds))
        return frames


class _TimerWheel:
    """The reactor's time source: a heap of ``(due, seq, callback)``.

    Everything the thread-per-link engine used to ``time.sleep`` for —
    retry backoff, reconnect backoff, heartbeat-silence deadlines,
    per-job deadlines — becomes a scheduled callback here, so the
    dispatch loop's only blocking point is ``selector.select`` with
    :meth:`next_timeout` as its timeout.  Callbacks validate their
    subject at fire time (epoch, pending identity, revive token)
    instead of being cancelled, which keeps scheduling O(log n) with no
    bookkeeping on the hot path.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` on the reactor thread ``delay`` seconds on."""
        self._seq += 1
        heapq.heappush(
            self._heap, (self.clock() + max(0.0, delay), self._seq, callback)
        )

    def next_timeout(self) -> Optional[float]:
        """Seconds until the earliest timer, ``None`` on an empty wheel."""
        if not self._heap:
            return None
        return max(0.0, self._heap[0][0] - self.clock())

    def fire_due(self) -> int:
        """Run every callback whose due time has passed; returns how many."""
        fired = 0
        while self._heap and self._heap[0][0] <= self.clock():
            _, _, callback = heapq.heappop(self._heap)
            callback()
            fired += 1
        return fired


def arm_heartbeat_deadline(
    timers: _TimerWheel,
    link: "_DaemonLink",
    timeout: float,
    on_silent: Callable[["_DaemonLink"], None],
) -> None:
    """Watch one link for heartbeat silence on the reactor's timer wheel.

    Re-arms itself at ``last_frame + timeout`` until either the link is
    gone (death or replacement disarms it through the epoch guard), or
    the deadline passes with jobs in flight — then ``on_silent(link)``
    convicts it.  A silent link with nothing in flight is left alone
    (an idle daemon owes no result) and simply re-checked a timeout
    later.  Single-threaded by construction: ``last_frame`` is written
    by the same reactor thread that reads it here, so the cross-thread
    race of the reader-thread model cannot exist.
    """
    epoch = link.epoch

    def fire() -> None:
        if not link.alive or link.epoch != epoch:
            return
        now = timers.clock()
        deadline = link.last_frame + timeout
        if now < deadline:
            timers.schedule(deadline - now + _DEADLINE_GRACE, fire)
        elif link.inflight:
            on_silent(link)
        else:
            timers.schedule(timeout + _DEADLINE_GRACE, fire)

    timers.schedule(timeout + _DEADLINE_GRACE, fire)


# ----------------------------------------------------------------------
# the hosts grammar
# ----------------------------------------------------------------------
_LOCAL_NAMES = ("localhost", "127.0.0.1", "local")


@dataclass(frozen=True)
class HostSpec:
    """One entry of the ``--hosts`` list.

    ``spawn > 0`` means: fork that many loopback daemons on this machine
    (the CONFIG ``{host}`` entries of a single-machine run; shm-capable
    because they share the master's memory).  ``port`` names an
    already-listening daemon to dial instead — not known to be
    host-local, so its payloads travel by pickle framing.
    """

    host: str
    spawn: int = 0
    port: Optional[int] = None

    @property
    def local(self) -> bool:
        return self.spawn > 0


def parse_hosts(text: str) -> tuple[HostSpec, ...]:
    """Parse the ``--hosts`` grammar.

    ::

        hosts  := entry (',' entry)*
        entry  := 'localhost' [':' count]     # spawn count loopback daemons
                | 'tcp://' host ':' port      # dial a running daemon

    Examples: ``localhost:2`` (two spawned daemons),
    ``localhost:2,tcp://node7:9123`` (two local plus one remote).
    """
    specs: list[HostSpec] = []
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("tcp://"):
            rest = entry[len("tcp://") :]
            host, sep, port_text = rest.rpartition(":")
            if not sep or not host:
                raise ValueError(
                    f"bad hosts entry {entry!r}: expected tcp://host:port"
                )
            try:
                port = int(port_text)
            except ValueError:
                raise ValueError(
                    f"bad port {port_text!r} in hosts entry {entry!r}"
                ) from None
            specs.append(HostSpec(host=host, port=port))
            continue
        host, _, count_text = entry.partition(":")
        if host not in _LOCAL_NAMES:
            raise ValueError(
                f"bad hosts entry {entry!r}: only 'localhost[:N]' entries "
                "are spawnable; use tcp://host:port for a running daemon"
            )
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise ValueError(
                f"bad daemon count {count_text!r} in hosts entry {entry!r}"
            ) from None
        if count < 1:
            raise ValueError(f"daemon count must be >= 1 in {entry!r}")
        specs.append(HostSpec(host="127.0.0.1", spawn=count))
    if not specs:
        raise ValueError(f"hosts spec {text!r} contains no entries")
    return tuple(specs)


# ----------------------------------------------------------------------
# the daemon side
# ----------------------------------------------------------------------
def _untrack_after_ship(payload: SubsolvePayload, untracked: set) -> None:
    """Cancel this process's resource-tracker claim on a just-attached
    segment.

    The master owns the arena; a spawned daemon that attaches a segment
    must not let *its* tracker unlink the master's live block at daemon
    exit.  Attaches are cached per name (:func:`~repro.perf.dataplane.
    _writer_segment`), so one unregister per first attach balances the
    books exactly.
    """
    descriptor = payload.descriptor
    if descriptor is None or descriptor.name in untracked:
        return
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(descriptor.name, "shared_memory")
    except Exception:  # pragma: no cover - tracker not running
        pass
    untracked.add(descriptor.name)


class WorkerDaemon:
    """One machine of the testbed: task instances behind a TCP port.

    ``capacity`` is the MLINK ``{load N}`` limit — how many jobs may
    compute concurrently, each in its own OS task instance;
    ``perpetual`` keeps an emptied instance alive to welcome the next
    worker.  One master connection is served at a time; after a
    disconnect the daemon returns to ``accept`` so a reconnecting
    master finds it again.  A ``stop`` frame is a *clean* shutdown:
    in-flight jobs get ``drain_timeout`` seconds to finish and send
    their results before the connection closes, instead of being
    silently dropped mid-compute.

    Fault injection happens *here*, where the paper's faults happen —
    on the worker machine: a matched ``crash`` rule kills the whole
    daemon process unannounced (``os._exit``), ``hang`` wedges the job's
    serving thread, ``raise`` reports a structured error frame, ``slow``
    stretches the job to factor × its own duration.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        capacity: int = 1,
        perpetual: bool = True,
        heartbeat_interval: float = 0.5,
        drain_timeout: float = 5.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.heartbeat_interval = heartbeat_interval
        self.drain_timeout = drain_timeout
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()[:2]
        self._engine = TaskInstanceEngine(
            perpetual=perpetual, max_instances=capacity
        )
        self._stop = threading.Event()
        self._send_lock = threading.Lock()
        self._jobs_lock = threading.Lock()
        self._job_threads: list[threading.Thread] = []
        self._untracked: set = set()
        self.jobs_served = 0
        #: chaos hook (tests only): keys whose first result frame is
        #: truncated mid-transfer, the connection hard-closed under it
        self._drop_result_keys: set = set()

    @property
    def port(self) -> int:
        return self.address[1]

    def announce(self, stream=None) -> None:
        """Print the spawner handshake line (``LISTENING <port>``)."""
        print(f"LISTENING {self.port}", file=stream or sys.stdout, flush=True)

    def stop(self) -> None:
        self._stop.set()

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept masters until stopped; serve one connection at a time."""
        self._listener.settimeout(0.2)
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                try:
                    self._serve_connection(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - defensive
                        pass
        finally:
            self._listener.close()
            self._engine.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        self._send(conn, "hello", {
            "pid": os.getpid(),
            "capacity": self.capacity,
            "perpetual": self._engine.perpetual,
        })
        beat_stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(conn, beat_stop), daemon=True
        )
        beat.start()
        try:
            while not self._stop.is_set():
                try:
                    frame = recv_frame(conn)
                except (FrameError, OSError):
                    return  # master gone; back to accept
                if frame is None:
                    return
                kind, data, _, _ = frame
                if kind == "stop":
                    self._stop.set()
                    self._drain_jobs()
                    return
                if kind == "job":
                    thread = threading.Thread(
                        target=self._run_job, args=(conn, data), daemon=True
                    )
                    with self._jobs_lock:
                        self._job_threads = [
                            t for t in self._job_threads if t.is_alive()
                        ]
                        self._job_threads.append(thread)
                    thread.start()
                # unknown kinds are ignored: forward compatibility
        finally:
            beat_stop.set()
            beat.join(timeout=1.0)

    def _drain_jobs(self) -> None:
        """Give in-flight job threads ``drain_timeout`` seconds, total,
        to finish and send their results over the still-open connection.

        Without this, a ``stop`` frame abandoned whatever ``_run_job``
        threads were computing: the connection closed under them and
        their finished results went nowhere.
        """
        deadline = time.monotonic() + self.drain_timeout
        with self._jobs_lock:
            threads = [t for t in self._job_threads if t.is_alive()]
        for thread in threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        with self._jobs_lock:
            self._job_threads = [t for t in self._job_threads if t.is_alive()]

    def _heartbeat_loop(self, conn: socket.socket, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            if not self._send(conn, "heartbeat", {"pid": os.getpid()}):
                return

    def _send(self, conn: socket.socket, kind: str, data: object) -> bool:
        """Locked send; ``False`` when the master is gone (the job's
        result is simply lost — the master's re-dispatch recomputes it)."""
        with self._send_lock:
            try:
                send_frame(conn, kind, data)
                return True
            except (FrameError, OSError):
                return False

    # ------------------------------------------------------------------
    def _run_job(self, conn: socket.socket, data: dict) -> None:
        spec: SubsolveJobSpec = data["spec"]
        plan = data.get("plan")
        attempt = int(data.get("attempt", 1))
        use_cache = bool(data.get("use_cache", True))
        lease = data.get("lease")
        key = (spec.l, spec.m)
        action = plan.action(spec.l, spec.m, attempt) if plan is not None else None
        if action is not None and action.kind == "crash":
            # the daemon kill: this machine drops off the network,
            # task instances and all, exactly as unannounced as a
            # power failure looks from the master's side
            os._exit(action.exit_code)
        if action is not None and action.kind == "hang":
            time.sleep(action.seconds)
        if action is not None and action.kind == "raise":
            self._send(conn, "error", {
                "key": key,
                "attempt": attempt,
                "fault_kind": "exception",
                "error": (
                    f"injected transient fault on grid {key}, "
                    f"attempt {attempt}"
                ),
            })
            return
        started = time.perf_counter()
        try:
            payload = self._engine.compute(spec, use_cache=use_cache)
        except TaskInstanceDied as exc:
            self._send(conn, "error", {
                "key": key,
                "attempt": attempt,
                "fault_kind": exc.fault_kind,
                "error": str(exc),
            })
            return
        except Exception as exc:  # noqa: BLE001 - marshal the failure back
            self._send(conn, "error", {
                "key": key,
                "attempt": attempt,
                "fault_kind": "exception",
                "error": f"{type(exc).__name__}: {exc}",
            })
            return
        if action is not None and action.kind == "slow":
            time.sleep((action.factor - 1.0) * (time.perf_counter() - started))
        payload = ship_payload(payload, lease)
        _untrack_after_ship(payload, self._untracked)
        if key in self._drop_result_keys:
            self._drop_result_keys.discard(key)
            self._drop_mid_result(conn, key, attempt, payload)
            return
        if self._send(conn, "result", {
            "key": key, "attempt": attempt, "payload": payload,
        }):
            self.jobs_served += 1

    def _drop_mid_result(
        self, conn: socket.socket, key, attempt: int, payload
    ) -> None:
        """Chaos hook: truncate the result frame and kill the link —
        a connection dropped during the result transfer."""
        body = pickle.dumps(
            ("result", {"key": key, "attempt": attempt, "payload": payload}),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        frame = _HEADER.pack(MAGIC, len(body)) + body
        with self._send_lock:
            try:
                conn.sendall(frame[: max(_HEADER.size, len(frame) // 2)])
            except OSError:
                pass
            # shutdown, not just close: the serve loop's thread is
            # blocked in recv() on this fd, and a bare close() would
            # leave the file description held by that syscall — no FIN
            # ever goes out and the master waits for body bytes forever.
            # shutdown() terminates the connection regardless.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# the master side
# ----------------------------------------------------------------------
@dataclass
class _NetPending:
    """Master-side bookkeeping of one job attempt in flight on a daemon."""

    spec: SubsolveJobSpec
    attempt: int
    link: "_DaemonLink"
    deadline_at: float
    submitted_at: float
    lease: Optional[object] = None


class _OutFrame:
    """One queued outgoing frame with partial-send progress."""

    __slots__ = ("view", "offset", "kind", "key", "nbytes", "seconds")

    def __init__(self, frame: bytes, kind: str, key=None) -> None:
        self.view = memoryview(frame)
        self.offset = 0
        self.kind = kind
        self.key = key
        self.nbytes = len(frame)
        self.seconds = 0.0

    @property
    def done(self) -> bool:
        return self.offset >= self.nbytes


class _DaemonLink:
    """One daemon as the master sees it: a non-blocking socket plus the
    reactor-side receive/send/reconnect state.  No reader thread: the
    engine's selector loop is the only thing that ever touches this."""

    def __init__(
        self,
        name: str,
        *,
        spawned: bool,
        address: Optional[tuple[str, int]] = None,
    ) -> None:
        self.name = name
        self.spawned = spawned          # we own the process (loopback)
        self.shm_ok = spawned           # host-local => lease-capable
        self.address = address          # dial target for connect mode
        self.sock: Optional[socket.socket] = None
        self.proc: Optional[subprocess.Popen] = None
        self.capacity = 0               # learned from the hello frame
        self.pid: Optional[int] = None
        self.inflight: dict[tuple[int, int], _NetPending] = {}
        self.last_frame = time.monotonic()
        self.alive = False
        self.reconnects = 0
        #: bumped on every (re)attach; heartbeat watches from an older
        #: epoch are void — a dead connection's deadline must not
        #: convict its successor
        self.epoch = 0
        # reactor-side receive/send state
        self.decoder = _FrameDecoder()
        self.sendq: deque[_OutFrame] = deque()
        self.events_mask = 0            # current selector registration
        # the timer-driven reconnect state machine (see run())
        self.reviving = False
        self.revive_reason = ""
        self.revive_t0 = 0.0
        #: bumped per revive attempt and on attach/detach; a timer fired
        #: for a stale token is a no-op (timers are never cancelled)
        self.revive_token = 0
        self.spawn_fd: Optional[int] = None
        self.spawn_buf = b""
        self.spawn_tail: deque = deque(maxlen=8)

    @property
    def free_slots(self) -> int:
        return max(0, self.capacity - len(self.inflight))


@dataclass
class NetOutcome:
    """What one socket-engine run produced (the resilient-outcome shape
    plus the network accounting)."""

    payloads: dict[tuple[int, int], SubsolvePayload]
    completion_order: tuple[tuple[int, int], ...]
    attempts: int
    events: tuple
    recovered_keys: tuple[tuple[int, int], ...]
    fallback_keys: tuple[tuple[int, int], ...]
    reconnects: int
    daemons: int
    bytes_sent: int
    bytes_received: int
    net_send_seconds: float
    net_recv_seconds: float


class SocketTaskEngine:
    """The master of the socket-backed distributed configuration.

    ``hosts`` is a spec string (see :func:`parse_hosts`) or a sequence
    of :class:`HostSpec`.  Spawned daemons are private to this engine
    and torn down by :meth:`close`; dialed daemons are left running.

    The engine is a single-threaded reactor: every daemon socket is
    non-blocking and owned by one ``selectors.DefaultSelector``, so the
    master's thread count stays O(1) however many links it holds.
    ``poll_interval`` is kept as the idle-select fallback for an empty
    timer wheel; with the wheel armed (always, once a link is alive) it
    is effectively unused.
    """

    def __init__(
        self,
        hosts="localhost:2",
        *,
        trace=None,
        heartbeat_timeout: float = 5.0,
        daemon_heartbeat_interval: float = 0.5,
        connect_timeout: float = 20.0,
        reconnect_backoff: float = 0.05,
        max_reconnects: int = 5,
        poll_interval: float = 0.02,
    ) -> None:
        self.host_specs = (
            parse_hosts(hosts) if isinstance(hosts, str) else tuple(hosts)
        )
        self.trace = trace
        self.heartbeat_timeout = heartbeat_timeout
        self.daemon_heartbeat_interval = daemon_heartbeat_interval
        self.connect_timeout = connect_timeout
        self.reconnect_backoff = reconnect_backoff
        self.max_reconnects = max_reconnects
        self.poll_interval = poll_interval
        self._selector = selectors.DefaultSelector()
        self._closed = False
        self.reconnects = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.net_send_seconds = 0.0
        self.net_recv_seconds = 0.0
        self.links: list[_DaemonLink] = []
        t0 = time.perf_counter()
        try:
            index = 0
            for spec in self.host_specs:
                if spec.local:
                    for _ in range(spec.spawn):
                        link = _DaemonLink(f"daemon-{index}", spawned=True)
                        # launch first, handshake below: the daemons
                        # boot concurrently, so spawning 32 links costs
                        # one import wave, not 32 sequential ones
                        link.proc = self._launch()
                        self.links.append(link)
                        index += 1
                else:
                    link = _DaemonLink(
                        f"daemon-{index}",
                        spawned=False,
                        address=(spec.host, spec.port),
                    )
                    self.links.append(link)
                    index += 1
            for link in self.links:
                if link.spawned:
                    port = self._await_listening(link)
                    self._attach(link, ("127.0.0.1", port))
                else:
                    self._attach(link, link.address)
        except Exception:
            self.close()
            raise
        self.spawn_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # link lifecycle
    # ------------------------------------------------------------------
    def _launch(self) -> subprocess.Popen:
        """Fork one loopback daemon; returns before it announces."""
        cmd = [
            sys.executable, "-m", "repro", "worker-daemon",
            "--port", "0",
            "--capacity", "1",
            "--heartbeat-interval", str(self.daemon_heartbeat_interval),
        ]
        return subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )

    def _await_listening(self, link: _DaemonLink) -> int:
        """Block until the spawned daemon announces its port (init-time
        only; revive-time spawns handshake through the selector)."""
        proc = link.proc
        tail: deque[str] = deque(maxlen=8)
        while True:
            line = proc.stdout.readline()
            if not line:
                break
            text = line.decode(errors="replace").rstrip()
            tail.append(text)
            if text.startswith("LISTENING "):
                return int(text.split()[1])
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - defensive
            proc.kill()
            proc.wait(timeout=5.0)
        raise RuntimeError(
            f"{link.name} failed to start: " + " | ".join(tail)
        )

    def _attach(self, link: _DaemonLink, address: tuple[str, int]) -> None:
        """Connect (blocking; init-time only) and adopt the socket."""
        sock = socket.create_connection(address, timeout=self.connect_timeout)
        self._adopt(link, sock)

    def _adopt(self, link: _DaemonLink, sock: socket.socket) -> None:
        """Take a connected socket as the link's live connection: make
        it non-blocking, reset the per-link receive/send state, and
        hand it to the selector."""
        sock.setblocking(False)
        link.sock = sock
        link.alive = True
        link.capacity = 0  # (re)learned from the fresh hello
        link.last_frame = time.monotonic()
        link.epoch += 1
        link.revive_token += 1
        link.reviving = False
        link.decoder = _FrameDecoder()
        link.sendq.clear()
        self._register(sock, selectors.EVENT_READ, ("io", link))
        link.events_mask = selectors.EVENT_READ

    def _register(self, fileobj, events, data) -> None:
        try:
            self._selector.register(fileobj, events, data)
        except KeyError:  # pragma: no cover - defensive re-register
            self._selector.modify(fileobj, events, data)

    def _unregister(self, fileobj) -> None:
        try:
            self._selector.unregister(fileobj)
        except (KeyError, ValueError):
            pass  # not registered, or the selector is already closed

    def _detach(self, link: _DaemonLink) -> None:
        """Tear down everything the link holds — socket, queued writes,
        half-done reconnect, daemon process.  No reader thread to join:
        the reactor was the only reader, and it is the caller."""
        link.alive = False
        link.reviving = False
        link.revive_token += 1
        link.sendq.clear()
        link.events_mask = 0
        if link.sock is not None:
            self._unregister(link.sock)
            # shutdown before close: deterministically sends the FIN/RST
            # whatever state the connection is in, so a dialed daemon's
            # serve loop (blocked in recv on its end) wakes and returns
            # to accept instead of serving a dead connection
            try:
                link.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                link.sock.close()
            except OSError:  # pragma: no cover - defensive
                pass
            link.sock = None
        if link.spawn_fd is not None:
            self._unregister(link.spawn_fd)
            link.spawn_fd = None
            link.spawn_buf = b""
        if link.proc is not None:
            if link.proc.poll() is None:
                link.proc.kill()
            try:
                link.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
            if link.proc.stdout is not None:
                link.proc.stdout.close()
            link.proc = None

    @property
    def total_capacity(self) -> int:
        known = sum(link.capacity for link in self.links if link.alive)
        # before the hellos arrive, the spawned count is the best guess
        return known or sum(
            s.spawn if s.local else 1 for s in self.host_specs
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for link in self.links:
            if link.alive and link.sock is not None:
                try:
                    link.sock.setblocking(True)
                    link.sock.settimeout(2.0)
                    send_frame(link.sock, "stop", {})
                except (FrameError, OSError):
                    pass
            self._detach(link)
        self._selector.close()

    def __enter__(self) -> "SocketTaskEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # the dispatch reactor
    # ------------------------------------------------------------------
    def run(
        self,
        ordered: list[SubsolveJobSpec],
        *,
        escalation,
        plan=None,
        use_cache: bool = True,
        cost_model=None,
        fault_log=None,
        sink=None,
        trace=None,
    ) -> NetOutcome:
        """Dispatch ``ordered`` (LPT order preserved) across the daemons.

        Mirrors the fork-pool resilient loop: per-job deadlines, fault
        escalation, idempotent completion keyed ``(l, m)`` — with the
        detection channels of a network: connection loss and heartbeat
        silence instead of PID liveness.  The loop is a single-threaded
        selectors reactor: reads, writes, retries, reconnects and every
        deadline all multiplex through one ``select``, so a fault or a
        flapping daemon on one link never blocks completion handling on
        another.
        """
        from repro.resilience import (
            EscalationStep,
            FaultEvent,
            FaultLog,
            FaultToleranceExhausted,
        )

        trace = trace if trace is not None else self.trace
        log = fault_log if fault_log is not None else FaultLog()
        retry, deadline_policy = escalation.retry, escalation.deadline
        ready: deque[tuple[SubsolveJobSpec, int]] = deque(
            (spec, 1) for spec in ordered
        )
        completed: dict[tuple[int, int], SubsolvePayload] = {}
        completion_order: list[tuple[int, int]] = []
        pending: dict[tuple[int, int], _NetPending] = {}
        recovered_keys: list[tuple[int, int]] = []
        fallback_keys: list[tuple[int, int]] = []
        attempts = 0
        #: jobs parked on a retry-backoff timer: neither pending nor
        #: ready, but the run is not done until they re-enter the queue
        backoff_waiting = 0
        timers = _TimerWheel()
        clock = timers.clock

        def predicted(spec: SubsolveJobSpec) -> Optional[float]:
            if cost_model is None:
                return None
            return float(cost_model.predict_seconds(spec.l, spec.m, spec.tol))

        def record_net(kind: str, key, nbytes: int, seconds: float, **extra) -> None:
            if kind == "net_send":
                self.bytes_sent += nbytes
                self.net_send_seconds += seconds
            else:
                self.bytes_received += nbytes
                self.net_recv_seconds += seconds
            if trace is not None:
                trace.record(
                    kind, key=key, frame_bytes=nbytes, seconds=seconds, **extra
                )

        # ------------------------------------------------------------------
        # the write side: per-link queues with partial-send handling
        # ------------------------------------------------------------------
        def update_write_interest(link: _DaemonLink) -> None:
            if link.sock is None or not link.alive:
                return
            mask = selectors.EVENT_READ | (
                selectors.EVENT_WRITE if link.sendq else 0
            )
            if mask != link.events_mask:
                self._selector.modify(link.sock, mask, ("io", link))
                link.events_mask = mask

        def flush_sendq(link: _DaemonLink) -> bool:
            """Drain the link's write queue as far as the socket buffer
            allows; ``False`` when the connection broke under it (the
            link is already lost and its jobs re-routed)."""
            while link.sendq and link.alive:
                out = link.sendq[0]
                t0 = time.perf_counter()
                try:
                    sent = link.sock.send(out.view[out.offset :])
                except (BlockingIOError, InterruptedError):
                    break
                except OSError as exc:
                    lose_link(
                        link,
                        kind="crash",
                        detected_by="connection",
                        error=repr(exc),
                    )
                    return False
                out.seconds += time.perf_counter() - t0
                if sent == 0:  # pragma: no cover - defensive
                    break
                out.offset += sent
                if out.done:
                    link.sendq.popleft()
                    if out.kind == "job":
                        record_net(
                            "net_send",
                            out.key,
                            out.nbytes,
                            out.seconds,
                            frame_kind="job",
                        )
            update_write_interest(link)
            return True

        def queue_frame(link: _DaemonLink, kind: str, data: object, key=None) -> bool:
            body = pickle.dumps((kind, data), protocol=pickle.HIGHEST_PROTOCOL)
            link.sendq.append(
                _OutFrame(_HEADER.pack(MAGIC, len(body)) + body, kind, key)
            )
            return flush_sendq(link)

        # ------------------------------------------------------------------
        # dispatch and completion
        # ------------------------------------------------------------------
        def submit(spec: SubsolveJobSpec, attempt: int, link: _DaemonLink) -> bool:
            nonlocal attempts
            key = (spec.l, spec.m)
            lease = (
                sink.lease_for(spec)
                if sink is not None and link.shm_ok
                else None
            )
            attempts += 1
            now = clock()
            job = _NetPending(
                spec=spec,
                attempt=attempt,
                link=link,
                deadline_at=now + deadline_policy.deadline_seconds(predicted(spec)),
                submitted_at=now,
                lease=lease,
            )
            pending[key] = job
            link.inflight[key] = job
            if trace is not None:
                trace.record(
                    "job_submit", key=key, worker=link.name, attempt=attempt
                )
            # registered *before* the queue flush: if the send trips over
            # a dead socket, lose_link convicts and re-routes this job
            # along with the rest of the link's in-flight work
            if not queue_frame(link, "job", {
                "spec": spec,
                "plan": plan,
                "attempt": attempt,
                "use_cache": use_cache,
                "lease": lease,
            }, key=key):
                return False
            arm_job_deadline(key, job)
            return True

        def dispatch_ready() -> None:
            while ready:
                link = next(
                    (
                        l
                        for l in self.links
                        if l.alive and l.sock is not None and l.free_slots > 0
                    ),
                    None,
                )
                if link is None:
                    return
                spec, attempt = ready.popleft()
                submit(spec, attempt, link)

        def complete(key, attempt: int, payload: SubsolvePayload) -> None:
            from repro.perf.dataplane import DataPlaneError, StaleLeaseError

            job = pending.get(key)
            if job is None or job.attempt != attempt:
                return  # a stale replay from a daemon declared lost
            if sink is not None:
                try:
                    sink.consume(key, payload, attempt=attempt)
                except StaleLeaseError as exc:
                    handle_fault(
                        key, "stale", detected_by="dataplane", error=repr(exc)
                    )
                    return
                except DataPlaneError as exc:
                    handle_fault(
                        key,
                        "transport",
                        detected_by="dataplane",
                        error=repr(exc),
                    )
                    return
            del pending[key]
            job.link.inflight.pop(key, None)
            completed[key] = payload
            completion_order.append(key)
            from .parallel import _trace_payload

            _trace_payload(trace, payload, attempt=attempt)
            if job.attempt > 1 and key not in recovered_keys:
                recovered_keys.append(key)

        def fail_run(cause: Optional[BaseException] = None) -> None:
            report = log.report(
                recovered_keys=recovered_keys,
                fallback_keys=fallback_keys,
                failed_key=log.events()[-1].key if len(log) else None,
            )
            raise FaultToleranceExhausted(report) from cause

        def handle_fault(key, kind: str, detected_by: str, error: str = "") -> None:
            nonlocal backoff_waiting
            job = pending.pop(key)
            job.link.inflight.pop(key, None)
            if sink is not None and job.lease is not None:
                # safe unconditionally: every faulting path either ends
                # with the daemon process dead (crash/hang/deadline kill
                # it in lose_link) or with a daemon that never wrote
                # (error frame, refused descriptor)
                sink.plane.revoke(job.lease.name, reason=kind)
            step = escalation.decide(job.attempt, kind)
            event = FaultEvent(
                key=key,
                kind=kind,
                attempt=job.attempt,
                action=step.value,
                detected_by=detected_by,
                error=error,
                seconds_lost=clock() - job.submitted_at,
            )
            log.record(event)
            if trace is not None:
                trace.record_fault(event)
            if step in (EscalationStep.RETRY, EscalationStep.REASSIGN):
                # timer-scheduled, never slept: the reactor keeps serving
                # every other link's frames while this grid backs off
                delay = retry.delay_seconds(job.attempt, key)
                backoff_waiting += 1

                def requeue(job=job, key=key, kind=kind, delay=delay) -> None:
                    nonlocal backoff_waiting
                    backoff_waiting -= 1
                    if trace is not None:
                        trace.record(
                            "retry",
                            key=key,
                            attempt=job.attempt + 1,
                            cause=kind,
                            backoff_seconds=delay,
                        )
                    ready.appendleft((job.spec, job.attempt + 1))

                timers.schedule(delay, requeue)
            elif step is EscalationStep.FALLBACK:
                # graceful degradation: the master computes the grid
                # itself, sequentially and without injection; never
                # through the data plane (no lease, no descriptor)
                try:
                    payload = execute_job(job.spec, use_cache=use_cache)
                except Exception as exc:
                    log.record(
                        FaultEvent(
                            key=key,
                            kind="exception",
                            attempt=job.attempt,
                            action="fail",
                            detected_by="fallback",
                            error=repr(exc),
                        )
                    )
                    fail_run(exc)
                if sink is not None:
                    sink.consume(key, payload, attempt=job.attempt + 1)
                completed[key] = payload
                completion_order.append(key)
                fallback_keys.append(key)
                if trace is not None:
                    trace.record(
                        "fallback", key=key, attempt=job.attempt, cause=kind
                    )
                    from .parallel import _trace_payload

                    _trace_payload(
                        trace, payload, attempt=job.attempt + 1, fallback=True
                    )
                if key not in recovered_keys:
                    recovered_keys.append(key)
            else:  # EscalationStep.FAIL
                fail_run()

        def lose_link(
            link: _DaemonLink,
            *,
            kind: str,
            detected_by: str,
            error: str,
            culprit=None,
        ) -> None:
            """A daemon died, went silent, or wedged one job: kill it,
            fault the culprit (or everything in flight), re-queue the
            collateral at its same attempt, then schedule its revival."""
            if not link.alive:
                return
            self._detach(link)
            for key in list(link.inflight):
                job = link.inflight[key]
                if culprit is None or key == culprit:
                    handle_fault(key, kind, detected_by=detected_by, error=error)
                else:
                    # collateral of a daemon replacement: not the job's
                    # fault, so no escalation step is consumed
                    link.inflight.pop(key, None)
                    pending.pop(key, None)
                    if sink is not None and job.lease is not None:
                        sink.plane.revoke(job.lease.name, reason="collateral")
                    ready.appendleft((job.spec, job.attempt))
            link.inflight.clear()
            schedule_revive(link, reason=kind)

        # ------------------------------------------------------------------
        # the timer-driven reconnect state machine — the iterative
        # replacement for _revive's blocking sleep + self-recursion
        # ------------------------------------------------------------------
        def schedule_revive(link: _DaemonLink, reason: str) -> None:
            """Arm the next reconnect attempt's backoff timer; a spent
            budget leaves the link permanently dead (the loop-top guard
            fails the run once no link is alive or reviving)."""
            if self._closed or link.reconnects >= self.max_reconnects:
                link.reviving = False
                link.revive_token += 1
                return
            link.reconnects += 1
            self.reconnects += 1
            link.reviving = True
            link.revive_reason = reason
            link.revive_t0 = time.perf_counter()
            link.revive_token += 1
            token = link.revive_token
            backoff = self.reconnect_backoff * (2 ** (link.reconnects - 1))
            timers.schedule(backoff, lambda: begin_revive(link, token))

        def begin_revive(link: _DaemonLink, token: int) -> None:
            if link.revive_token != token or not link.reviving or self._closed:
                return
            if link.spawned:
                try:
                    link.proc = self._launch()
                except OSError as exc:
                    abort_revive_attempt(link)
                    schedule_revive(link, link.revive_reason)
                    return
                fd = link.proc.stdout.fileno()
                os.set_blocking(fd, False)
                link.spawn_fd = fd
                link.spawn_buf = b""
                link.spawn_tail.clear()
                self._register(fd, selectors.EVENT_READ, ("spawn", link))
                timers.schedule(
                    self.connect_timeout, lambda: revive_timed_out(link, token)
                )
            else:
                begin_connect(link, link.address, token)

        def begin_connect(
            link: _DaemonLink, address: tuple[str, int], token: int
        ) -> None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setblocking(False)
            err = sock.connect_ex(address)
            if err not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK, errno.EALREADY):
                try:
                    sock.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                abort_revive_attempt(link)
                schedule_revive(link, link.revive_reason)
                return
            link.sock = sock  # held for cleanup; the link is not alive yet
            self._register(sock, selectors.EVENT_WRITE, ("connect", link))
            timers.schedule(
                self.connect_timeout, lambda: revive_timed_out(link, token)
            )

        def abort_revive_attempt(link: _DaemonLink) -> None:
            """Release whatever this attempt half-built (connecting
            socket, spawn pipe, daemon process)."""
            if link.sock is not None:
                self._unregister(link.sock)
                try:
                    link.sock.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                link.sock = None
            if link.spawn_fd is not None:
                self._unregister(link.spawn_fd)
                link.spawn_fd = None
                link.spawn_buf = b""
            if link.proc is not None:
                if link.proc.poll() is None:
                    link.proc.kill()
                try:
                    link.proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
                if link.proc.stdout is not None:
                    link.proc.stdout.close()
                link.proc = None

        def revive_timed_out(link: _DaemonLink, token: int) -> None:
            if link.revive_token != token or not link.reviving:
                return
            abort_revive_attempt(link)
            schedule_revive(link, link.revive_reason)

        def on_spawn_output(link: _DaemonLink) -> None:
            """Collect the reviving daemon's stdout until it announces
            its port (the async version of _await_listening)."""
            if link.spawn_fd is None or not link.reviving:
                return
            try:
                chunk = os.read(link.spawn_fd, 4096)
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                chunk = b""
            if not chunk:
                # EOF before LISTENING: the daemon died on startup
                abort_revive_attempt(link)
                schedule_revive(link, link.revive_reason)
                return
            link.spawn_buf += chunk
            while b"\n" in link.spawn_buf:
                line, _, link.spawn_buf = link.spawn_buf.partition(b"\n")
                text = line.decode(errors="replace").rstrip()
                link.spawn_tail.append(text)
                if text.startswith("LISTENING "):
                    self._unregister(link.spawn_fd)
                    link.spawn_fd = None
                    begin_connect(
                        link,
                        ("127.0.0.1", int(text.split()[1])),
                        link.revive_token,
                    )
                    return

        def on_connect_ready(link: _DaemonLink) -> None:
            sock = link.sock
            if sock is None or not link.reviving:
                return
            err = sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            self._unregister(sock)
            if err != 0:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                link.sock = None
                schedule_revive(link, link.revive_reason)
                return
            finish_revive(link, sock)

        def finish_revive(link: _DaemonLink, sock: socket.socket) -> None:
            reason = link.revive_reason
            attempt = link.reconnects
            t0 = link.revive_t0
            link.sock = None  # _adopt re-takes it with fresh state
            self._adopt(link, sock)
            arm_heartbeat(link)
            if trace is not None:
                trace.record(
                    "reconnect",
                    worker=link.name,
                    attempt=attempt,
                    reason=reason,
                    seconds=time.perf_counter() - t0,
                )

        # ------------------------------------------------------------------
        # deadlines on the wheel
        # ------------------------------------------------------------------
        def on_silent(link: _DaemonLink) -> None:
            lose_link(
                link,
                kind="hang",
                detected_by="heartbeat",
                error=(
                    f"no frame from {link.name} within "
                    f"{self.heartbeat_timeout:.1f}s"
                ),
            )

        def arm_heartbeat(link: _DaemonLink) -> None:
            arm_heartbeat_deadline(
                timers, link, self.heartbeat_timeout, on_silent
            )

        def arm_job_deadline(key, job: _NetPending) -> None:
            def fire() -> None:
                if pending.get(key) is not job:
                    return  # completed, faulted, or re-dispatched already
                lose_link(
                    job.link,
                    kind="deadline",
                    detected_by="deadline",
                    error=(
                        f"no result within "
                        f"{job.deadline_at - job.submitted_at:.2f}s"
                    ),
                    culprit=key,
                )

            timers.schedule(job.deadline_at - clock() + _DEADLINE_GRACE, fire)

        # ------------------------------------------------------------------
        # the read side
        # ------------------------------------------------------------------
        def handle_frame(
            link: _DaemonLink, kind: str, data, nbytes: int, seconds: float
        ) -> None:
            if kind == "hello":
                link.capacity = int(data["capacity"])
                link.pid = data.get("pid")
                if trace is not None:
                    trace.record(
                        "worker_spawn", worker=link.name, pid=link.pid
                    )
                return
            if kind == "heartbeat":
                return  # last_frame was already bumped by on_readable
            if kind == "result":
                key = tuple(data["key"])
                record_net(
                    "net_recv", key, nbytes, seconds, frame_kind="result"
                )
                complete(key, int(data["attempt"]), data["payload"])
                return
            if kind == "error":
                key = tuple(data["key"])
                record_net(
                    "net_recv", key, nbytes, seconds, frame_kind="error"
                )
                job = pending.get(key)
                if job is not None and job.attempt == int(data["attempt"]):
                    handle_fault(
                        key,
                        data.get("fault_kind", "exception"),
                        detected_by="daemon",
                        error=data.get("error", ""),
                    )
            # unknown kinds are ignored: forward compatibility

        def on_readable(link: _DaemonLink) -> None:
            if not link.alive or link.sock is None:
                return
            try:
                data = link.sock.recv(1 << 20)
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                lose_link(
                    link,
                    kind="crash",
                    detected_by="connection",
                    error=repr(exc),
                )
                return
            if not data:
                error = (
                    "connection closed mid-frame "
                    f"({link.decoder.describe_partial()})"
                    if link.decoder.mid_frame
                    else "daemon closed the connection"
                )
                lose_link(
                    link, kind="crash", detected_by="connection", error=error
                )
                return
            link.last_frame = clock()
            try:
                frames = link.decoder.feed(data)
            except FrameError as exc:
                lose_link(
                    link,
                    kind="crash",
                    detected_by="connection",
                    error=repr(exc),
                )
                return
            for kind, payload, nbytes, seconds in frames:
                handle_frame(link, kind, payload, nbytes, seconds)
                if not link.alive:
                    break  # a handler convicted the link mid-batch

        def on_io(link: _DaemonLink, mask: int) -> None:
            if mask & selectors.EVENT_READ:
                on_readable(link)
            if link.alive and (mask & selectors.EVENT_WRITE):
                flush_sendq(link)

        # ------------------------------------------------------------------
        # the loop
        # ------------------------------------------------------------------
        for link in self.links:
            if link.alive:
                arm_heartbeat(link)

        # the loop also drains in-progress revives: the outcome's
        # reconnect count must describe daemons that actually came back
        # (and traced their ``reconnect`` event), same as the threaded
        # engine whose inline revive always completed before returning
        while (
            pending
            or ready
            or backoff_waiting
            or any(l.reviving for l in self.links)
        ):
            if not any(l.alive or l.reviving for l in self.links):
                fail_run(
                    RuntimeError(
                        "every worker daemon is lost and out of "
                        "reconnect budget"
                        if self.reconnects
                        else "no worker daemon is alive"
                    )
                )
            dispatch_ready()
            timeout = timers.next_timeout()
            if timeout is None:  # pragma: no cover - wheel is never empty
                timeout = self.poll_interval
            for sel_key, mask in self._selector.select(timeout):
                tag, link = sel_key.data
                if tag == "io":
                    on_io(link, mask)
                elif tag == "connect":
                    on_connect_ready(link)
                elif tag == "spawn":
                    on_spawn_output(link)
            timers.fire_due()

        return NetOutcome(
            payloads=completed,
            completion_order=tuple(completion_order),
            attempts=attempts,
            events=tuple(log.events()),
            recovered_keys=tuple(recovered_keys),
            fallback_keys=tuple(fallback_keys),
            reconnects=self.reconnects,
            daemons=len(self.links),
            bytes_sent=self.bytes_sent,
            bytes_received=self.bytes_received,
            net_send_seconds=self.net_send_seconds,
            net_recv_seconds=self.net_recv_seconds,
        )
