"""The restructured (concurrent) application.

This package corresponds to §5 of the paper: the master and worker
wrappers around the original routines, and the small main program that
turns the sequential application into a concurrent one by invoking the
generic master/worker protocol.

* :mod:`worker` — the worker wrapper plus pluggable *compute engines*:
  inline (worker thread computes; concurrency bounded by the GIL except
  where NumPy/SciPy release it) and process-based (each worker ships its
  job to a separate OS process — the Python equivalent of MLINK housing
  each worker in its own task instance);
* :mod:`master` — the master wrapper: the sequential program with the
  nested loop replaced by protocol steps 3(a)–3(h);
* :mod:`mainprog` — ``mainprog.m``: ``Main`` calls
  ``ProtocolMW(Master(argv), Worker)``;
* :mod:`parallel` — the multiprocessing executor used as the
  real-parallel measurement configuration and as a cross-check; its
  warm path orders jobs longest-predicted-first (LPT) over
* :mod:`pool` — the persistent worker pool: one long-lived fork pool
  shared across levels, runs and engines, whose warm workers retain
  their process-local operator caches between jobs.
"""

from .master import ConcurrentResult, make_master_definition
from .mainprog import run_concurrent
from .netengine import HostSpec, SocketTaskEngine, WorkerDaemon, parse_hosts
from .parallel import (
    MultiprocessingResult,
    order_longest_first,
    predicted_spec_seconds,
    run_multiprocessing,
)
from .pool import (
    PersistentWorkerPool,
    PoolClosedError,
    acquire_pool,
    child_heartbeat_queue,
    pool_diagnostics,
    respawn_pool,
    shutdown_pool,
)
from .taskengine import TaskInstanceDied, TaskInstanceEngine, TaskInstanceStats
from .worker import (
    ComputeEngine,
    InlineEngine,
    ProcessPoolEngine,
    SubsolveJobSpec,
    SubsolvePayload,
    execute_job,
    execute_job_uncached,
    make_subsolve_worker,
)

__all__ = [
    "ComputeEngine",
    "ConcurrentResult",
    "HostSpec",
    "InlineEngine",
    "MultiprocessingResult",
    "SocketTaskEngine",
    "WorkerDaemon",
    "PersistentWorkerPool",
    "PoolClosedError",
    "ProcessPoolEngine",
    "SubsolveJobSpec",
    "SubsolvePayload",
    "TaskInstanceDied",
    "TaskInstanceEngine",
    "TaskInstanceStats",
    "acquire_pool",
    "child_heartbeat_queue",
    "execute_job",
    "execute_job_uncached",
    "make_master_definition",
    "make_subsolve_worker",
    "order_longest_first",
    "parse_hosts",
    "pool_diagnostics",
    "predicted_spec_seconds",
    "respawn_pool",
    "run_concurrent",
    "run_multiprocessing",
    "shutdown_pool",
]
