"""Figures 1-5 regeneration and the text renderers."""

from __future__ import annotations

import pytest

from repro.harness import (
    Table1Experiment,
    figure1_ebb_flow,
    figure_speedup_machines,
    figure_times,
    render_linear_plot,
    render_log_plot,
    render_table,
)


@pytest.fixture(scope="module")
def experiment(synthetic_cost_model):
    return Table1Experiment(synthetic_cost_model, runs=2, seed=11)


@pytest.fixture(scope="module")
def rows(experiment):
    return experiment.run_all(levels=[0, 5, 10, 15], tols=(1e-3, 1e-4))


class TestFigure1:
    def test_ebb_flow_statistics(self, experiment):
        fig = figure1_ebb_flow(experiment, level=15, tol=1e-3)
        machines = fig.series["machines"]
        assert max(machines) > 5         # real expansion
        assert machines[-1] <= 1         # and shrinking back
        assert "peak" in fig.rendered
        assert "#" in fig.rendered

    def test_ebb_flow_peak_bounded_by_cluster(self, experiment):
        fig = figure1_ebb_flow(experiment, level=15, tol=1e-3)
        assert max(fig.series["machines"]) <= 32

    def test_small_level_uses_few_machines(self, experiment):
        fig = figure1_ebb_flow(experiment, level=2, tol=1e-3)
        assert max(fig.series["machines"]) <= 4


class TestFigures2to5:
    def test_times_series_match_rows(self, rows):
        fig = figure_times(rows, tol=1e-3, figure_number=2)
        selected = [r for r in rows if r.tol == 1e-3]
        assert fig.x == [float(r.level) for r in sorted(selected, key=lambda r: r.level)]
        assert fig.series["sequential st"] == [
            r.st for r in sorted(selected, key=lambda r: r.level)
        ]

    def test_times_rendered_log_scale(self, rows):
        fig = figure_times(rows, tol=1e-4, figure_number=4)
        assert "log scale" in fig.rendered

    def test_speedup_series(self, rows):
        fig = figure_speedup_machines(rows, tol=1e-3, figure_number=3)
        assert "speedup su" in fig.series
        assert "machines m" in fig.series
        assert len(fig.series["speedup su"]) == 4

    def test_figure_numbers_in_names(self, rows):
        assert "Figure 2" in figure_times(rows, 1e-3, 2).name
        assert "Figure 5" in figure_speedup_machines(rows, 1e-4, 5).name

    def test_as_rows_tabulates(self, rows):
        fig = figure_times(rows, tol=1e-3, figure_number=2)
        table = fig.as_rows()
        assert len(table) == len(fig.x)
        assert len(table[0]) == 3  # x, st, ct


class TestRenderers:
    def test_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_table_title(self):
        assert render_table(["x"], [[1]], title="T").startswith("T")

    def test_log_plot_renders_markers(self):
        text = render_log_plot(
            [0, 1, 2], {"a": [1.0, 10.0, 100.0], "b": [2.0, 20.0, 200.0]}
        )
        assert "o" in text and "+" in text

    def test_log_plot_skips_nonpositive(self):
        text = render_log_plot([0, 1], {"a": [0.0, 10.0]})
        canvas = "".join(line for line in text.splitlines() if line.startswith("|"))
        assert canvas.count("o") == 1

    def test_linear_plot_renders(self):
        text = render_linear_plot([0, 1, 2], {"su": [0.5, 1.0, 4.0]})
        assert "|" in text and "o" in text

    def test_empty_plot_handled(self):
        assert "no data" in render_log_plot([], {"a": []})
