"""The simulated cluster of workstations.

The paper's evaluation ran on hardware we do not have: 32 heterogeneous
single-processor AMD Athlon workstations (24 x 1200 MHz, 5 x 1400 MHz,
3 x 1466 MHz, 256 KB cache) on switched 100 Mbps Ethernet, at night, in
a multi-user environment.  This package simulates that testbed:

* :mod:`host` — the host inventory, including the paper's exact mix;
* :mod:`network` — a latency/bandwidth model of the switched Ethernet
  with per-NIC serialization (the master's NIC is the hot spot);
* :mod:`noise` — the "unpredictable effects" of §7: multi-user load,
  screen savers, runaway jobs, file-server delays;
* :mod:`simulator` — the discrete-event model of a distributed run of
  the restructured application (and of the sequential baseline);
* :mod:`trace` — chronological Welcome/Bye output in the paper's format
  and the machines-in-use timeline behind Figure 1.
"""

from .host import Host, paper_cluster, uniform_cluster
from .network import EthernetModel
from .noise import MultiUserNoise, NoiseSample
from .scenarios import SCENARIOS, Scenario, get_scenario, scenario_names
from .simulator import (
    DistributedRun,
    GridCost,
    SequentialRun,
    SimulationParams,
    WorkerInterval,
    simulate_distributed,
    simulate_sequential,
)
from .trace import MachinePoint, machines_timeline, render_trace, weighted_average_machines

__all__ = [
    "DistributedRun",
    "EthernetModel",
    "GridCost",
    "Host",
    "MachinePoint",
    "MultiUserNoise",
    "NoiseSample",
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "scenario_names",
    "SequentialRun",
    "SimulationParams",
    "WorkerInterval",
    "machines_timeline",
    "paper_cluster",
    "render_trace",
    "simulate_distributed",
    "simulate_sequential",
    "uniform_cluster",
    "weighted_average_machines",
]
