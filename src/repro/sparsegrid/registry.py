"""A registry of problem factories, keyed by name.

Job specifications must cross process boundaries (the distributed /
multiprocessing configurations), and problem objects hold closures that
do not pickle.  Workers therefore receive ``(problem_name, kwargs)`` and
rebuild the problem locally — the same contract as the original code,
where every task instance links the whole legacy object file and
reconstructs its grid context from the small description the master
sends.
"""

from __future__ import annotations

from typing import Callable

from .problem import (
    AdvectionDiffusionProblem,
    boundary_layer_problem,
    inhomogeneous_problem,
    manufactured_problem,
    rotating_cone_problem,
)

__all__ = ["PROBLEMS", "make_problem", "register_problem"]

ProblemFactory = Callable[..., AdvectionDiffusionProblem]

PROBLEMS: dict[str, ProblemFactory] = {
    "manufactured": manufactured_problem,
    "inhomogeneous": inhomogeneous_problem,
    "rotating-cone": rotating_cone_problem,
    "boundary-layer": boundary_layer_problem,
}


def register_problem(name: str, factory: ProblemFactory) -> None:
    """Add a named problem factory (examples register their own)."""
    if name in PROBLEMS:
        raise ValueError(f"problem {name!r} is already registered")
    PROBLEMS[name] = factory


def make_problem(name: str, **kwargs: object) -> AdvectionDiffusionProblem:
    """Instantiate a registered problem."""
    try:
        factory = PROBLEMS[name]
    except KeyError:
        raise KeyError(
            f"unknown problem {name!r}; registered: {sorted(PROBLEMS)}"
        ) from None
    return factory(**kwargs)
