"""The experiment index, executable.

DESIGN.md §4 maps every paper artifact to modules and bench targets;
this module is that table as code: each experiment knows its id, what
it reproduces, which bench regenerates it, and — for the quick-look
path — how to produce a small summary without the full bench harness.

``python -m repro experiments`` lists the index;
``python -m repro experiments --run E1`` produces a quick summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.perf.costmodel import CostModel

from .report import render_table

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "render_index"]


@dataclass(frozen=True)
class Experiment:
    """One row of the per-experiment index."""

    id: str
    paper_artifact: str
    summary: str
    bench_target: str
    modules: tuple[str, ...]
    #: quick-look runner: (cost_model) -> printable text; None when the
    #: experiment needs the full bench (e.g. real-parallel measurements)
    quick: Optional[Callable[[CostModel], str]] = None


def _quick_table1(model: CostModel) -> str:
    from .table1 import Table1Experiment, render_table1

    experiment = Table1Experiment(model, runs=3, seed=1)
    rows = experiment.run_all(levels=[0, 5, 10, 15], tols=(1.0e-3,))
    return render_table1(rows)


def _quick_fig1(model: CostModel) -> str:
    from .figures import figure1_ebb_flow
    from .table1 import Table1Experiment

    experiment = Table1Experiment(model, runs=1, seed=1)
    return figure1_ebb_flow(experiment, level=15, tol=1.0e-3).rendered


def _quick_times(tol: float, number: int):
    def run(model: CostModel) -> str:
        from .figures import figure_times
        from .table1 import Table1Experiment

        experiment = Table1Experiment(model, runs=2, seed=1)
        rows = experiment.run_all(levels=range(0, 16, 3), tols=(tol,))
        return figure_times(rows, tol, number).rendered

    return run


def _quick_speedup(tol: float, number: int):
    def run(model: CostModel) -> str:
        from .figures import figure_speedup_machines
        from .table1 import Table1Experiment

        experiment = Table1Experiment(model, runs=2, seed=1)
        rows = experiment.run_all(levels=range(0, 16, 3), tols=(tol,))
        return figure_speedup_machines(rows, tol, number).rendered

    return run


def _quick_trace(model: CostModel) -> str:
    from repro.cluster.trace import render_trace

    from .table1 import Table1Experiment

    experiment = Table1Experiment(model, runs=1, seed=1)
    run = experiment.simulate_concurrent_once(2, 1.0e-3, np.random.default_rng(6))
    return render_trace(run)


def _quick_overheads(model: CostModel) -> str:
    from repro.cluster import MultiUserNoise, SimulationParams
    from repro.perf import decompose_run

    from .table1 import Table1Experiment

    noisy = Table1Experiment(model, runs=1, seed=1)
    quiet = Table1Experiment(
        model, runs=1, seed=1,
        params=SimulationParams(noise=MultiUserNoise.quiet()),
    )
    run = noisy.simulate_concurrent_once(15, 1.0e-3, np.random.default_rng(1))
    twin = quiet.simulate_concurrent_once(15, 1.0e-3, np.random.default_rng(1))
    report = decompose_run(run, twin)
    rows = [[k, v] for k, v in report.as_dict().items()]
    return render_table(["category", "value"], rows,
                        title="Overhead decomposition, level 15")


def _quick_sensitivity(model: CostModel) -> str:
    from .sensitivity import render_sensitivity, sweep_sensitivity

    return render_sensitivity(sweep_sensitivity(model, level=15, tol=1.0e-3))


EXPERIMENTS: dict[str, Experiment] = {
    e.id: e
    for e in (
        Experiment(
            "E1", "Table 1",
            "st, ct, m, su for two tolerances, levels 0-15, 5-run averages",
            "benchmarks/bench_table1.py",
            ("repro.harness.table1", "repro.cluster.simulator", "repro.perf.costmodel"),
            _quick_table1,
        ),
        Experiment(
            "E2", "Figure 1",
            "ebb & flow: machines in use during a level-15 distributed run",
            "benchmarks/bench_fig1_ebbflow.py",
            ("repro.cluster.trace", "repro.harness.figures"),
            _quick_fig1,
        ),
        Experiment(
            "E3", "Figure 2",
            "sequential/concurrent times vs level, tol 1e-3, log scale",
            "benchmarks/bench_fig2to5_curves.py",
            ("repro.harness.figures",),
            _quick_times(1.0e-3, 2),
        ),
        Experiment(
            "E4", "Figure 3",
            "speedup and machines vs level, tol 1e-3",
            "benchmarks/bench_fig2to5_curves.py",
            ("repro.harness.figures",),
            _quick_speedup(1.0e-3, 3),
        ),
        Experiment(
            "E5", "Figure 4",
            "sequential/concurrent times vs level, tol 1e-4, log scale",
            "benchmarks/bench_fig2to5_curves.py",
            ("repro.harness.figures",),
            _quick_times(1.0e-4, 4),
        ),
        Experiment(
            "E6", "Figure 5",
            "speedup and machines vs level, tol 1e-4",
            "benchmarks/bench_fig2to5_curves.py",
            ("repro.harness.figures",),
            _quick_speedup(1.0e-4, 5),
        ),
        Experiment(
            "E7", "§6 output",
            "the chronological Welcome/Bye listing of a distributed run",
            "benchmarks/bench_trace_output.py",
            ("repro.cluster.trace",),
            _quick_trace,
        ),
        Experiment(
            "E8", "§6/§7 claims on real hardware",
            "bitwise sequential≡concurrent; real multiprocessing speedup",
            "benchmarks/bench_real_parallel.py",
            ("repro.restructured",),
            None,  # requires real execution; see the bench
        ),
        Experiment(
            "E9", "overhead decomposition + ablations",
            "§7's three overhead categories; design-choice ablations",
            "benchmarks/bench_ablation_overhead.py",
            ("repro.perf.overhead", "repro.cluster.scenarios"),
            _quick_overheads,
        ),
        Experiment(
            "E10", "integrator ablation",
            "adaptive ROS2 vs fixed-step theta-method baselines",
            "benchmarks/bench_ablation_integrator.py",
            ("repro.sparsegrid.theta",),
            None,  # real solver runs; see the bench
        ),
        Experiment(
            "E11", "coordination microbenchmark",
            "the real runtime's per-worker protocol cost",
            "benchmarks/bench_protocol_runtime.py",
            ("repro.protocol",),
            None,
        ),
        Experiment(
            "E12", "sensitivity analysis",
            "elasticity of ct to every modelled 2003 constant",
            "benchmarks/bench_sensitivity.py",
            ("repro.harness.sensitivity",),
            _quick_sensitivity,
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def render_index() -> str:
    rows = [
        [e.id, e.paper_artifact, e.summary, e.bench_target]
        for e in EXPERIMENTS.values()
    ]
    return render_table(
        ["id", "artifact", "what it reproduces", "bench target"],
        rows,
        title="Experiment index (see DESIGN.md §4 and EXPERIMENTS.md)",
    )
