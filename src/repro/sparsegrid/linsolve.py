"""The linear-system layer of the implicit time integrator.

Every Rosenbrock stage solves ``(I - gamma*h*J) k = rhs``.  The original
program's profile note — "this A matrix must be built up in the program
which takes a lot of time" — corresponds here to the sparse LU
factorization.  Because ``J`` is constant (the problem is linear) the
factorization depends only on the step size ``h``; the cache refactors
only when the adaptive controller actually changes ``h``, and counts
factorizations and triangular solves for the cost model.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["RosenbrockSystemSolver"]


class RosenbrockSystemSolver:
    """Factorization cache for ``(I - gamma*h*J)``."""

    def __init__(self, J: sp.spmatrix, gamma: float) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.J = J.tocsc()
        self.gamma = gamma
        self.n = J.shape[0]
        self._identity = sp.identity(self.n, format="csc")
        self._lu: Optional[spla.SuperLU] = None
        self._h: Optional[float] = None
        #: statistics for the cost model
        self.factorizations = 0
        self.solves = 0
        self.factor_seconds = 0.0
        self.solve_seconds = 0.0

    def prepare(self, h: float) -> None:
        """(Re)factorize for step size ``h`` if it changed."""
        if h <= 0:
            raise ValueError(f"step size must be positive, got {h}")
        if self._h is not None and h == self._h:
            return
        started = time.perf_counter()
        matrix = (self._identity - (self.gamma * h) * self.J).tocsc()
        self._lu = spla.splu(matrix)
        self._h = h
        self.factorizations += 1
        self.factor_seconds += time.perf_counter() - started

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - gamma*h*J) x = rhs`` with the current factor."""
        if self._lu is None:
            raise RuntimeError("prepare(h) must be called before solve()")
        started = time.perf_counter()
        x = self._lu.solve(rhs)
        self.solves += 1
        self.solve_seconds += time.perf_counter() - started
        return x

    @property
    def current_h(self) -> Optional[float]:
        return self._h
