"""The zero-copy shared-memory data plane for the subsolve fan-out.

The paper routes every grid's data through streams into
``master.dataport``; in the reproduction that stream is
``multiprocessing.Pool`` pickling, so each result array pays a full
serialize → pipe → deserialize round trip before the master can touch
it.  The S-Net/CnC comparison in the related work shows exactly this
coordination-layer data transport dominating fan-out/fan-in workloads,
and the protocol-sequentialization argument (Jongmans & Arbab) motivates
collapsing the per-payload protocol steps into one shared-buffer
hand-off.  This module is that hand-off:

* the **master** owns a :class:`DataPlane` — a small pooled arena of
  ``multiprocessing.shared_memory`` blocks.  Each job is issued a
  :class:`ShmLease` naming a block sized for its grid; released blocks
  return to the arena and are reused by later jobs, so a run allocates
  ``O(in-flight jobs)`` segments, not one per job forever;
* a **worker** writes its result array straight into the leased block
  (one ``memcpy``) and returns only a lightweight :class:`ShmDescriptor`
  — name, shape, dtype, checksum, payload bytes, generation — through
  the pickle channel.  The bulk data never crosses the pipe;
* the master **attaches without a copy**: it kept the creating handle,
  so consuming a descriptor is a checksum verification plus a NumPy
  view over the existing mapping — zero syscalls, zero copies.

**Generations.**  Every lease is tagged with the plane's current
generation.  When the resilient dispatch loop respawns a wedged pool it
calls :meth:`DataPlane.bump_generation`, which reclaims every
outstanding lease (their writers died with the old pool) and invalidates
their descriptors: a stale descriptor that still arrives — e.g. from a
result handle completing around the respawn — is *rejected* by
:meth:`DataPlane.attach` with :class:`StaleLeaseError`, never silently
attached, because a reclaimed block may already be re-leased to a new
job.

**Lifecycle.**  The plane owns its segments outright and
:meth:`DataPlane.close` — run on every exit path, success or fault
escalation or ``KeyboardInterrupt`` — unlinks every block and audits the
arena: leases still outstanding at close are *reaped late*, counted in
the :class:`DataPlaneAudit` and emitted as ``segment_reaped`` trace
events.  After ``close()`` the arena is provably empty (asserted), and
an ``atexit`` safety net closes any plane a crashed caller abandoned.
The fork-started pool shares one ``resource_tracker`` process, whose
registrations balance without manual bookkeeping (see :func:`_untrack`);
the creating registration stays in place as the unlink-of-last-resort
should the master die before ``close()``.

The plane is an optional transport: callers fall back to the pickle
channel per payload (a result that outgrew its lease, a vanished
segment) and per run (``data_plane="pickle"``), so every configuration
stays A/B-comparable and bitwise identical.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
import threading
import weakref
import zlib
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.trace.recorder import emit as trace_emit

__all__ = [
    "DATA_PLANES",
    "DataPlaneError",
    "StaleLeaseError",
    "ShmLease",
    "ShmDescriptor",
    "DataPlaneAudit",
    "DataPlane",
    "write_through_lease",
    "read_descriptor",
    "payload_nbytes",
]

#: the run-level transport choices (``run_multiprocessing(data_plane=)``)
DATA_PLANES = ("pickle", "shm")

#: segment capacities are rounded up to this granularity so released
#: blocks are reusable by any later grid of the same size class
_CAPACITY_QUANTUM = 4096


class DataPlaneError(RuntimeError):
    """A descriptor could not be honoured (unknown segment, size
    overflow, checksum mismatch)."""


class StaleLeaseError(DataPlaneError):
    """The descriptor's generation predates a pool respawn; its block
    may have been reclaimed and re-leased, so attaching is refused."""


@dataclass(frozen=True)
class ShmLease:
    """What a job is handed at submit time: where to write its result.

    Deliberately tiny and picklable — it rides inside the job tuple the
    same way the spec does.
    """

    name: str
    nbytes: int
    generation: int


@dataclass(frozen=True)
class ShmDescriptor:
    """What a worker sends back instead of the array itself."""

    name: str
    shape: tuple
    dtype: str
    checksum: int
    payload_bytes: int
    generation: int


@dataclass(frozen=True)
class DataPlaneAudit:
    """What :meth:`DataPlane.close` found and did."""

    #: distinct shared-memory blocks ever created by this plane
    segments_created: int
    #: leases handed out over the plane's lifetime
    leases_issued: int
    #: leases consumed and returned cleanly (attach + release)
    released: int
    #: leases reclaimed mid-run by the fault ladder / generation bumps
    reaped: int
    #: leases still outstanding when ``close()`` ran (reaped late)
    reaped_late: int
    #: blocks still registered after close — zero by construction
    leaked: int

    @property
    def clean(self) -> bool:
        """No segment needed reaping on any path."""
        return self.reaped == 0 and self.reaped_late == 0


@dataclass
class _Segment:
    """Master-side state of one arena block."""

    shm: shared_memory.SharedMemory
    capacity: int
    leased: bool = False
    key: Optional[tuple] = None


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop the resource tracker's claim on an already-gone segment.

    Only used when ``unlink()`` found the name already removed: CPython
    unregisters *after* a successful ``shm_unlink``, so the
    ``FileNotFoundError`` path would leave a dangling tracker entry (and
    a bogus leak warning at exit) unless it is cancelled by hand.  The
    regular paths never touch the tracker: the fork-started pool shares
    one tracker process whose per-name cache is a set, so the creating
    register, the no-op re-register of each worker attach, and the
    single unregister inside ``unlink()`` balance exactly — and the
    registration doubles as the unlink-of-last-resort should the master
    die before :meth:`DataPlane.close`.
    """
    try:
        resource_tracker.unregister(
            getattr(shm, "_name", shm.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker not running
        pass


def payload_nbytes(n_nodes: int, itemsize: int = 8) -> int:
    """Lease size for a nodal solution array (float64 by default)."""
    return int(n_nodes) * int(itemsize)


#: how much of each payload edge the checksum samples
_CHECKSUM_PAGE = 4096


def _checksum(buf) -> int:
    """Adler-32 over the payload's first and last pages, seeded with its
    length.

    A full-buffer digest would cost more than the ``memcpy`` it guards
    (adler32 runs at ~2 GB/s, the copy at ~10), handing the pickle
    channel back most of the shm win.  Sampling the two edge pages plus
    the length is O(8 KiB) whatever the payload size and still catches
    the realistic failure modes — truncation, a vanished or re-leased
    segment, a write torn at page granularity — which is what the check
    is for; bit-level integrity inside one mapped page is the kernel's
    contract, not the transport's.
    """
    view = memoryview(buf)
    n = len(view)
    checksum = zlib.adler32(view[:_CHECKSUM_PAGE], n & 0xFFFFFFFF)
    if n > _CHECKSUM_PAGE:
        checksum = zlib.adler32(view[n - _CHECKSUM_PAGE :], checksum)
    return checksum


#: planes that still need closing at interpreter exit (safety net for
#: callers that died before their ``finally``)
_open_planes: "weakref.WeakSet[DataPlane]" = weakref.WeakSet()


def _close_abandoned_planes() -> None:  # pragma: no cover - atexit path
    for plane in list(_open_planes):
        plane.close()


atexit.register(_close_abandoned_planes)


class DataPlane:
    """The master-side arena of pooled, generation-tagged shm blocks."""

    _instance_ids = itertools.count(1)

    def __init__(self, *, generation: int = 0) -> None:
        # the tracker must exist before any pool forks: children that
        # inherit a live tracker share its (set-semantics) name cache,
        # so their attach re-registrations are no-ops; a child forced to
        # spawn its own tracker would report phantom leaks at exit
        resource_tracker.ensure_running()
        self._lock = threading.RLock()
        self._segments: dict[str, _Segment] = {}
        self._prefix = (
            f"repro-dp-{os.getpid()}-{next(self._instance_ids)}-"
            f"{secrets.token_hex(3)}"
        )
        self._counter = itertools.count(1)
        self.generation = generation
        self.closed = False
        # audit counters
        self.segments_created = 0
        self.leases_issued = 0
        self.released_count = 0
        self.reaped_count = 0
        self.reaped_late_count = 0
        _open_planes.add(self)

    # ------------------------------------------------------------------
    # leasing
    # ------------------------------------------------------------------
    def lease(self, key: tuple, nbytes: int) -> ShmLease:
        """Lease a block of at least ``nbytes`` for the job ``key``.

        Reuses the smallest free pooled block that fits; creates a new
        one only when none does.
        """
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        with self._lock:
            self._require_open()
            fit: Optional[_Segment] = None
            for segment in self._segments.values():
                if segment.leased or segment.capacity < nbytes:
                    continue
                if fit is None or segment.capacity < fit.capacity:
                    fit = segment
            if fit is None:
                fit = self._create_segment(nbytes)
            fit.leased = True
            fit.key = tuple(key)
            self.leases_issued += 1
            return ShmLease(
                name=fit.shm.name,
                nbytes=fit.capacity,
                generation=self.generation,
            )

    def _create_segment(self, nbytes: int) -> _Segment:
        capacity = -(-nbytes // _CAPACITY_QUANTUM) * _CAPACITY_QUANTUM
        name = f"{self._prefix}-{next(self._counter)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=capacity)
        segment = _Segment(shm=shm, capacity=capacity)
        self._segments[shm.name] = segment
        self.segments_created += 1
        return segment

    def _require_open(self) -> None:
        if self.closed:
            raise DataPlaneError("data plane has been closed")

    # ------------------------------------------------------------------
    # consuming descriptors
    # ------------------------------------------------------------------
    def attach(self, descriptor: ShmDescriptor) -> np.ndarray:
        """A zero-copy NumPy view over the descriptor's payload.

        Verifies the generation (stale descriptors are *rejected*, see
        module docstring) and the checksum before exposing the data.
        The caller must drop the view before :meth:`release`-ing or
        closing — the combiner copies anything it keeps.
        """
        with self._lock:
            self._require_open()
            if descriptor.generation != self.generation:
                raise StaleLeaseError(
                    f"descriptor for segment {descriptor.name!r} carries "
                    f"generation {descriptor.generation}, but the plane is "
                    f"at {self.generation}: its block may have been "
                    "reclaimed after a pool respawn"
                )
            segment = self._segments.get(descriptor.name)
            if segment is None or not segment.leased:
                raise DataPlaneError(
                    f"descriptor names unknown or unleased segment "
                    f"{descriptor.name!r}"
                )
            if descriptor.payload_bytes > segment.capacity:
                raise DataPlaneError(
                    f"descriptor claims {descriptor.payload_bytes} bytes in "
                    f"a {segment.capacity}-byte segment"
                )
            buf = segment.shm.buf[: descriptor.payload_bytes]
            if _checksum(buf) != descriptor.checksum:
                del buf
                raise DataPlaneError(
                    f"checksum mismatch on segment {descriptor.name!r} "
                    f"(grid {segment.key}): torn or foreign write"
                )
            return np.ndarray(
                descriptor.shape, dtype=np.dtype(descriptor.dtype), buffer=buf
            )

    def release(self, name: str) -> None:
        """Return a consumed lease's block to the free pool."""
        with self._lock:
            segment = self._segments.get(name)
            if segment is not None and segment.leased:
                segment.leased = False
                segment.key = None
                self.released_count += 1

    def revoke(self, name: str, *, reason: str = "fault") -> bool:
        """Reap one outstanding lease (the fault ladder's path).

        The block returns to the free pool — its writer is dead or done
        by the time any fault is escalated — and the reaping lands on
        the trace timeline.  Idempotent: revoking a non-leased name is a
        no-op.
        """
        with self._lock:
            segment = self._segments.get(name)
            if segment is None or not segment.leased:
                return False
            key = segment.key
            segment.leased = False
            segment.key = None
            self.reaped_count += 1
        trace_emit("segment_reaped", key=key, segment=name, reason=reason)
        return True

    def bump_generation(self) -> int:
        """Invalidate every outstanding lease (pool respawn path).

        The respawn terminated every worker of the old generation, so
        outstanding blocks have no writers left and are safe to reclaim;
        descriptors already in flight are rejected by the generation
        check in :meth:`attach`.
        """
        with self._lock:
            self.generation += 1
            outstanding = [
                name
                for name, segment in self._segments.items()
                if segment.leased
            ]
        for name in outstanding:
            self.revoke(name, reason="generation")
        return self.generation

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Leases issued but neither released nor reaped."""
        with self._lock:
            return sum(1 for s in self._segments.values() if s.leased)

    def close(self) -> DataPlaneAudit:
        """Unlink every block and audit the arena; idempotent.

        Runs on every exit path.  Leases still outstanding here were
        leaked by their jobs (crash mid-run, KeyboardInterrupt): they
        are reaped late — counted, trace-emitted — and their blocks
        unlinked like all others, so nothing survives in ``/dev/shm``.
        The zero-leak guarantee is asserted, not hoped for.
        """
        with self._lock:
            if self.closed:
                return self.audit()
            self.closed = True
            segments = list(self._segments.items())
            self._segments.clear()
        for name, segment in segments:
            if segment.leased:
                self.reaped_late_count += 1
                trace_emit(
                    "segment_reaped",
                    key=segment.key,
                    segment=name,
                    reason="close",
                    late=True,
                )
            try:
                segment.shm.close()
            except BufferError:  # pragma: no cover - a view outlived us
                pass
            try:
                segment.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                # unlink() unregisters only after a successful removal;
                # cancel the claim by hand so the tracker does not report
                # a phantom leak at exit
                _untrack(segment.shm)
        _open_planes.discard(self)
        assert not self._segments, "data plane closed with live segments"
        return self.audit()

    def audit(self) -> DataPlaneAudit:
        """The arena's bookkeeping as one record."""
        with self._lock:
            return DataPlaneAudit(
                segments_created=self.segments_created,
                leases_issued=self.leases_issued,
                released=self.released_count,
                reaped=self.reaped_count,
                reaped_late=self.reaped_late_count,
                leaked=len(self._segments) if self.closed else 0,
            )

    def __enter__(self) -> "DataPlane":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# the worker-side half
# ----------------------------------------------------------------------
#: writer-side cache of attached segments.  The arena reuses block
#: names across jobs, so re-``mmap``-ing a block per write — and soft-
#: faulting every one of its pages again — would cost more than the
#: copy it carries; a cached mapping pays that once per (process,
#: segment).  Safe because segment names are globally unique (pid +
#: instance + random token + counter): a cached mapping can never alias
#: a different block.  Bounded FIFO so a long-lived worker cannot
#: accumulate mappings without limit.
_writer_mappings: dict[str, shared_memory.SharedMemory] = {}
_WRITER_MAPPING_CAP = 64


def _writer_segment(name: str) -> shared_memory.SharedMemory:
    shm = _writer_mappings.get(name)
    if shm is None:
        shm = shared_memory.SharedMemory(name=name)
        while len(_writer_mappings) >= _WRITER_MAPPING_CAP:
            _writer_mappings.pop(next(iter(_writer_mappings))).close()
        _writer_mappings[name] = shm
    return shm


def _close_writer_mappings() -> None:
    """Drop every cached writer mapping (atexit tidy-up; also lets the
    leak-check tests start from a clean slate)."""
    while _writer_mappings:
        _writer_mappings.popitem()[1].close()


atexit.register(_close_writer_mappings)


def write_through_lease(lease: ShmLease, array) -> Optional[ShmDescriptor]:
    """Write ``array`` into the leased block; return its descriptor.

    Returns ``None`` when the shm hand-off is impossible — the array
    outgrew its lease or the segment vanished — so the caller falls back
    to the pickle channel for this payload; the run stays correct either
    way, only the transport differs.
    """
    data = np.ascontiguousarray(array)
    if data.nbytes > lease.nbytes or data.nbytes == 0:
        return None
    try:
        shm = _writer_segment(lease.name)
    except (FileNotFoundError, OSError):
        return None
    view = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
    np.copyto(view, data)
    del view
    buf = shm.buf[: data.nbytes]
    checksum = _checksum(buf)
    del buf
    return ShmDescriptor(
        name=lease.name,
        shape=tuple(data.shape),
        dtype=str(data.dtype),
        checksum=checksum,
        payload_bytes=data.nbytes,
        generation=lease.generation,
    )


def read_descriptor(descriptor: ShmDescriptor) -> np.ndarray:
    """Peer-side read of a descriptor written by *another* process.

    The master consumes worker-written descriptors through
    :meth:`DataPlane.attach` (it owns the creating handle); this is the
    mirror for processes that do *not* own the plane — the strip-team
    children reading master-written halo/interface vectors.  Uses the
    same cached writer mapping as :func:`write_through_lease`, verifies
    the checksum, and returns a *copy* (the block is about to be
    rewritten by the next exchange; the reader must not hold a view).
    Generation discipline is the master's job — peers only ever receive
    descriptors the master minted for the current generation.
    """
    shm = _writer_segment(descriptor.name)
    if descriptor.payload_bytes > shm.size:
        raise DataPlaneError(
            f"descriptor claims {descriptor.payload_bytes} bytes in a "
            f"{shm.size}-byte segment {descriptor.name!r}"
        )
    buf = shm.buf[: descriptor.payload_bytes]
    if _checksum(buf) != descriptor.checksum:
        del buf
        raise DataPlaneError(
            f"checksum mismatch reading segment {descriptor.name!r}"
        )
    view = np.ndarray(
        descriptor.shape, dtype=np.dtype(descriptor.dtype), buffer=buf
    )
    out = view.copy()
    del view, buf
    return out
