"""The shm data plane against the real pool: bitwise equality with the
pickle transport, streaming combination, and composition with the fault
ladder.

The acceptance invariant throughout: ``data_plane="shm"`` must produce
a combined solution *bitwise identical* to ``data_plane="pickle"`` —
with or without injected faults, with or without a pool respawn —
because the transport moves bytes, it does not do arithmetic.  The
streaming combiner preserves this by folding grids in formula order
regardless of arrival order.

Cheap tests run at level 2-4 in tier-1; the level-6 equality sweep of
the issue's acceptance criterion is marked ``slow``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.resilience import DeadlinePolicy, RetryPolicy
from repro.restructured import run_multiprocessing, shutdown_pool
from repro.trace import TraceAnalysis, TraceRecorder

LEVEL = 2
TOL = 1.0e-3


@pytest.fixture(autouse=True)
def fresh_pool_state():
    """Each test starts and ends without a shared pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def _run(**kw):
    kw.setdefault("root", 2)
    kw.setdefault("level", LEVEL)
    kw.setdefault("tol", TOL)
    kw.setdefault("processes", 2)
    return run_multiprocessing(**kw)


@pytest.fixture(scope="module")
def pickle_combined():
    """The barriered pickle path's result — the equality reference."""
    result = run_multiprocessing(root=2, level=LEVEL, tol=TOL, processes=2)
    shutdown_pool()
    return result.combined


class TestBitwiseEquality:
    def test_shm_matches_pickle_bitwise(self, pickle_combined):
        result = _run(data_plane="shm")
        assert result.data_plane == "shm"
        assert np.array_equal(result.combined, pickle_combined)

    def test_every_payload_went_zero_copy(self):
        result = _run(data_plane="shm")
        assert result.shm_payloads == result.n_workers
        assert result.shm_fallbacks == 0
        assert result.transport_shm_bytes > 0
        assert result.transport_pickle_bytes == 0

    def test_audit_is_clean_on_the_fault_free_path(self):
        result = _run(data_plane="shm")
        audit = result.data_plane_audit
        assert audit is not None
        assert audit.clean
        assert audit.leases_issued == result.n_workers
        assert audit.released == result.n_workers
        assert audit.leaked == 0

    def test_static_dispatch_matches_too(self, pickle_combined):
        result = _run(data_plane="shm", dispatch="static")
        assert not result.streaming
        assert np.array_equal(result.combined, pickle_combined)

    def test_cold_pool_matches_too(self, pickle_combined):
        result = _run(data_plane="shm", warm_pool=False)
        assert np.array_equal(result.combined, pickle_combined)
        assert result.data_plane_audit.clean

    def test_resilient_fault_free_matches(self, pickle_combined):
        result = _run(data_plane="shm", retry=RetryPolicy())
        assert result.faults == 0
        assert np.array_equal(result.combined, pickle_combined)

    def test_unknown_plane_is_rejected(self):
        with pytest.raises(ValueError, match="unknown data plane"):
            _run(data_plane="mmap")


class TestStreamingCombination:
    def test_streaming_overlaps_combination_with_subsolves(self):
        result = _run(data_plane="shm")
        assert result.streaming
        assert result.combine_seconds > 0
        # at least one chunk folded before the last arrival
        assert result.combine_overlap_seconds > 0
        assert 0 < result.overlap_ratio <= 1.0

    def test_pickle_plane_reports_no_overlap(self):
        result = _run()
        assert result.overlap_ratio == 0.0
        assert result.shm_payloads == 0
        assert result.transport_pickle_bytes > 0

    def test_trace_carries_the_transport_split(self):
        recorder = TraceRecorder()
        result = _run(data_plane="shm", trace=recorder)
        analysis = TraceAnalysis.from_recorder(recorder)
        assert analysis.n_shm_payloads == result.n_workers
        assert analysis.transport_bytes == result.transport_shm_bytes
        assert analysis.shm_write_seconds > 0
        assert analysis.combine_chunk_seconds > 0
        assert any("data plane" in line for line in analysis.report_lines())


class TestFaultComposition:
    def test_crash_recovery_is_bitwise_identical(self, pickle_combined):
        result = _run(
            data_plane="shm",
            faults="crash@2,0",
            retry=RetryPolicy(),
        )
        assert result.faults >= 1
        assert result.recovered >= 1
        assert np.array_equal(result.combined, pickle_combined)
        # the crashed attempt's lease was reaped, not leaked
        audit = result.data_plane_audit
        assert audit.reaped >= 1
        assert audit.leaked == 0

    def test_transient_raise_is_bitwise_identical(self, pickle_combined):
        result = _run(
            data_plane="shm",
            faults="raise@1,1",
            retry=RetryPolicy(),
        )
        assert result.faults >= 1
        assert np.array_equal(result.combined, pickle_combined)
        assert result.data_plane_audit.leaked == 0

    def test_respawn_bumps_the_generation_and_stays_identical(
        self, pickle_combined
    ):
        recorder = TraceRecorder()
        result = _run(
            data_plane="shm",
            faults="hang@2,0:seconds=30",
            retry=RetryPolicy(),
            deadline=DeadlinePolicy(floor_seconds=0.8, default_seconds=0.8),
            trace=recorder,
        )
        assert result.pool_respawns >= 1
        assert np.array_equal(result.combined, pickle_combined)
        assert result.data_plane_audit.leaked == 0
        reaped = [
            e for e in recorder.events() if e.kind == "segment_reaped"
        ]
        assert any(e.data.get("reason") == "generation" for e in reaped)

    def test_fallback_bypasses_the_plane_and_reclaims_the_wedge(
        self, pickle_combined
    ):
        """Regression: a hang that exhausts its retries escalates to the
        in-master sequential fallback.  The fallback payload must never
        touch the data plane, and the wedged worker's generation must be
        reclaimed *during* the run — before the fix its lease survived
        to close() (``reaped_late``) and the wedged process kept its shm
        attachment past the run."""
        from repro.resilience import EscalationPolicy

        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            result = _run(
                data_plane="shm",
                # every attempt hangs -> retry, then FALLBACK
                faults="hang@1,1:attempt=*,seconds=120",
                escalation=EscalationPolicy(
                    retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
                    deadline=DeadlinePolicy(
                        floor_seconds=1.0, default_seconds=2.0
                    ),
                ),
            )
        assert result.fallbacks == 1
        assert np.array_equal(result.combined, pickle_combined)
        audit = result.data_plane_audit
        assert audit.leaked == 0
        assert audit.reaped_late == 0  # the wedge was reclaimed in-run
        # the fallback grid went through the pickle path of the sink
        assert result.shm_fallbacks == 1

    def test_no_resource_warning_leaks_across_a_faulted_run(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            result = _run(
                data_plane="shm",
                faults="crash@2,0",
                retry=RetryPolicy(),
            )
            assert result.data_plane_audit.leaked == 0


@pytest.mark.slow
class TestLevelSixEquality:
    """The issue's acceptance sweep: identical up to level 6, including
    under fault injection and pool respawn."""

    def test_level_six_shm_matches_pickle(self):
        reference = _run(level=6, processes=4)
        shutdown_pool()
        result = _run(level=6, processes=4, data_plane="shm")
        assert np.array_equal(result.combined, reference.combined)
        assert result.shm_fallbacks == 0
        assert result.data_plane_audit.clean

    def test_level_six_with_crash_and_respawn_matches(self):
        reference = _run(level=6, processes=4)
        shutdown_pool()
        result = _run(
            level=6,
            processes=4,
            data_plane="shm",
            faults="crash@4,2;hang@3,3:seconds=60",
            retry=RetryPolicy(),
            deadline=DeadlinePolicy(floor_seconds=2.0, default_seconds=2.0),
        )
        assert result.faults >= 2
        assert np.array_equal(result.combined, reference.combined)
        assert result.data_plane_audit.leaked == 0
