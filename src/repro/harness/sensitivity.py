"""Sensitivity of the simulated results to the modelled 2003 constants.

The simulator's timing constants (startup, fork, handshake, latency,
bandwidth) are plausible-for-2003 values validated against the paper's
small-level concurrent times — but they are modelled, not measured.
This module quantifies how much each constant actually matters:

* an **elasticity** per knob: ``d log(ct) / d log(knob)`` estimated
  from a halve/double sweep (0 = irrelevant, 1 = proportional);
* a **robustness check** for the paper's qualitative conclusions: does
  the speedup crossover stay in a sane band and does the level-15
  speedup survive when every knob is perturbed?

Used by ``benchmarks/bench_sensitivity.py`` and the test suite.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.host import Host, paper_cluster
from repro.cluster.noise import MultiUserNoise
from repro.cluster.simulator import SimulationParams, simulate_distributed
from repro.perf.costmodel import CostModel

from .report import render_table

__all__ = ["Knob", "KNOBS", "SensitivityResult", "sweep_sensitivity", "render_sensitivity"]


@dataclass(frozen=True)
class Knob:
    """One tunable constant of the simulation."""

    name: str
    apply: Callable[[SimulationParams, float], SimulationParams]
    base_of: Callable[[SimulationParams], float]


def _scale_field(field_name: str) -> Knob:
    def apply(params: SimulationParams, factor: float) -> SimulationParams:
        return dataclasses.replace(
            params, **{field_name: getattr(params, field_name) * factor}
        )

    return Knob(
        name=field_name,
        apply=apply,
        base_of=lambda params: getattr(params, field_name),
    )


def _scale_bandwidth(params: SimulationParams, factor: float) -> SimulationParams:
    network = dataclasses.replace(
        params.network, bandwidth_mbps=params.network.bandwidth_mbps * factor
    )
    return dataclasses.replace(params, network=network)


KNOBS: tuple[Knob, ...] = (
    _scale_field("startup_seconds"),
    _scale_field("fork_seconds"),
    _scale_field("handshake_seconds"),
    _scale_field("event_latency_seconds"),
    Knob(
        name="bandwidth_mbps",
        apply=_scale_bandwidth,
        base_of=lambda p: p.network.bandwidth_mbps,
    ),
)


@dataclass(frozen=True)
class SensitivityResult:
    """Halve/double sweep of one knob."""

    knob: str
    base_value: float
    ct_base: float
    ct_halved: float
    ct_doubled: float

    @property
    def elasticity(self) -> float:
        """d log(ct) / d log(knob) over the [x0.5, x2] span."""
        return math.log(self.ct_doubled / self.ct_halved) / math.log(4.0)

    @property
    def spread(self) -> float:
        """Relative ct range across the sweep."""
        return (self.ct_doubled - self.ct_halved) / self.ct_base


def _simulate_ct(
    cost_model: CostModel,
    level: int,
    tol: float,
    params: SimulationParams,
    cluster: Sequence[Host],
    seed: int,
) -> float:
    run = simulate_distributed(
        [cost_model.level_costs(level, tol)],
        cluster,
        params,
        np.random.default_rng(seed),
        master_prolongation_ref_seconds=cost_model.prolongation_seconds(level),
    )
    return run.elapsed_seconds


def sweep_sensitivity(
    cost_model: CostModel,
    level: int = 15,
    tol: float = 1.0e-3,
    *,
    cluster: Optional[Sequence[Host]] = None,
    knobs: Sequence[Knob] = KNOBS,
    seed: int = 7,
) -> list[SensitivityResult]:
    """Halve/double each knob in turn (noise off for determinism)."""
    cluster = list(cluster) if cluster is not None else paper_cluster()
    base_params = SimulationParams(noise=MultiUserNoise.quiet())
    ct_base = _simulate_ct(cost_model, level, tol, base_params, cluster, seed)
    results = []
    for knob in knobs:
        halved = knob.apply(base_params, 0.5)
        doubled = knob.apply(base_params, 2.0)
        results.append(
            SensitivityResult(
                knob=knob.name,
                base_value=knob.base_of(base_params),
                ct_base=ct_base,
                ct_halved=_simulate_ct(cost_model, level, tol, halved, cluster, seed),
                ct_doubled=_simulate_ct(cost_model, level, tol, doubled, cluster, seed),
            )
        )
    return results


def render_sensitivity(results: Sequence[SensitivityResult], title: str = "") -> str:
    rows = [
        [
            r.knob,
            f"{r.base_value:g}",
            r.ct_halved,
            r.ct_base,
            r.ct_doubled,
            f"{r.elasticity:+.3f}",
        ]
        for r in sorted(results, key=lambda r: -abs(r.elasticity))
    ]
    return render_table(
        ["knob", "base", "ct @x0.5", "ct @x1", "ct @x2", "elasticity"],
        rows,
        title=title or "Sensitivity of the concurrent time to the modelled constants",
    )
