"""The sensitivity-analysis harness."""

from __future__ import annotations

import pytest

from repro.cluster import MultiUserNoise, SimulationParams
from repro.harness.sensitivity import (
    KNOBS,
    SensitivityResult,
    render_sensitivity,
    sweep_sensitivity,
)


class TestKnobs:
    def test_expected_knobs_registered(self):
        names = {k.name for k in KNOBS}
        assert {"startup_seconds", "fork_seconds", "handshake_seconds",
                "event_latency_seconds", "bandwidth_mbps"} == names

    def test_apply_scales_without_mutating(self):
        base = SimulationParams(noise=MultiUserNoise.quiet())
        for knob in KNOBS:
            scaled = knob.apply(base, 2.0)
            assert knob.base_of(scaled) == pytest.approx(2.0 * knob.base_of(base))
        # the original is untouched
        assert base.fork_seconds == SimulationParams().fork_seconds
        assert base.network.bandwidth_mbps == 100.0


class TestSweep:
    @pytest.fixture(scope="class")
    def results(self, synthetic_cost_model):
        return sweep_sensitivity(synthetic_cost_model, level=12, tol=1e-3)

    def test_one_result_per_knob(self, results):
        assert len(results) == len(KNOBS)

    def test_overhead_knobs_monotone(self, results):
        for result in results:
            if result.knob == "bandwidth_mbps":
                assert result.ct_halved >= result.ct_base >= result.ct_doubled
            else:
                assert result.ct_halved <= result.ct_base <= result.ct_doubled

    def test_elasticity_formula(self):
        result = SensitivityResult(
            knob="x", base_value=1.0, ct_base=10.0, ct_halved=5.0, ct_doubled=20.0
        )
        assert result.elasticity == pytest.approx(1.0)
        assert result.spread == pytest.approx(1.5)

    def test_deterministic(self, synthetic_cost_model):
        a = sweep_sensitivity(synthetic_cost_model, level=10, tol=1e-3)
        b = sweep_sensitivity(synthetic_cost_model, level=10, tol=1e-3)
        assert [r.ct_doubled for r in a] == [r.ct_doubled for r in b]

    def test_render(self, results):
        text = render_sensitivity(results)
        assert "elasticity" in text
        assert "fork_seconds" in text
