"""Warm-path observability: cache effectiveness and dispatch makespan.

The S-Net/CnC comparison in the related work makes the case that the
coordination layer — not the kernel — decides whether a port of this
kind wins.  This module quantifies our own coordination layer:

* **cache counters** — operator-cache hit/miss and factorization-reuse
  ratios pooled from :class:`~repro.restructured.worker.SubsolvePayload`
  counters of a run;
* **cold-vs-warm pool timings** — fork cost paid inside a call versus a
  warm acquisition of the persistent pool;
* **dispatch-order makespan** — a deterministic scheduling metric: given
  the measured per-grid durations of a run, what elapsed time would a
  ``w``-worker pool see under the actual dispatch order versus the
  seed's ``pool.map`` static chunking?  This isolates the scheduling
  effect from machine noise (and from the core count of the present
  machine), the same way the paper's cost model isolates timing
  structure from 2003 hardware;
* **data-plane transport** — payload bytes and seconds moved through the
  zero-copy shared-memory plane (:mod:`repro.perf.dataplane`) versus
  the pickle pipe, and how much of the streaming combination the master
  overlapped with still-running subsolves (the overlap ratio).

The makespan simulator models the pool faithfully: workers pull the
next unit greedily; under ``imap_unordered(chunksize=1)`` a unit is one
job, under ``pool.map`` a unit is one static contiguous chunk (jobs of
a chunk run back to back on one worker).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.restructured.parallel import MultiprocessingResult

__all__ = [
    "simulate_makespan",
    "static_chunks",
    "static_chunk_makespan",
    "DispatchMakespan",
    "dispatch_makespan",
    "WarmPathReport",
    "warm_path_report",
]


def simulate_makespan(durations: Sequence[float], n_workers: int) -> float:
    """Elapsed time of a greedy list schedule: each of ``n_workers``
    workers pulls the next duration when it becomes free."""
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if not durations:
        return 0.0
    loads = [0.0] * min(n_workers, len(durations))
    for d in durations:
        if d < 0:
            raise ValueError(f"durations must be non-negative, got {d}")
        i = loads.index(min(loads))
        loads[i] += d
    return max(loads)


def static_chunks(n_items: int, n_workers: int, chunksize: Optional[int] = None) -> list[int]:
    """Chunk sizes ``pool.map`` would use (its default formula splits
    the list into ~4 contiguous chunks per worker)."""
    if n_items == 0:
        return []
    if chunksize is None:
        chunksize, extra = divmod(n_items, n_workers * 4)
        if extra:
            chunksize += 1
    sizes = []
    remaining = n_items
    while remaining > 0:
        take = min(chunksize, remaining)
        sizes.append(take)
        remaining -= take
    return sizes


def static_chunk_makespan(
    durations: Sequence[float],
    n_workers: int,
    chunksize: Optional[int] = None,
) -> float:
    """Makespan of ``pool.map``'s static chunking over ``durations`` in
    their given (loop) order: contiguous chunks are the schedulable
    units, each chunk's jobs run back to back on one worker."""
    units: list[float] = []
    start = 0
    for size in static_chunks(len(durations), n_workers, chunksize):
        units.append(float(sum(durations[start:start + size])))
        start += size
    return simulate_makespan(units, n_workers)


@dataclass(frozen=True)
class DispatchMakespan:
    """The scheduling metric for one run's measured durations."""

    n_workers: int
    #: greedy makespan of the order jobs were actually dispatched in
    dispatched_seconds: float
    #: greedy makespan of longest-measured-first (LPT with hindsight)
    longest_first_seconds: float
    #: ``pool.map`` static chunking over the paper's loop order
    static_chunk_seconds: float
    #: sum of all durations / n_workers — the no-overhead bound
    lower_bound_seconds: float

    @property
    def gain_over_static(self) -> float:
        """How much the dispatched order beats static chunking
        (>1 means the warm path's ordering wins makespan)."""
        if self.dispatched_seconds == 0:
            return 1.0
        return self.static_chunk_seconds / self.dispatched_seconds


def dispatch_makespan(
    result: MultiprocessingResult, n_workers: Optional[int] = None
) -> DispatchMakespan:
    """Score a run's dispatch order against static chunking, using its
    own measured per-grid durations."""
    workers = n_workers or max(2, result.processes)
    by_key = {key: p.wall_seconds for key, p in result.payloads.items()}
    loop_order = [by_key[key] for key in sorted(
        by_key, key=lambda k: (k[0] + k[1], k[0])
    )]
    dispatched = [by_key[key] for key in result.dispatch_order]
    longest_first = sorted(by_key.values(), reverse=True)
    total = sum(by_key.values())
    return DispatchMakespan(
        n_workers=workers,
        dispatched_seconds=simulate_makespan(dispatched, workers),
        longest_first_seconds=simulate_makespan(longest_first, workers),
        static_chunk_seconds=static_chunk_makespan(loop_order, workers),
        lower_bound_seconds=total / workers,
    )


@dataclass(frozen=True)
class WarmPathReport:
    """Everything the warm path changed, in one record."""

    level: int
    tol: float
    dispatch: str
    warm_pool: bool
    pool_cold_start_seconds: float
    operator_cache_hits: int
    operator_cache_misses: int
    operator_cache_hit_ratio: float
    factor_cache_hits: int
    factor_reuse_ratio: float
    pool_seconds: float
    total_seconds: float
    makespan: DispatchMakespan
    # fault-tolerance counters (zero on a fault-free or non-resilient run)
    attempts: int = 0
    faults: int = 0
    recovered: int = 0
    fallbacks: int = 0
    pool_respawns: int = 0
    # data-plane counters (pickle transport leaves the shm fields zero)
    data_plane: str = "pickle"
    shm_payloads: int = 0
    shm_fallbacks: int = 0
    transport_shm_bytes: int = 0
    transport_pickle_bytes: int = 0
    shm_write_seconds: float = 0.0
    attach_seconds: float = 0.0
    combine_seconds: float = 0.0
    overlap_ratio: float = 0.0
    # intra-grid split counters ("off" / zeros when no grid was split)
    split: str = "off"
    split_grids: tuple = ()
    split_payloads: int = 0
    halo_exchanges: int = 0
    halo_bytes: int = 0
    strip_respawns: int = 0
    # socket-engine counters (zero for the in-process engines)
    engine: str = "pool"
    hosts: str = ""
    daemons: int = 0
    reconnects: int = 0
    net_bytes_sent: int = 0
    net_bytes_received: int = 0
    net_send_seconds: float = 0.0
    net_recv_seconds: float = 0.0
    #: trace-derived metrics of the run (None when it was not traced)
    trace: Optional["TraceAnalysis"] = None

    def lines(self) -> list[str]:
        """Human-readable report lines for the CLI."""
        m = self.makespan
        network = []
        if self.engine == "socket":
            network.append(
                f"socket engine: {self.daemons} daemon(s) on "
                f"{self.hosts or 'localhost'}, "
                f"{self.net_bytes_sent + self.net_bytes_received} framed "
                f"bytes ({self.net_bytes_sent} sent / "
                f"{self.net_bytes_received} received), "
                f"{self.net_send_seconds + self.net_recv_seconds:.3f}s on "
                f"the wire, {self.reconnects} reconnect(s)"
            )
        resilience = []
        if self.faults:
            resilience.append(
                f"resilience: {self.faults} faults over {self.attempts} "
                f"attempts, {self.recovered} recovered, "
                f"{self.fallbacks} sequential fallbacks, "
                f"{self.pool_respawns} pool respawns"
            )
        transport = []
        if self.data_plane == "shm":
            transport.append(
                f"data plane: shm, {self.shm_payloads} zero-copy payloads "
                f"({self.transport_shm_bytes} bytes)"
                + (
                    f", {self.shm_fallbacks} pickle fallbacks "
                    f"({self.transport_pickle_bytes} bytes)"
                    if self.shm_fallbacks
                    else ""
                )
            )
            transport.append(
                f"transport: write {self.shm_write_seconds * 1e3:.1f} ms + "
                f"attach {self.attach_seconds * 1e3:.1f} ms; streaming "
                f"combine {self.combine_seconds * 1e3:.1f} ms "
                f"(overlap ratio {self.overlap_ratio:.2f})"
            )
        elif self.transport_pickle_bytes:
            transport.append(
                f"data plane: pickle, {self.transport_pickle_bytes} bytes "
                f"through the result pipe"
            )
        splitting = []
        if self.split_payloads:
            grids = ", ".join(
                f"({l},{m})×{k}" for (l, m), k in self.split_grids
            )
            splitting.append(
                f"split ({self.split}): {self.split_payloads} sharded "
                f"grid(s) [{grids}], {self.halo_exchanges} halo "
                f"exchange(s) ({self.halo_bytes} bytes)"
                + (
                    f", {self.strip_respawns} strip respawn(s)"
                    if self.strip_respawns
                    else ""
                )
            )
        traced = []
        if self.trace is not None:
            t = self.trace
            lanes = t.worker_utilization()
            traced.append(
                f"trace: mean utilization {t.mean_utilization:.2f} over "
                f"{len(lanes)} worker lane(s), queue wait "
                f"{t.total_queue_wait_seconds:.3f}s vs compute "
                f"{t.total_compute_seconds:.3f}s, critical path "
                f"{t.critical_path_seconds:.3f}s"
            )
            if t.n_faults:
                traced.append(
                    f"trace: recovery overhead "
                    f"{t.recovery_overhead_seconds:.3f}s "
                    f"({t.fault_seconds_lost:.3f}s lost + "
                    f"{t.replay_compute_seconds:.3f}s replayed)"
                )
            if t.n_strip_factors:
                traced.append(
                    f"trace: split efficiency — {t.n_strip_factors} strip "
                    f"factor(s) ({t.strip_factor_seconds:.3f}s serial, "
                    f"{t.critical_strip_factor_seconds:.3f}s critical), "
                    f"{t.n_schur_solves} interface solve(s) "
                    f"({t.schur_solve_seconds:.3f}s), "
                    f"{t.n_halo_exchanges} halo exchange(s)"
                )
        return network + resilience + transport + splitting + traced + [
            f"dispatch: {self.dispatch}, pool: "
            f"{'warm' if self.warm_pool else 'cold'}"
            + (
                f" (fork {self.pool_cold_start_seconds * 1e3:.1f} ms)"
                if not self.warm_pool
                else ""
            ),
            f"operator cache: {self.operator_cache_hits} hits / "
            f"{self.operator_cache_misses} misses "
            f"(hit ratio {self.operator_cache_hit_ratio:.2f})",
            f"factorization reuse: ratio {self.factor_reuse_ratio:.2f}, "
            f"{self.factor_cache_hits} cross-run factor-cache hits",
            f"makespan @{m.n_workers} workers: dispatched "
            f"{m.dispatched_seconds:.3f}s vs static-chunk "
            f"{m.static_chunk_seconds:.3f}s "
            f"(gain {m.gain_over_static:.2f}x, lower bound "
            f"{m.lower_bound_seconds:.3f}s)",
            f"pool {self.pool_seconds:.3f}s, total {self.total_seconds:.3f}s",
        ]


def _as_trace_analysis(trace):
    """Accept a TraceRecorder, an event sequence, or a TraceAnalysis."""
    if trace is None:
        return None
    from repro.trace.analysis import TraceAnalysis
    from repro.trace.recorder import TraceRecorder

    if isinstance(trace, TraceAnalysis):
        return trace
    if isinstance(trace, TraceRecorder):
        return TraceAnalysis(trace.events())
    return TraceAnalysis(trace)


def warm_path_report(
    result: MultiprocessingResult,
    n_workers: Optional[int] = None,
    *,
    trace=None,
) -> WarmPathReport:
    """Summarize one ``run_multiprocessing`` result.

    ``trace`` — the run's :class:`~repro.trace.TraceRecorder` (or its
    events, or a ready :class:`~repro.trace.TraceAnalysis`) adds the
    trace-derived utilization / queue-wait / critical-path metrics to
    the report.
    """
    return WarmPathReport(
        level=result.level,
        tol=result.tol,
        dispatch=result.dispatch,
        warm_pool=result.warm_pool,
        pool_cold_start_seconds=result.pool_cold_start_seconds,
        operator_cache_hits=result.operator_cache_hits,
        operator_cache_misses=result.operator_cache_misses,
        operator_cache_hit_ratio=result.operator_cache_hit_ratio,
        factor_cache_hits=result.factor_cache_hits,
        factor_reuse_ratio=result.factor_reuse_ratio,
        pool_seconds=result.pool_seconds,
        total_seconds=result.total_seconds,
        makespan=dispatch_makespan(result, n_workers),
        attempts=result.attempts,
        faults=result.faults,
        recovered=result.recovered,
        fallbacks=result.fallbacks,
        pool_respawns=result.pool_respawns,
        data_plane=result.data_plane,
        shm_payloads=result.shm_payloads,
        shm_fallbacks=result.shm_fallbacks,
        transport_shm_bytes=result.transport_shm_bytes,
        transport_pickle_bytes=result.transport_pickle_bytes,
        shm_write_seconds=result.shm_write_seconds,
        attach_seconds=result.attach_seconds,
        combine_seconds=result.combine_seconds,
        overlap_ratio=result.overlap_ratio,
        split=getattr(result, "split", "off"),
        split_grids=getattr(result, "split_grids", ()),
        split_payloads=getattr(result, "split_payloads", 0),
        halo_exchanges=getattr(result, "halo_exchanges", 0),
        halo_bytes=getattr(result, "halo_bytes", 0),
        strip_respawns=getattr(result, "strip_respawns", 0),
        engine=result.engine,
        hosts=result.hosts,
        daemons=result.daemons,
        reconnects=result.reconnects,
        net_bytes_sent=result.net_bytes_sent,
        net_bytes_received=result.net_bytes_received,
        net_send_seconds=result.net_send_seconds,
        net_recv_seconds=result.net_recv_seconds,
        trace=_as_trace_analysis(trace),
    )
