"""The ``a -> b -> c.port`` stream-configuration notation.

MANIFOLD states wire processes with chained arrows; the paper's central
line is::

    &worker -> master -> worker -> master.dataport

Each arrow creates a stream from the element on its left to the element
on its right; a bare process name means its default port (``output``
when producing, ``input`` when consuming), ``name.port`` selects a
specific port, and ``&name`` injects the named process's *reference* as
a literal unit.  This module parses that notation so coordinator state
bodies can use it verbatim::

    ctx.wire(
        "&worker -> master -> worker -> master.dataport",
        env={"worker": worker, "master": master},
        types={2: StreamType.KK},          # third arrow: the KK stream
    )

The ``types`` mapping assigns stream types by arrow index (0-based),
defaulting to BK exactly like the language.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from .errors import StreamError
from .ports import Port, PortDirection
from .process import ProcessBase
from .streams import Stream, StreamType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .states import StateContext

__all__ = ["WireElement", "parse_wire_spec", "wire"]


@dataclass(frozen=True)
class WireElement:
    """One element of a chain: a process endpoint or a reference."""

    name: str
    port: Optional[str]      # None = default port for the position
    is_reference: bool       # the &p form

    def resolve_process(self, env: Mapping[str, ProcessBase]) -> ProcessBase:
        try:
            return env[self.name]
        except KeyError:
            raise StreamError(
                f"wire spec references unknown process {self.name!r}; "
                f"known: {sorted(env)}"
            ) from None

    def sink_port(self, env: Mapping[str, ProcessBase]) -> Port:
        proc = self.resolve_process(env)
        port = proc.port(self.port or "input")
        if port.direction is not PortDirection.IN:
            raise StreamError(
                f"{self.name}.{port.name} is not an input port"
            )
        return port

    def source_port(self, env: Mapping[str, ProcessBase]) -> Port:
        proc = self.resolve_process(env)
        port = proc.port(self.port or "output")
        if port.direction is not PortDirection.OUT:
            raise StreamError(
                f"{self.name}.{port.name} is not an output port"
            )
        return port


def parse_wire_spec(spec: str) -> list[WireElement]:
    """Parse a chain like ``&a -> b.dataport -> c`` into elements."""
    parts = [part.strip() for part in spec.split("->")]
    if len(parts) < 2:
        raise StreamError(f"wire spec needs at least one arrow: {spec!r}")
    elements = []
    for part in parts:
        if not part:
            raise StreamError(f"empty element in wire spec: {spec!r}")
        is_reference = part.startswith("&")
        body = part[1:] if is_reference else part
        name, dot, port = body.partition(".")
        if not name or (dot and not port):
            raise StreamError(f"malformed wire element {part!r} in {spec!r}")
        if is_reference and dot:
            raise StreamError(
                f"a reference element cannot name a port: {part!r}"
            )
        elements.append(
            WireElement(name=name, port=port if dot else None,
                        is_reference=is_reference)
        )
    if any(e.is_reference for e in elements[1:]):
        raise StreamError(
            f"only the first element of a chain may be a reference: {spec!r}"
        )
    return elements


def wire(
    ctx: "StateContext",
    spec: str,
    env: Mapping[str, ProcessBase],
    types: Optional[Mapping[int, StreamType]] = None,
) -> list[Stream]:
    """Realize a chain inside a coordinator state.

    Returns the created streams in arrow order.  All streams are
    recorded against the current state (dismantled per type on
    preemption), exactly as :meth:`StateContext.connect` would.
    """
    elements = parse_wire_spec(spec)
    types = dict(types or {})
    streams: list[Stream] = []
    for index, (left, right) in enumerate(zip(elements, elements[1:])):
        stream_type = types.get(index, StreamType.BK)
        sink = right.sink_port(env)
        if left.is_reference:
            reference = left.resolve_process(env).reference()
            streams.append(ctx.send(reference, sink, type=stream_type))
        else:
            streams.append(
                ctx.connect(left.source_port(env), sink, type=stream_type)
            )
    return streams
