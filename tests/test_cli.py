"""The command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from tests.conftest import synthetic_records


@pytest.fixture(scope="module")
def model_file(tmp_path_factory):
    """A synthetic calibration file so CLI tests skip real calibration."""
    from repro.perf.costmodel import CostModel

    model = CostModel.fit(synthetic_records(), root=2)
    path = tmp_path_factory.mktemp("cli") / "model.json"
    model.to_json(path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults_match_paper(self):
        args = build_parser().parse_args(["run-sequential"])
        assert args.root == 2
        assert args.tol == 1.0e-3

    def test_table1_levels_parsed(self):
        args = build_parser().parse_args(["table1", "--levels", "0", "5", "15"])
        assert args.levels == [0, 5, 15]


class TestCommands:
    def test_run_sequential(self, capsys):
        assert main(["run-sequential", "--level", "1"]) == 0
        out = capsys.readouterr().out
        assert "grids: 3" in out
        assert "total" in out

    def test_run_concurrent_with_verify(self, capsys):
        assert main(["run-concurrent", "--level", "1", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "workers: 3" in out
        assert "bitwise identical to sequential: True" in out

    def test_run_concurrent_pool_per_diagonal(self, capsys):
        assert main([
            "run-concurrent", "--level", "1", "--pool-per-diagonal", "--verify"
        ]) == 0
        assert "True" in capsys.readouterr().out

    def test_run_parallel_warm_repeat_with_verify(self, capsys):
        from repro.restructured import shutdown_pool

        shutdown_pool()
        try:
            assert main([
                "run-parallel", "--level", "1", "--repeat", "2", "--verify"
            ]) == 0
            out = capsys.readouterr().out
            assert "run 1 (cool)" in out
            assert "run 2 (warm)" in out
            assert "operator cache" in out
            assert "makespan" in out
            assert "bitwise identical to sequential: True" in out
        finally:
            shutdown_pool()

    def test_run_parallel_cold_mode(self, capsys):
        assert main(["run-parallel", "--level", "1", "--cold"]) == 0
        out = capsys.readouterr().out
        assert "run 1 (cold)" in out
        assert "pool: cold" in out

    def test_run_parallel_static_dispatch(self, capsys):
        from repro.restructured import shutdown_pool

        shutdown_pool()
        try:
            assert main([
                "run-parallel", "--level", "1", "--dispatch", "static"
            ]) == 0
            assert "dispatch: static" in capsys.readouterr().out
        finally:
            shutdown_pool()

    def test_calibrate_writes_model(self, tmp_path, capsys, monkeypatch):
        # This test covers the CLI glue (argument plumbing, JSON output),
        # not the measurement itself: real timings under background load
        # can legitimately fail the degenerate-fit guard, so substitute
        # deterministic records.  Real calibration is exercised by
        # tests/perf/test_costmodel.py::TestRealCalibration.
        def fake_measure(problem, root, levels, tols, repeats=1):
            assert repeats >= 1
            return synthetic_records(root=root, levels=range(2, 7), tols=tols)

        monkeypatch.setattr("repro.perf.measure_costs", fake_measure)
        out_path = tmp_path / "cal.json"
        code = main([
            "calibrate", "--levels", "3", "4", "--tols", "1e-3",
            "--output", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert "wall_coefficients" in payload

    def test_table1_from_model_file(self, model_file, capsys):
        code = main([
            "table1", "--model", model_file, "--levels", "0", "15",
            "--tols", "1e-3", "--runs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "st(paper)" in out
        assert " 15 " in out

    def test_trace_from_model_file(self, model_file, capsys):
        code = main(["trace", "--model", model_file, "--level", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "-> Welcome" in out
        assert "-> Bye" in out
        assert "bumpa.sen.cwi.nl" in out

    def test_figures_from_model_file(self, model_file, capsys):
        code = main([
            "figures", "--model", model_file, "--max-level", "8", "--runs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 5" in out

    def test_ablations_from_model_file(self, model_file, capsys):
        code = main([
            "ablations", "--model", model_file, "--level", "10",
            "--scenarios", "paper", "no-perpetual",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper" in out
        assert "no-perpetual" in out

    def test_ablations_unknown_scenario_fails(self, model_file):
        with pytest.raises(KeyError):
            main([
                "ablations", "--model", model_file, "--scenarios", "warp-drive",
            ])

    def test_experiments_index(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "Table 1" in out

    def test_experiments_quick_run(self, model_file, capsys):
        assert main(["experiments", "--run", "e7", "--model", model_file]) == 0
        out = capsys.readouterr().out
        assert "-> Welcome" in out

    def test_experiments_bench_only_entry(self, model_file, capsys):
        assert main(["experiments", "--run", "E10", "--model", model_file]) == 0
        out = capsys.readouterr().out
        assert "use the bench" in out

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "run-sequential", "--level", "0"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "grids: 1" in result.stdout
