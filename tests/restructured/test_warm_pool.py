"""The persistent pool, dispatch policies, and warm-path plumbing of
``run_multiprocessing``.

The pool tests exercise the real fork pool at a tiny level so they stay
fast; the bitwise-identity assertions are the acceptance criterion —
warm and cold configurations must agree with the sequential loop to the
last bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.restructured import (
    PersistentWorkerPool,
    ProcessPoolEngine,
    SubsolveJobSpec,
    acquire_pool,
    execute_job,
    order_longest_first,
    pool_diagnostics,
    predicted_spec_seconds,
    run_multiprocessing,
    shutdown_pool,
)
from repro.sparsegrid import SequentialApplication
from repro.sparsegrid.grid import nested_loop_grids

LEVEL = 2
TOL = 1.0e-3


@pytest.fixture(autouse=True)
def fresh_pool_state():
    """Each test starts and ends without a shared pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def _spec(l: int, m: int, root: int = 2) -> SubsolveJobSpec:
    return SubsolveJobSpec(
        problem_name="rotating-cone", root=root, l=l, m=m, tol=TOL
    )


class TestPersistentWorkerPool:
    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            PersistentWorkerPool(0)

    def test_dispatch_counters_and_graceful_shutdown(self):
        pool = PersistentWorkerPool(1)
        try:
            assert pool.cold_start_seconds > 0.0
            out = pool.map_static(execute_job, [_spec(0, 0), _spec(0, 1)])
            assert len(out) == 2
            assert pool.jobs_dispatched == 2
            assert pool.batches_dispatched == 1
            unordered = list(pool.imap_unordered(execute_job, [_spec(1, 0)]))
            assert len(unordered) == 1
            assert pool.jobs_dispatched == 3
            assert pool.batches_dispatched == 2
        finally:
            pool.shutdown()
        pool.shutdown()  # idempotent
        with pytest.raises(RuntimeError, match="shut down"):
            pool.map_static(execute_job, [_spec(0, 0)])

    def test_apply_runs_one_job(self):
        pool = PersistentWorkerPool(1)
        try:
            payload = pool.apply(execute_job, (_spec(1, 1),))
            assert payload.l == 1 and payload.m == 1
            assert pool.jobs_dispatched == 1
        finally:
            pool.shutdown()


class TestAcquirePool:
    def test_second_acquisition_is_warm_and_same_pool(self):
        first, warm1 = acquire_pool(1)
        second, warm2 = acquire_pool(1)
        assert not warm1 and warm2
        assert second is first

    def test_larger_requirement_grows_pool(self):
        small, _ = acquire_pool(1)
        grown, warm = acquire_pool(2)
        assert not warm
        assert grown is not small
        assert grown.processes == 2
        assert small.closed  # the old pool was drained, not abandoned

    def test_none_accepts_any_live_pool(self):
        pool, _ = acquire_pool(1)
        again, warm = acquire_pool(None)
        assert warm and again is pool

    def test_diagnostics_reflect_state(self):
        assert pool_diagnostics()["alive"] is False
        acquire_pool(1)
        diag = pool_diagnostics()
        assert diag["alive"] is True
        assert diag["processes"] == 1
        shutdown_pool()
        assert pool_diagnostics()["alive"] is False


class TestDispatchOrdering:
    def test_longest_first_orders_by_interior_count(self):
        specs = [_spec(g.l, g.m) for g in nested_loop_grids(2, 4)]
        ordered = order_longest_first(specs)
        costs = [predicted_spec_seconds(s) for s in ordered]
        assert costs == sorted(costs, reverse=True)
        # the top diagonal's near-square grids lead; the paper loop's
        # coarse opener is nowhere near the front
        assert ordered[0].l + ordered[0].m == 4
        assert (ordered[-1].l, ordered[-1].m) != (ordered[0].l, ordered[0].m)

    def test_proxy_is_interior_count(self):
        spec = _spec(2, 1)
        assert predicted_spec_seconds(spec) == float(spec.grid.n_interior)

    def test_cost_model_overrides_proxy(self):
        class Inverting:
            def predict_seconds(self, l, m, tol):
                return -float(l)  # deliberately backwards

        specs = [_spec(0, 2), _spec(1, 1), _spec(2, 0)]
        ordered = order_longest_first(specs, Inverting())
        assert [s.l for s in ordered] == [0, 1, 2]

    def test_stable_on_ties(self):
        specs = [_spec(1, 1), _spec(2, 0), _spec(0, 2)]  # equal n_interior? no —
        # use a constant model to force ties; loop order must survive
        class Flat:
            def predict_seconds(self, l, m, tol):
                return 1.0

        ordered = order_longest_first(specs, Flat())
        assert [(s.l, s.m) for s in ordered] == [(1, 1), (2, 0), (0, 2)]


class TestRunMultiprocessing:
    def test_pool_reuse_across_two_runs(self):
        # processes=1 makes the cache property deterministic: caches are
        # per worker, so with several workers a job may land on one that
        # has not seen its grid yet
        first = run_multiprocessing(root=2, level=LEVEL, tol=TOL, processes=1)
        second = run_multiprocessing(root=2, level=LEVEL, tol=TOL, processes=1)
        assert not first.warm_pool
        assert first.pool_cold_start_seconds > 0.0
        assert second.warm_pool
        assert second.pool_cold_start_seconds == 0.0
        assert np.array_equal(first.combined, second.combined)
        # with one shared fork pool the second run's workers inherit or
        # retain warm caches: every operator request hits
        assert second.operator_cache_hit_ratio == 1.0

    def test_warm_and_cold_match_sequential_bitwise(self):
        sequential = SequentialApplication(root=2, level=LEVEL, tol=TOL).run()
        cold = run_multiprocessing(
            root=2, level=LEVEL, tol=TOL,
            warm_pool=False, operator_cache=False, dispatch="static",
        )
        warm = run_multiprocessing(root=2, level=LEVEL, tol=TOL)
        warm2 = run_multiprocessing(root=2, level=LEVEL, tol=TOL)
        assert np.array_equal(cold.combined, sequential.combined)
        assert np.array_equal(warm.combined, sequential.combined)
        assert np.array_equal(warm2.combined, sequential.combined)
        assert not cold.warm_pool
        assert warm2.warm_pool

    def test_dispatch_order_recorded_longest_first(self):
        result = run_multiprocessing(root=2, level=LEVEL, tol=TOL)
        assert result.dispatch == "longest-first"
        n_grids = 2 * LEVEL + 1
        assert len(result.dispatch_order) == n_grids
        assert len(result.completion_order) == n_grids
        assert set(result.completion_order) == set(result.dispatch_order)
        # heaviest diagonal first under the n_interior proxy
        l0, m0 = result.dispatch_order[0]
        assert l0 + m0 == LEVEL

    def test_static_dispatch_keeps_loop_order(self):
        result = run_multiprocessing(
            root=2, level=LEVEL, tol=TOL, dispatch="static"
        )
        expected = tuple((g.l, g.m) for g in nested_loop_grids(2, LEVEL))
        assert result.dispatch == "static"
        assert result.dispatch_order == expected
        assert np.array_equal(
            result.combined,
            SequentialApplication(root=2, level=LEVEL, tol=TOL).run().combined,
        )

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ValueError, match="dispatch"):
            run_multiprocessing(root=2, level=LEVEL, tol=TOL, dispatch="fifo")

    def test_observability_counters_populated(self):
        run_multiprocessing(root=2, level=LEVEL, tol=TOL, processes=1)
        result = run_multiprocessing(root=2, level=LEVEL, tol=TOL, processes=1)
        assert result.operator_cache_hits == len(result.payloads)
        assert result.operator_cache_misses == 0
        assert 0.0 <= result.factor_reuse_ratio <= 1.0
        payload = next(iter(result.payloads.values()))
        assert payload.prepare_calls > 0
        # a cache hit skips assembly entirely
        assert payload.operator_cache_hit
        assert payload.assembly_seconds == 0.0


class TestProcessPoolEngine:
    def test_persistent_engine_borrows_shared_pool(self):
        engine = ProcessPoolEngine(processes=1)
        try:
            assert not engine.warm_start  # fresh state fixture
            payload = engine.compute(_spec(1, 1))
            assert payload.l == 1
        finally:
            engine.close()
        # close() detaches only: the shared pool stays warm
        assert pool_diagnostics()["alive"] is True
        second = ProcessPoolEngine(processes=1)
        try:
            assert second.warm_start
        finally:
            second.close()

    def test_persistent_engine_compute_after_close_raises(self):
        engine = ProcessPoolEngine(processes=1)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.compute(_spec(0, 0))

    def test_private_engine_owns_and_drains_its_pool(self):
        engine = ProcessPoolEngine(processes=1, persistent=False)
        assert not engine.warm_start
        payload = engine.compute(_spec(1, 0))
        assert payload.m == 0
        engine.close()
        engine.close()  # idempotent
        # the private pool never touched the shared one
        assert pool_diagnostics()["alive"] is False
