"""Real multi-core execution via ``multiprocessing`` — the GIL workaround.

The coordination-faithful configurations in :mod:`mainprog` demonstrate
the protocol; this module is the measurement configuration for *actual*
speedup on the present machine: the same grids, the same ``subsolve``,
fanned out over a process pool, with the same prolongation at the end.
Because ``subsolve`` touches only its own grid (the paper's cut
criterion), the fan-out is embarrassingly parallel and results are
bitwise identical to the sequential loop.

The warm path (the defaults) removes the seed's coordination-layer
overhead in three ways:

* the pool is the process-wide **persistent** pool of :mod:`pool` —
  repeat runs find warm workers instead of re-forking;
* workers serve operators and LU factors from their process-local
  **cache** (:mod:`repro.sparsegrid.cache`) instead of re-assembling;
* jobs are dispatched **longest-predicted-first** through
  ``imap_unordered`` with chunksize 1 — LPT scheduling — instead of
  ``pool.map``'s static contiguous chunks, which lose makespan on the
  geometrically-skewed grid family (the biggest diagonal sits at the
  *end* of the paper's loop order).

``dispatch="static"``, ``warm_pool=False`` and ``operator_cache=False``
reproduce the seed behaviour exactly, so the benchmarks can measure the
cold/warm gap.  Every configuration is bitwise identical in its output.

**Fault tolerance.**  Passing any of ``retry``, ``deadline``,
``escalation`` or ``faults`` switches the fan-out to the resilient
dispatch loop: every job is submitted individually (``apply_async``,
preserving the greedy LPT pull order), workers report heartbeats, and
the master watches three fault channels —

1. a job's exception (e.g. an injected transient fault) surfaces
   through its ``AsyncResult``;
2. a **crashed** worker is caught by PID liveness: the heartbeat names
   the worker holding each job, so a vanished PID convicts exactly one
   lost job, which is re-dispatched immediately (``multiprocessing``
   itself would let its ``AsyncResult`` wait forever);
3. a **hung** worker trips its per-job deadline (cost-model-scaled via
   :class:`~repro.resilience.policy.DeadlinePolicy`); the wedged pool
   is force-respawned and only the in-flight jobs re-dispatched —
   completed results are keyed by grid ``(l, m)`` and never recomputed,
   and because ``subsolve`` is deterministic, replays are idempotent:
   the combined solution stays bitwise identical to a fault-free run.

Escalation follows :class:`~repro.resilience.policy.EscalationPolicy`:
retry → reassign → in-master sequential ``subsolve`` → fail the run
with a structured :class:`~repro.resilience.policy.FaultReport` inside
:class:`~repro.resilience.policy.FaultToleranceExhausted`.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Optional, Union

import numpy as np

from repro.sparsegrid.combination import combine
from repro.sparsegrid.grid import Grid, nested_loop_grids
from repro.trace.recorder import recording, trace_span

from .pool import PersistentWorkerPool, acquire_pool, respawn_pool
from .worker import (
    SubsolveJobSpec,
    SubsolvePayload,
    execute_job,
    execute_job_uncached,
    shm_entry,
)

__all__ = [
    "MultiprocessingResult",
    "predicted_spec_seconds",
    "order_longest_first",
    "resolve_split_map",
    "run_multiprocessing",
]

DISPATCH_POLICIES = ("longest-first", "static")

#: execution substrates: ``pool`` is the fork pool (warm path), ``task``
#: fans threads out over one :class:`~repro.restructured.taskengine.
#: TaskInstanceEngine` (the MLINK semantics, in-machine), ``socket``
#: dispatches over real TCP to worker daemons
#: (:mod:`repro.restructured.netengine`)
ENGINES = ("pool", "task", "socket")

#: result transports: ``pickle`` is the seed channel (serialize → pipe →
#: deserialize per payload, barriered combine); ``shm`` is the zero-copy
#: data plane of :mod:`repro.perf.dataplane` with streaming combination
DATA_PLANES = ("pickle", "shm")


def _trace_payload(trace, payload, *, attempt: int = 1, fallback: bool = False) -> None:
    """Emit one completed job's lifecycle onto the trace timeline.

    The start/finish timestamps were measured by the worker process's
    own monotonic clock and carried home in the payload; on Linux that
    is the same ``CLOCK_MONOTONIC`` the recorder's default clock reads,
    so they land directly on the shared time axis.
    """
    if trace is None:
        return
    key = (payload.l, payload.m)
    worker = payload.worker_pid or None
    started = payload.started_monotonic or None
    trace.record(
        "cache_hit" if payload.operator_cache_hit else "cache_miss",
        key=key,
        worker=worker,
        t=started,
    )
    trace.record("job_start", key=key, worker=worker, attempt=attempt, t=started)
    extra = {"fallback": True} if fallback else {}
    trace.record(
        "job_done",
        key=key,
        worker=worker,
        attempt=attempt,
        t=payload.finished_monotonic or None,
        wall_seconds=payload.wall_seconds,
        **extra,
    )
    if getattr(payload, "split_k", 1) > 1:
        # sharded job: the strips ran inside the worker process, where
        # the global emit() hook is a no-op — lift the counters the
        # payload carried home onto the master's timeline as one
        # aggregate event per kind
        trace.record(
            "strip_factor",
            key=key,
            worker=worker,
            attempt=attempt,
            split_k=payload.split_k,
            count=payload.strip_factorizations,
            seconds=payload.strip_factor_seconds,
            critical_seconds=payload.critical_strip_factor_seconds,
        )
        trace.record(
            "halo_exchange",
            key=key,
            worker=worker,
            attempt=attempt,
            exchanges=payload.halo_exchanges,
            payload_bytes=payload.halo_bytes,
        )
        trace.record(
            "schur_solve",
            key=key,
            worker=worker,
            attempt=attempt,
            count=payload.interface_solves,
            seconds=payload.interface_solve_seconds,
            interface_unknowns=payload.interface_unknowns,
        )


def predicted_spec_seconds(spec: SubsolveJobSpec, cost_model=None) -> float:
    """Predicted ``subsolve`` cost of one job, for dispatch ordering.

    With a calibrated :class:`~repro.perf.costmodel.CostModel` the
    prediction is its fitted wall time.  Without one, a structural
    proxy: the interior unknown count.  ``n_interior`` grows
    geometrically with the diagonal ``l+m`` (separating the two
    diagonals of the family by ~4x) and, within a diagonal, peaks at
    the square grid — matching the measured per-grid profile, where
    assembly, factorization bandwidth and per-solve cost all scale with
    the unknowns.
    """
    if cost_model is not None:
        return float(cost_model.predict_seconds(spec.l, spec.m, spec.tol))
    return float(spec.grid.n_interior)


def order_longest_first(
    specs: list[SubsolveJobSpec], cost_model=None
) -> list[SubsolveJobSpec]:
    """Longest-predicted-first (LPT) dispatch order; ties keep loop
    order (the sort is stable)."""
    return sorted(
        specs,
        key=lambda s: predicted_spec_seconds(s, cost_model),
        reverse=True,
    )


def resolve_split_map(
    split: Union[str, int],
    specs: list[SubsolveJobSpec],
    *,
    level: int,
    tol: float,
    n_workers: int,
    cost_model=None,
) -> dict[tuple[int, int], int]:
    """Which grids to shard, and into how many strips: ``{(l, m): k}``.

    ``"off"`` (or a single worker — splitting cannot shorten a one-lane
    schedule) splits nothing.  An integer ``k`` splits the head-of-line
    grids — every grid tied at the maximal interior size, which on the
    even diagonal means both square-ish twins.  ``"auto"`` asks the
    calibrated cost model where splitting beats LPT packing
    (:meth:`~repro.perf.costmodel.CostModel.plan_split`: split only when
    the predicted makespan drops); without a calibrated model it falls
    back to the structural choice ``k=2`` on the top grids, mirroring
    the integer path.
    """
    if split == "off" or n_workers < 2 or not specs:
        return {}
    if split == "auto":
        if cost_model is not None and hasattr(cost_model, "plan_split"):
            planned = cost_model.plan_split(level, tol, n_workers=n_workers)
            if planned is not None:
                return dict(planned)
        split = 2
    k = int(split)
    if k < 1:
        raise ValueError(f"split must be 'off', 'auto' or k >= 1, got {k}")
    if k == 1:
        return {}
    top = max(s.grid.n_interior for s in specs)
    return {
        (s.l, s.m): k for s in specs if s.grid.n_interior == top
    }


@dataclass
class MultiprocessingResult:
    root: int
    level: int
    tol: float
    processes: int
    payloads: dict[tuple[int, int], SubsolvePayload]
    target_grid: Grid
    combined: np.ndarray
    total_seconds: float
    pool_seconds: float
    # ------------------------------------------------------------------
    # warm-path observability
    # ------------------------------------------------------------------
    #: dispatch policy used ("longest-first" or "static")
    dispatch: str = "static"
    #: the shared pool pre-existed this call (warm workers)
    warm_pool: bool = False
    #: seconds spent forking a pool inside this call (0.0 when warm)
    pool_cold_start_seconds: float = 0.0
    #: grids in the order jobs were handed to the pool
    dispatch_order: tuple[tuple[int, int], ...] = ()
    #: grids in the order their results arrived
    completion_order: tuple[tuple[int, int], ...] = ()
    # ------------------------------------------------------------------
    # fault tolerance (the resilient dispatch loop fills these in; a
    # fault-free run on the plain path reports attempts == n jobs)
    # ------------------------------------------------------------------
    #: job dispatches, replays and collateral re-dispatches included
    attempts: int = 0
    #: observed fault events (crash, hang/deadline, transient exception)
    faults: int = 0
    #: grids that faulted at least once but ultimately completed
    recovered: int = 0
    #: grids completed by the in-master sequential fallback
    fallbacks: int = 0
    #: pool generations force-respawned to reclaim wedged workers
    pool_respawns: int = 0
    #: the detection-ordered fault history
    fault_events: tuple = ()
    #: grids behind the ``recovered`` / ``fallbacks`` counters
    recovered_keys: tuple[tuple[int, int], ...] = ()
    fallback_keys: tuple[tuple[int, int], ...] = ()

    # ------------------------------------------------------------------
    # data plane (the shm transport + streaming combination fill these
    # in; a pickle run reports every payload on the pickle channel)
    # ------------------------------------------------------------------
    #: result transport of this run ("pickle" or "shm")
    data_plane: str = "pickle"
    #: combination was fed per-arrival instead of after the barrier
    streaming: bool = False
    #: payloads whose solution traveled through a shared-memory lease
    shm_payloads: int = 0
    #: payloads that fell back to the pickle channel on an shm run
    shm_fallbacks: int = 0
    #: solution bytes that crossed each transport
    transport_shm_bytes: int = 0
    transport_pickle_bytes: int = 0
    #: worker-side seconds writing + checksumming shm payloads
    shm_write_seconds: float = 0.0
    #: master-side seconds verifying + attaching descriptors
    attach_seconds: float = 0.0
    #: master-side seconds resampling/folding grids into the target
    combine_seconds: float = 0.0
    #: the subset of ``combine_seconds`` spent while subsolves were
    #: still outstanding — work the barriered path serializes
    combine_overlap_seconds: float = 0.0
    #: the :class:`~repro.perf.dataplane.DataPlaneAudit` of the run
    data_plane_audit: Optional[object] = None

    # ------------------------------------------------------------------
    # the socket engine (zero on the in-machine engines)
    # ------------------------------------------------------------------
    #: execution substrate of this run ("pool", "task" or "socket")
    engine: str = "pool"
    #: the resolved ``--hosts`` spec ("" off the socket engine)
    hosts: str = ""
    #: worker daemons the master talked to
    daemons: int = 0
    #: connections re-established after a drop, silence, or daemon kill
    reconnects: int = 0
    #: framed bytes that crossed the sockets, each direction
    net_bytes_sent: int = 0
    net_bytes_received: int = 0
    #: master-side seconds inside socket send / result-body receive
    net_send_seconds: float = 0.0
    net_recv_seconds: float = 0.0

    # ------------------------------------------------------------------
    # intra-grid decomposition (sharded jobs; "off" runs report nothing)
    # ------------------------------------------------------------------
    #: the resolved ``split`` request ("off", "auto", or "k=<n>")
    split: str = "off"
    #: the grids actually split, as ``((l, m), k)`` pairs
    split_grids: tuple = ()

    @property
    def split_payloads(self) -> int:
        """Payloads computed by strip substructuring."""
        return sum(
            1
            for p in self.payloads.values()
            if getattr(p, "split_k", 1) > 1
        )

    @property
    def halo_bytes(self) -> int:
        """Halo/interface vector bytes exchanged by split solves."""
        return sum(
            getattr(p, "halo_bytes", 0) for p in self.payloads.values()
        )

    @property
    def halo_exchanges(self) -> int:
        return sum(
            getattr(p, "halo_exchanges", 0) for p in self.payloads.values()
        )

    @property
    def strip_respawns(self) -> int:
        """Strip children respawned by the team executors' fault path."""
        return sum(
            getattr(p, "strip_respawns", 0) for p in self.payloads.values()
        )

    @property
    def overlap_ratio(self) -> float:
        """Fraction of combination time hidden behind the fan-out."""
        if self.combine_seconds <= 0.0:
            return 0.0
        return self.combine_overlap_seconds / self.combine_seconds

    @property
    def fault_report(self):
        """The run's failure history as a structured report."""
        from repro.resilience import FaultReport

        return FaultReport(
            events=tuple(self.fault_events),
            recovered_keys=self.recovered_keys,
            fallback_keys=self.fallback_keys,
        )

    @property
    def n_workers(self) -> int:
        return len(self.payloads)

    @property
    def operator_cache_hits(self) -> int:
        return sum(1 for p in self.payloads.values() if p.operator_cache_hit)

    @property
    def operator_cache_misses(self) -> int:
        return len(self.payloads) - self.operator_cache_hits

    @property
    def operator_cache_hit_ratio(self) -> float:
        if not self.payloads:
            return 0.0
        return self.operator_cache_hits / len(self.payloads)

    @property
    def factor_cache_hits(self) -> int:
        return sum(p.factor_cache_hits for p in self.payloads.values())

    @property
    def factor_reuse_ratio(self) -> float:
        """Pooled over all grids: prepares served without a fresh LU."""
        prepares = sum(p.prepare_calls for p in self.payloads.values())
        if prepares == 0:
            return 0.0
        reused = sum(p.factor_reuse_hits for p in self.payloads.values())
        return reused / prepares


# ----------------------------------------------------------------------
# the streaming fan-in
# ----------------------------------------------------------------------
@contextmanager
def _plane_guard(plane):
    """Close the data plane on every exit path; yields a dict that holds
    the :class:`~repro.perf.dataplane.DataPlaneAudit` after unwinding."""
    holder: dict = {}
    try:
        yield holder
    finally:
        if plane is not None:
            holder["audit"] = plane.close()


class _PayloadSink:
    """Consumes payloads as they land: descriptor resolution + streaming
    combination + the transport-vs-compute accounting.

    One sink per shm run.  ``consume`` resolves a descriptor-carrying
    payload into a zero-copy view (:meth:`DataPlane.attach` verifies
    generation and checksum first), feeds the grid to the streaming
    combiner, then returns the segment to the arena — so a block is
    reusable the moment its grid has been resampled.  Combine time
    accrued while other subsolves were still outstanding is the overlap
    the barriered path cannot have.
    """

    def __init__(
        self, plane, combiner, *, n_expected: int, streaming: bool, trace=None
    ) -> None:
        self.plane = plane
        self.combiner = combiner
        self.n_expected = n_expected
        self.streaming = streaming
        self.trace = trace
        self.arrived = 0
        self.shm_payloads = 0
        self.shm_fallbacks = 0
        self.transport_shm_bytes = 0
        self.transport_pickle_bytes = 0
        self.attach_seconds = 0.0
        self.combine_seconds = 0.0
        self.overlap_seconds = 0.0

    def lease_for(self, spec: SubsolveJobSpec):
        """A lease sized for the job's full nodal solution."""
        from repro.perf.dataplane import payload_nbytes

        return self.plane.lease(
            (spec.l, spec.m), payload_nbytes(spec.grid.n_nodes)
        )

    def consume(self, key, payload: SubsolvePayload, *, attempt: int = 1) -> None:
        """Fold one arrived payload into the combined solution.

        Raises :class:`~repro.perf.dataplane.DataPlaneError` (notably
        its stale-generation subclass) *before* any state changes, so
        the resilient loop can treat a rejected descriptor like any
        other fault and re-dispatch the job.
        """
        descriptor = payload.descriptor
        if descriptor is not None:
            t_attach = time.perf_counter()
            values = self.plane.attach(descriptor)
            attach_dt = time.perf_counter() - t_attach
            self.attach_seconds += attach_dt
            self.shm_payloads += 1
            self.transport_shm_bytes += descriptor.payload_bytes
            if self.trace is not None:
                self.trace.record(
                    "payload_shm_write",
                    key=key,
                    worker=payload.worker_pid or None,
                    attempt=attempt,
                    payload_bytes=descriptor.payload_bytes,
                    seconds=payload.shm_write_seconds,
                )
                self.trace.record(
                    "payload_attach",
                    key=key,
                    attempt=attempt,
                    payload_bytes=descriptor.payload_bytes,
                    seconds=attach_dt,
                )
        else:
            values = payload.solution
            self.shm_fallbacks += 1
            self.transport_pickle_bytes += int(values.nbytes)
        self.arrived += 1
        overlapped = self.streaming and self.arrived < self.n_expected
        t_combine = time.perf_counter()
        folded = self.combiner.add(key, values)
        combine_dt = time.perf_counter() - t_combine
        self.combine_seconds += combine_dt
        if overlapped:
            self.overlap_seconds += combine_dt
        if self.trace is not None:
            self.trace.record(
                "combine_chunk",
                key=key,
                seconds=combine_dt,
                folded=folded,
                pending=self.n_expected - self.arrived,
                payload_bytes=int(np.asarray(values).nbytes),
            )
        if descriptor is not None:
            # the combiner copied anything it parked: drop the view and
            # hand the block back for the next lease
            del values
            self.plane.release(descriptor.name)


# ----------------------------------------------------------------------
# the resilient dispatch loop
# ----------------------------------------------------------------------
@dataclass
class _Pending:
    """Master-side bookkeeping of one in-flight job attempt."""

    spec: SubsolveJobSpec
    attempt: int
    handle: object          # the AsyncResult
    deadline_at: float      # monotonic absolute deadline
    submitted_at: float
    pid: Optional[int] = None  # worker PID, once its heartbeat arrives
    lease: Optional[object] = None  # the attempt's ShmLease, if any


class _PoolLease:
    """The pool the resilient loop dispatches into, shared or private,
    with a uniform respawn path for wedged generations."""

    def __init__(self, processes: int, shared: bool) -> None:
        self.processes = processes
        self.shared = shared
        self.respawns = 0
        if shared:
            self.pool, self.was_warm = acquire_pool(processes)
            self.cold_start_seconds = (
                0.0 if self.was_warm else self.pool.cold_start_seconds
            )
        else:
            self.pool = PersistentWorkerPool(processes)
            self.was_warm = False
            self.cold_start_seconds = self.pool.cold_start_seconds

    def respawn(self) -> None:
        """Terminate the wedged generation; fork a fresh one."""
        self.respawns += 1
        if self.shared:
            self.pool = respawn_pool(self.processes)
        else:
            self.pool.shutdown(force=True)
            self.pool = PersistentWorkerPool(self.processes)

    def release(self) -> None:
        if not self.shared:
            self.pool.shutdown()


@dataclass
class _ResilientOutcome:
    payloads: dict[tuple[int, int], SubsolvePayload]
    completion_order: tuple[tuple[int, int], ...]
    attempts: int
    events: tuple
    recovered_keys: tuple[tuple[int, int], ...]
    fallback_keys: tuple[tuple[int, int], ...]
    respawns: int


def _run_resilient(
    lease: _PoolLease,
    ordered: list[SubsolveJobSpec],
    *,
    use_cache: bool,
    plan,
    escalation,
    cost_model,
    fault_log=None,
    poll_interval: float = 0.02,
    trace=None,
    sink: Optional[_PayloadSink] = None,
) -> _ResilientOutcome:
    """Dispatch ``ordered`` with crash/hang/exception recovery.

    Completed payloads are keyed by grid ``(l, m)``; a replayed job
    simply overwrites nothing (it only ever completes once), so
    recovery is idempotent and the result set is exactly one payload
    per grid, bitwise identical to a fault-free run.

    With a ``sink`` (the shm data plane) every attempt carries a fresh
    lease, faults reclaim the faulted attempt's segment, a pool respawn
    bumps the plane's generation — invalidating every outstanding lease
    of the dead generation — and a descriptor the generation check
    rejects is escalated like any other fault instead of being
    attached.
    """
    from repro.resilience import (
        EscalationStep,
        FaultEvent,
        FaultLog,
        FaultToleranceExhausted,
        resilient_entry,
    )

    log = fault_log if fault_log is not None else FaultLog()
    retry, deadline_policy = escalation.retry, escalation.deadline
    completed: dict[tuple[int, int], SubsolvePayload] = {}
    completion_order: list[tuple[int, int]] = []
    pending: dict[tuple[int, int], _Pending] = {}
    recovered_keys: list[tuple[int, int]] = []
    fallback_keys: list[tuple[int, int]] = []
    attempts = 0

    def predicted(spec: SubsolveJobSpec) -> Optional[float]:
        if cost_model is None:
            return None
        return float(cost_model.predict_seconds(spec.l, spec.m, spec.tol))

    def submit(spec: SubsolveJobSpec, attempt: int) -> None:
        nonlocal attempts
        attempts += 1
        now = time.monotonic()
        if trace is not None:
            trace.record("job_submit", key=(spec.l, spec.m), attempt=attempt)
        shm_lease = sink.lease_for(spec) if sink is not None else None
        handle = lease.pool.submit(
            resilient_entry, (spec, plan, attempt, use_cache, shm_lease)
        )
        pending[(spec.l, spec.m)] = _Pending(
            spec=spec,
            attempt=attempt,
            handle=handle,
            deadline_at=now + deadline_policy.deadline_seconds(predicted(spec)),
            submitted_at=now,
            lease=shm_lease,
        )

    def complete(key: tuple[int, int], payload: SubsolvePayload) -> None:
        from repro.perf.dataplane import DataPlaneError, StaleLeaseError

        job = pending[key]
        if sink is not None:
            try:
                sink.consume(key, payload, attempt=job.attempt)
            except StaleLeaseError as exc:
                # a descriptor written before a respawn: its block may be
                # re-leased already, so the result is discarded and the
                # job escalated (decide() retries unknown kinds)
                handle_fault(
                    key, "stale", detected_by="dataplane", error=repr(exc)
                )
                return
            except DataPlaneError as exc:
                handle_fault(
                    key, "transport", detected_by="dataplane", error=repr(exc)
                )
                return
        was_replay = job.attempt > 1
        del pending[key]
        completed[key] = payload
        completion_order.append(key)
        _trace_payload(trace, payload, attempt=job.attempt)
        if was_replay and key not in recovered_keys:
            recovered_keys.append(key)

    def fail_run(cause: Optional[BaseException] = None) -> None:
        report = log.report(
            recovered_keys=recovered_keys,
            fallback_keys=fallback_keys,
            failed_key=log.events()[-1].key if len(log) else None,
        )
        raise FaultToleranceExhausted(report) from cause

    def respawn_generation(key: tuple[int, int], attempt: int) -> None:
        """A worker is wedged and occupies a slot forever: reclaim it by
        respawning the pool, then re-dispatch every job that was in
        flight (their handles died with the old generation); completed
        results are untouched."""
        collateral = list(pending.values())
        pending.clear()
        lease.respawn()
        if sink is not None:
            # the old generation's workers are dead: reclaim all
            # outstanding leases and invalidate their in-flight
            # descriptors (attach will refuse them as stale)
            sink.plane.bump_generation()
        if trace is not None:
            trace.record(
                "respawn",
                key=key,
                attempt=attempt,
                collateral=len(collateral),
            )
        for other in collateral:
            submit(other.spec, other.attempt)

    def handle_fault(
        key: tuple[int, int], kind: str, detected_by: str, error: str = ""
    ) -> None:
        job = pending.pop(key)
        if kind == "crash":
            # the dead worker's job never completes; forget its handle
            # so the pool can still be drained gracefully later
            lease.pool.discard(job.handle)
        if (
            sink is not None
            and job.lease is not None
            and kind not in ("hang", "deadline")
        ):
            # the faulted attempt's segment has no live writer (crashed,
            # raised before writing, or its descriptor was just refused)
            # — reclaim it for the arena before the retry leases anew.
            # A hung worker may still write later, so its block is NOT
            # returned here: the respawn below terminates the generation
            # and bump_generation reclaims every outstanding lease, and
            # on the no-respawn path close() reaps it late — never while
            # a wedged writer could still scribble into a re-leased block
            sink.plane.revoke(job.lease.name, reason=kind)
        step = escalation.decide(job.attempt, kind)
        event = FaultEvent(
            key=key,
            kind=kind,
            attempt=job.attempt,
            action=step.value,
            detected_by=detected_by,
            error=error,
            seconds_lost=time.monotonic() - job.submitted_at,
        )
        log.record(event)
        if trace is not None:
            trace.record_fault(event)
        if step in (EscalationStep.RETRY, EscalationStep.REASSIGN):
            if kind in ("hang", "deadline"):
                respawn_generation(key, job.attempt)
            time.sleep(retry.delay_seconds(job.attempt, key))
            if trace is not None:
                trace.record(
                    "retry", key=key, attempt=job.attempt + 1, cause=kind
                )
            submit(job.spec, job.attempt + 1)
        elif step is EscalationStep.FALLBACK:
            if kind in ("hang", "deadline"):
                # the wedged worker outlives the job it ruined: without
                # this respawn it keeps its pool slot *and* its shm
                # attachment past the run, so the plane's close-audit
                # reaps its lease late and the next warm acquisition
                # inherits a busy worker — reclaim the generation here
                # exactly like the retry path does
                respawn_generation(key, job.attempt)
            # graceful degradation: the master computes the grid itself,
            # sequentially and without injection — the paper's original
            # loop body as the last safety net before failing the run.
            # This path never touches the data plane: the in-master
            # payload carries its array directly (no lease, no
            # descriptor), so a closed or bumped plane cannot reject it
            try:
                payload = execute_job(job.spec, use_cache=use_cache)
            except Exception as exc:
                log.record(
                    FaultEvent(
                        key=key,
                        kind="exception",
                        attempt=job.attempt,
                        action="fail",
                        detected_by="fallback",
                        error=repr(exc),
                    )
                )
                fail_run(exc)
            if sink is not None:
                # in-master payloads carry their array directly; the
                # sink still folds them so the streaming combiner sees
                # every grid exactly once
                sink.consume(key, payload, attempt=job.attempt + 1)
            completed[key] = payload
            completion_order.append(key)
            fallback_keys.append(key)
            if trace is not None:
                trace.record("fallback", key=key, attempt=job.attempt, cause=kind)
                # attempt + 1: the in-master replay is a fresh attempt,
                # distinct from the failed one on the (key, attempt) axis
                _trace_payload(
                    trace, payload, attempt=job.attempt + 1, fallback=True
                )
            if key not in recovered_keys:
                recovered_keys.append(key)
        else:  # EscalationStep.FAIL
            fail_run()

    for spec in ordered:
        submit(spec, 1)

    while pending:
        progressed = False
        # 1) heartbeats: learn which worker PID holds which job
        for beat in lease.pool.drain_heartbeats():
            phase, key, attempt, pid = beat
            job = pending.get(key)
            if job is not None and job.attempt == attempt:
                job.pid = pid if phase == "start" else None
        # 2) finished handles: results and job-raised exceptions
        for key in list(pending):
            job = pending[key]
            if not job.handle.ready():
                continue
            progressed = True
            try:
                payload = job.handle.get()
            except Exception as exc:
                handle_fault(
                    key, "exception", detected_by="exception", error=repr(exc)
                )
            else:
                complete(key, payload)
        # 3) liveness: a vanished PID convicts exactly its lost job
        dead = lease.pool.reap_dead_workers()
        if dead:
            for key in list(pending):
                job = pending.get(key)
                if job is None or job.pid not in dead:
                    continue
                if job.handle.ready():
                    continue  # finished just before dying; handled above
                progressed = True
                handle_fault(
                    key,
                    "crash",
                    detected_by="liveness",
                    error=f"worker pid {job.pid} died",
                )
        # 4) deadlines: hung (or undetectably lost) jobs
        now = time.monotonic()
        for key in list(pending):
            job = pending.get(key)
            if job is None or now < job.deadline_at or job.handle.ready():
                continue
            progressed = True
            handle_fault(
                key,
                "deadline",
                detected_by="deadline",
                error=(
                    f"no result within "
                    f"{job.deadline_at - job.submitted_at:.2f}s"
                ),
            )
        if not progressed and pending:
            time.sleep(poll_interval)

    return _ResilientOutcome(
        payloads=completed,
        completion_order=tuple(completion_order),
        attempts=attempts,
        events=tuple(log.events()),
        recovered_keys=tuple(recovered_keys),
        fallback_keys=tuple(fallback_keys),
        respawns=lease.respawns,
    )


def run_multiprocessing(
    root: int = 2,
    level: int = 2,
    tol: float = 1.0e-3,
    problem_name: str = "rotating-cone",
    problem_kwargs: Optional[dict] = None,
    *,
    processes: Optional[int] = None,
    t_end: Optional[float] = None,
    scheme: str = "upwind",
    target_cap: int | None = 8,
    dispatch: str = "longest-first",
    cost_model=None,
    warm_pool: bool = True,
    operator_cache: bool = True,
    retry=None,
    deadline=None,
    escalation=None,
    faults: Union[str, object, None] = None,
    fault_seed: int = 0,
    fault_log=None,
    trace=None,
    data_plane: str = "pickle",
    engine: str = "pool",
    hosts: Optional[str] = None,
    engine_options: Optional[dict] = None,
    split: Union[str, int] = "off",
) -> MultiprocessingResult:
    """Run the whole application with a process pool over the grids.

    The defaults are the warm path; ``warm_pool=False`` forks a
    throwaway pool (the seed behaviour) and ``operator_cache=False``
    disables worker-side operator/factor reuse, for cold measurements.

    Passing any of ``retry`` (:class:`~repro.resilience.RetryPolicy`),
    ``deadline`` (:class:`~repro.resilience.DeadlinePolicy`),
    ``escalation`` (:class:`~repro.resilience.EscalationPolicy`) or
    ``faults`` (a :class:`~repro.resilience.FaultPlan` or its spec
    string, seeded by ``fault_seed``) enables the fault-tolerant
    dispatch loop; ``fault_log`` optionally shares one
    :class:`~repro.resilience.FaultLog` with other detectors (e.g. the
    protocol supervisor) so a run has a single failure history.

    ``trace`` (a :class:`~repro.trace.TraceRecorder`) records the run's
    structured event timeline: job lifecycle, faults and recovery
    actions, and — because the recorder is installed globally for the
    duration — the pool's worker spawns/deaths too.

    ``data_plane="shm"`` switches the result transport to the zero-copy
    shared-memory arena of :mod:`repro.perf.dataplane` and the fan-in to
    streaming: each payload is resampled and folded into the
    preallocated target the moment it lands, overlapping combination
    with the remaining subsolves.  ``"pickle"`` (the default) is the
    barriered seed channel; both are bitwise identical in their output.

    ``engine`` picks the execution substrate: ``"pool"`` (default) is
    the fork pool of the warm path; ``"task"`` fans worker threads out
    over one :class:`~repro.restructured.taskengine.TaskInstanceEngine`
    (per-worker OS task instances with perpetual reuse); ``"socket"``
    dispatches over real TCP to worker daemons per ``hosts`` (see
    :func:`repro.restructured.netengine.parse_hosts`; default: one
    local daemon per process).  The socket engine always runs the
    resilient ladder — a network has failure modes whether or not
    faults are injected; ``engine_options`` passes constructor knobs
    (heartbeat timeout, reconnect budget) through to
    :class:`~repro.restructured.netengine.SocketTaskEngine`.

    ``split`` shards the critical-path grids into ``k``-strip Schur
    subsolves (:mod:`repro.sparsegrid.decompose`): ``"off"`` (default)
    leaves every job whole — bitwise identical to previous behaviour —
    while an integer ``k`` or ``"auto"`` (cost-model-planned) replaces
    the head-of-line specs per :func:`resolve_split_map`.  Sharded jobs
    run on every engine: the strips execute serially inside whichever
    worker owns the job, so the job-level fault ladder re-dispatches a
    lost strip-job unchanged and the ``StaleLeaseError`` discipline is
    untouched.  Split solutions match the unsplit oracle within
    :func:`~repro.sparsegrid.decompose.split_tolerance`.
    """
    if dispatch not in DISPATCH_POLICIES:
        raise ValueError(
            f"unknown dispatch policy {dispatch!r}; choose from {DISPATCH_POLICIES}"
        )
    if data_plane not in DATA_PLANES:
        raise ValueError(
            f"unknown data plane {data_plane!r}; choose from {DATA_PLANES}"
        )
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    if hosts is not None and engine != "socket":
        raise ValueError("hosts requires engine='socket'")
    if engine_options is not None and engine != "socket":
        raise ValueError("engine_options requires engine='socket'")
    resilient = any(
        option is not None for option in (retry, deadline, escalation, faults)
    )
    if engine == "task" and (resilient or data_plane == "shm"):
        raise ValueError(
            "engine='task' supports neither fault injection nor the shm "
            "data plane; use engine='pool' or engine='socket'"
        )
    # the socket engine is always resilient: connection loss and daemon
    # silence need the escalation ladder even on a fault-free run
    resilient = resilient or engine == "socket"
    plan = None
    if faults is not None:
        from repro.resilience import FaultPlan

        plan = (
            FaultPlan.parse(faults, seed=fault_seed)
            if isinstance(faults, str)
            else faults
        )
    if resilient and escalation is None:
        from repro.resilience import (
            DeadlinePolicy,
            EscalationPolicy,
            RetryPolicy,
        )

        escalation = EscalationPolicy(
            retry=retry if retry is not None else RetryPolicy(),
            deadline=deadline if deadline is not None else DeadlinePolicy(),
        )

    t_start = time.perf_counter()
    kw_pairs = tuple(sorted((problem_kwargs or {}).items()))
    specs = [
        SubsolveJobSpec(
            problem_name=problem_name,
            root=root,
            l=g.l,
            m=g.m,
            tol=tol,
            t_end=t_end,
            scheme=scheme,
            problem_kwargs=kw_pairs,
        )
        for g in nested_loop_grids(root, level)
    ]
    n_proc = processes or min(len(specs), multiprocessing.cpu_count())
    job = execute_job if operator_cache else execute_job_uncached
    if dispatch == "longest-first":
        ordered = order_longest_first(specs, cost_model)
    else:
        ordered = specs
    split_map = resolve_split_map(
        split,
        specs,
        level=level,
        tol=tol,
        n_workers=n_proc,
        cost_model=cost_model,
    )
    if split_map:
        ordered = [
            replace(s, split_k=split_map[(s.l, s.m)])
            if (s.l, s.m) in split_map
            else s
            for s in ordered
        ]

    attempts = len(specs)
    events: tuple = ()
    recovered_keys: tuple = ()
    fallback_keys: tuple = ()
    respawns = 0
    daemons = reconnects = 0
    net_bytes_sent = net_bytes_received = 0
    net_send_seconds = net_recv_seconds = 0.0
    completion_order: tuple[tuple[int, int], ...]

    plane = None
    sink: Optional[_PayloadSink] = None
    if data_plane == "shm":
        # lazy: repro.perf pulls this module in at package import
        from repro.perf.dataplane import DataPlane
        from repro.sparsegrid.combination import combine_incremental

        plane = DataPlane()
        sink = _PayloadSink(
            plane,
            combine_incremental(root, level, target_cap=target_cap),
            n_expected=len(specs),
            # map_static barriers on the full batch, so its combine
            # work cannot overlap the fan-out even on the shm plane
            streaming=resilient or dispatch != "static",
            trace=trace,
        )

    t_pool = time.perf_counter()
    # contexts unwind inner-first: the plane guard closes (and trace-
    # emits any late reap) while the recorder is still installed, on
    # every exit path — success, fault escalation, KeyboardInterrupt
    with recording(trace), _plane_guard(plane) as plane_audit:
        with trace_span("fanout"):
            if engine == "socket":
                # lazy: keeps the socket machinery out of pool-only runs
                from .netengine import SocketTaskEngine

                hosts = hosts or f"localhost:{n_proc}"
                net = SocketTaskEngine(
                    hosts, trace=trace, **(engine_options or {})
                )
                try:
                    outcome = net.run(
                        ordered,
                        escalation=escalation,
                        plan=plan,
                        use_cache=operator_cache,
                        cost_model=cost_model,
                        fault_log=fault_log,
                        sink=sink,
                        trace=trace,
                    )
                finally:
                    net.close()
                was_warm = False
                cold_start = net.spawn_seconds
                n_proc = net.total_capacity
                payloads = outcome.payloads
                completion_order = outcome.completion_order
                attempts = outcome.attempts
                events = outcome.events
                recovered_keys = outcome.recovered_keys
                fallback_keys = outcome.fallback_keys
                daemons = outcome.daemons
                reconnects = outcome.reconnects
                net_bytes_sent = outcome.bytes_sent
                net_bytes_received = outcome.bytes_received
                net_send_seconds = outcome.net_send_seconds
                net_recv_seconds = outcome.net_recv_seconds
            elif engine == "task":
                # thread fan-out over per-worker OS task instances: the
                # MLINK {load 1} {perpetual} semantics, in-machine
                from concurrent.futures import ThreadPoolExecutor

                from .taskengine import TaskInstanceEngine

                was_warm = False
                t_fork = time.perf_counter()
                tengine = TaskInstanceEngine(max_instances=n_proc)
                cold_start = time.perf_counter() - t_fork
                if trace is not None:
                    for s in ordered:
                        trace.record("job_submit", key=(s.l, s.m), attempt=1)
                try:
                    with ThreadPoolExecutor(max_workers=n_proc) as executor:
                        payload_list = list(
                            executor.map(
                                lambda s: tengine.compute(
                                    s, use_cache=operator_cache
                                ),
                                ordered,
                            )
                        )
                finally:
                    tengine.close()
                for p in payload_list:
                    _trace_payload(trace, p)
                payloads = {(p.l, p.m): p for p in payload_list}
                completion_order = tuple((p.l, p.m) for p in payload_list)
            elif resilient:
                lease = _PoolLease(n_proc, shared=warm_pool)
                try:
                    outcome = _run_resilient(
                        lease,
                        ordered,
                        use_cache=operator_cache,
                        plan=plan,
                        escalation=escalation,
                        cost_model=cost_model,
                        fault_log=fault_log,
                        trace=trace,
                        sink=sink,
                    )
                finally:
                    lease.release()
                was_warm = lease.was_warm
                cold_start = lease.cold_start_seconds
                n_proc = lease.pool.processes
                payloads = outcome.payloads
                completion_order = outcome.completion_order
                attempts = outcome.attempts
                events = outcome.events
                recovered_keys = outcome.recovered_keys
                fallback_keys = outcome.fallback_keys
                respawns = outcome.respawns
            elif warm_pool:
                pool, was_warm = acquire_pool(n_proc)
                cold_start = 0.0 if was_warm else pool.cold_start_seconds
                if trace is not None:
                    for s in ordered:
                        trace.record("job_submit", key=(s.l, s.m), attempt=1)
                if sink is not None:
                    items = [
                        (s, sink.lease_for(s), operator_cache)
                        for s in ordered
                    ]
                    if dispatch == "static":
                        arrivals = pool.map_static(shm_entry, items)
                    else:
                        arrivals = pool.imap_unordered(shm_entry, items)
                    payload_list = []
                    for p in arrivals:
                        sink.consume((p.l, p.m), p)
                        payload_list.append(p)
                elif dispatch == "static":
                    payload_list = pool.map_static(job, ordered)
                else:
                    payload_list = list(pool.imap_unordered(job, ordered))
                n_proc = pool.processes
                for p in payload_list:
                    _trace_payload(trace, p)
                payloads = {(p.l, p.m): p for p in payload_list}
                completion_order = tuple((p.l, p.m) for p in payload_list)
            else:
                was_warm = False
                t_fork = time.perf_counter()
                fresh = multiprocessing.get_context("fork").Pool(n_proc)
                cold_start = time.perf_counter() - t_fork
                if trace is not None:
                    for s in ordered:
                        trace.record("job_submit", key=(s.l, s.m), attempt=1)
                try:
                    if sink is not None:
                        items = [
                            (s, sink.lease_for(s), operator_cache)
                            for s in ordered
                        ]
                        if dispatch == "static":
                            arrivals = fresh.map(shm_entry, items)
                        else:
                            arrivals = fresh.imap_unordered(shm_entry, items, 1)
                        payload_list = []
                        for p in arrivals:
                            sink.consume((p.l, p.m), p)
                            payload_list.append(p)
                    elif dispatch == "static":
                        payload_list = fresh.map(job, ordered)
                    else:
                        payload_list = list(fresh.imap_unordered(job, ordered, 1))
                finally:
                    fresh.close()
                    fresh.join()
                for p in payload_list:
                    _trace_payload(trace, p)
                payloads = {(p.l, p.m): p for p in payload_list}
                completion_order = tuple((p.l, p.m) for p in payload_list)
        pool_seconds = time.perf_counter() - t_pool

        t_combine = time.perf_counter()
        if sink is not None:
            # streaming already folded every grid; this is the (cheap)
            # completeness check + hand-over of the preallocated buffer
            with trace_span("prolongation"):
                target_grid, combined = sink.combiner.result()
            combine_seconds = sink.combine_seconds
        else:
            solutions = {key: p.solution for key, p in payloads.items()}
            with trace_span("prolongation"):
                target_grid, combined = combine(
                    solutions, root, level, target_cap=target_cap
                )
            combine_seconds = time.perf_counter() - t_combine

    data_plane_audit = plane_audit.get("audit")
    if sink is not None:
        transport_pickle_bytes = sink.transport_pickle_bytes
    else:
        transport_pickle_bytes = sum(
            int(p.solution.nbytes) for p in payloads.values()
        )
    return MultiprocessingResult(
        root=root,
        level=level,
        tol=tol,
        processes=n_proc,
        payloads=payloads,
        target_grid=target_grid,
        combined=combined,
        total_seconds=time.perf_counter() - t_start,
        pool_seconds=pool_seconds,
        dispatch=dispatch,
        warm_pool=was_warm,
        pool_cold_start_seconds=cold_start,
        dispatch_order=tuple((s.l, s.m) for s in ordered),
        completion_order=completion_order,
        attempts=attempts,
        faults=len(events),
        recovered=len(recovered_keys),
        fallbacks=len(fallback_keys),
        pool_respawns=respawns,
        fault_events=events,
        recovered_keys=recovered_keys,
        fallback_keys=fallback_keys,
        data_plane=data_plane,
        streaming=sink.streaming if sink is not None else False,
        shm_payloads=sink.shm_payloads if sink is not None else 0,
        shm_fallbacks=sink.shm_fallbacks if sink is not None else 0,
        transport_shm_bytes=sink.transport_shm_bytes if sink is not None else 0,
        transport_pickle_bytes=transport_pickle_bytes,
        shm_write_seconds=sum(
            p.shm_write_seconds for p in payloads.values()
        ),
        attach_seconds=sink.attach_seconds if sink is not None else 0.0,
        combine_seconds=combine_seconds,
        combine_overlap_seconds=(
            sink.overlap_seconds if sink is not None else 0.0
        ),
        data_plane_audit=data_plane_audit,
        engine=engine,
        hosts=hosts or "",
        daemons=daemons,
        reconnects=reconnects,
        net_bytes_sent=net_bytes_sent,
        net_bytes_received=net_bytes_received,
        net_send_seconds=net_send_seconds,
        net_recv_seconds=net_recv_seconds,
        split=split if isinstance(split, str) else f"k={split}",
        split_grids=tuple(sorted(split_map.items())),
    )
