"""Property-based tests, round two: the newer modules' invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.cluster.simulator import GridCost
from repro.harness.report import render_table
from repro.manifold.errors import StreamError
from repro.manifold.mlink import parse_mlink
from repro.manifold.wiring import parse_wire_spec
from repro.perf.costmodel import CostModel
from repro.sparsegrid.grid import Grid
from repro.sparsegrid.theta import steps_for_tolerance
from tests.conftest import synthetic_records

# ----------------------------------------------------------------------
# wire-spec parser
# ----------------------------------------------------------------------

name_st = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
)
element_st = st.builds(
    lambda name, port: f"{name}.{port}" if port else name,
    name_st,
    st.one_of(st.none(), name_st),
)


@given(
    first_ref=st.booleans(),
    elements=st.lists(element_st, min_size=2, max_size=6),
)
def test_wire_parser_roundtrip(first_ref, elements):
    if first_ref:
        head, _, _ = elements[0].partition(".")
        elements = [f"&{head}"] + elements[1:]
    spec = " -> ".join(elements)
    parsed = parse_wire_spec(spec)
    assert len(parsed) == len(elements)
    rebuilt = " -> ".join(
        ("&" if e.is_reference else "")
        + e.name
        + (f".{e.port}" if e.port else "")
        for e in parsed
    )
    assert rebuilt == spec


@given(junk=st.text(max_size=20).filter(lambda s: "->" not in s))
def test_wire_parser_rejects_arrowless(junk):
    with pytest.raises(StreamError):
        parse_wire_spec(junk)


# ----------------------------------------------------------------------
# MLINK semantics
# ----------------------------------------------------------------------


@given(
    load=st.integers(min_value=1, max_value=8),
    weights=st.dictionaries(
        st.sampled_from(["Master", "Worker", "Helper"]),
        st.integers(min_value=0, max_value=3),
        min_size=1,
    ),
)
def test_mlink_parse_preserves_declarations(load, weights):
    clauses = " ".join(f"{{weight {k} {v}}}" for k, v in weights.items())
    spec = parse_mlink(f"{{task * {{load {load}}} {clauses}}} {{task main}}")
    pattern = spec.pattern_for("main")
    assert pattern.load_limit == load
    for key, value in weights.items():
        assert pattern.weight_of(key) == value
    assert pattern.weight_of("Unknown") == 0.0


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def model() -> CostModel:
    return CostModel.fit(synthetic_records(), root=2)


@given(
    l=st.integers(min_value=0, max_value=14),
    m=st.integers(min_value=0, max_value=14),
)
@settings(max_examples=60, deadline=None)
def test_cost_model_predictions_positive_and_tol_monotone(l, m):
    model = CostModel.fit(synthetic_records(), root=2)
    loose = model.predict_seconds(l, m, 1e-3)
    tight = model.predict_seconds(l, m, 1e-4)
    assert loose > 0
    assert tight > loose


@given(level=st.integers(min_value=0, max_value=14))
@settings(max_examples=30, deadline=None)
def test_cost_model_level_sum_grows(level):
    model = CostModel.fit(synthetic_records(), root=2)
    this_level = sum(c.work_ref_seconds for c in model.level_costs(level, 1e-3))
    next_level = sum(c.work_ref_seconds for c in model.level_costs(level + 1, 1e-3))
    assert next_level > this_level


@given(
    l=st.integers(min_value=0, max_value=10),
    m=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_grid_cost_bytes_consistent(l, m):
    model = CostModel.fit(synthetic_records(), root=2)
    cost = model.grid_cost(l, m, 1e-3)
    assert cost.result_bytes == 8 * Grid(2, l, m).n_nodes


# ----------------------------------------------------------------------
# theta step heuristic
# ----------------------------------------------------------------------


@given(
    tol=st.floats(min_value=1e-8, max_value=1e-1),
    span=st.floats(min_value=0.05, max_value=10.0),
)
def test_steps_heuristic_sane(tol, span):
    cn = steps_for_tolerance(0.5, tol, span)
    ie = steps_for_tolerance(1.0, tol, span)
    assert cn >= 8 and ie >= 8
    assert ie >= cn  # first order must take at least as many steps


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------


@given(
    rows=st.lists(
        st.tuples(
            st.text(alphabet="abcxyz ", min_size=1, max_size=12),
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            st.integers(min_value=-10**6, max_value=10**6),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_render_table_aligns_any_content(rows):
    text = render_table(["name", "value", "count"], [list(r) for r in rows])
    lines = text.splitlines()
    assert len(lines) == len(rows) + 2
    assert len({len(line) for line in lines}) == 1


# ----------------------------------------------------------------------
# simulator conservation laws
# ----------------------------------------------------------------------


@given(
    works=st.lists(
        st.floats(min_value=0.1, max_value=30.0, allow_nan=False),
        min_size=1,
        max_size=12,
    ),
    split=st.integers(min_value=0, max_value=12),
)
@example(works=[1.0, 1.0], split=1)
@settings(max_examples=30, deadline=None)
def test_pool_split_never_faster(works, split):
    """Splitting one pool into two (a barrier) can only slow the run —
    up to fork savings.

    The pinned example is the counterexample to the naive bound: with
    perpetual task-instance reuse, pool 2 can adopt pool 1's idle task
    instance instead of forking its own, taking ``fork_seconds`` off
    the master's critical path.  Any residual advantage of the split
    run is therefore bounded by the forks it saved.
    """
    from repro.cluster import MultiUserNoise, SimulationParams, uniform_cluster
    from repro.cluster.simulator import simulate_distributed

    split = min(split, len(works))
    costs = [
        GridCost(l=i, m=0, work_ref_seconds=w, result_bytes=1000)
        for i, w in enumerate(works)
    ]
    params = SimulationParams(noise=MultiUserNoise.quiet())
    cluster = uniform_cluster(16)
    single = simulate_distributed(
        [costs], cluster, params, np.random.default_rng(0)
    )
    pools = [p for p in (costs[:split], costs[split:]) if p]
    double = simulate_distributed(
        pools, cluster, params, np.random.default_rng(0)
    )
    fork_credit = params.fork_seconds * max(
        0, single.n_tasks_forked - double.n_tasks_forked
    )
    assert (
        double.elapsed_seconds
        >= single.elapsed_seconds - fork_credit - 1e-9
    )
