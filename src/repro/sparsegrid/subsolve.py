"""``subsolve(l, m)`` — the computation-intensive grid routine.

This is the routine the paper's cut identifies as the concurrency
candidate: "every grid subroutine with the property that it reads and
writes data only from and to its own grid, can be restructured to run
concurrently".  Our ``subsolve`` honours exactly that contract — its
inputs are the problem and the grid indices, its output is the final
solution on that grid; it touches no shared state, so the sequential
driver, the thread workers, and the multiprocessing workers all call
the *same* function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .discretize import Scheme, SpatialOperator
from .grid import Grid
from .linsolve import FactorCache
from .problem import AdvectionDiffusionProblem
from .rosenbrock import Ros2Integrator, StepStats

__all__ = ["SubsolveResult", "subsolve"]


@dataclass
class SubsolveResult:
    """Outcome of one grid integration."""

    grid: Grid
    #: final solution on the full node array, boundary included
    solution: np.ndarray
    stats: StepStats
    wall_seconds: float

    @property
    def work_units(self) -> float:
        """An architecture-independent work measure for the cost model:
        interior unknowns times linear solves performed.

        ``stats.solves`` counts *system-level* stage solves on both the
        unsplit and the split path: one split ``solve()`` covers its
        ``k`` strips (which partition the interior together with the
        interface rows, summing to ``n_interior`` unknowns exactly) and
        counts once, so split results report the same work as an
        unsplit solve of the identical grid — the interface unknowns
        are not double-counted and the cost-model feed stays in one
        unit regardless of ``split_k``.
        """
        return float(self.grid.n_interior) * float(self.stats.solves)

    @property
    def split_k(self) -> int:
        """Strip count of the solve (1 = unsplit path)."""
        return self.stats.split_k


def subsolve(
    problem: AdvectionDiffusionProblem,
    grid: Grid,
    tol: float,
    t_end: float | None = None,
    *,
    scheme: Scheme = "upwind",
    integrator_name: str = "ros2",
    record_history: bool = False,
    operator: SpatialOperator | None = None,
    factor_cache: FactorCache | None = None,
    split_k: int = 1,
    strip_executor: str = "serial",
) -> SubsolveResult:
    """Integrate the problem on one grid from ``t=0`` to ``t_end``.

    Heavy computational work on grid ``(l, m)``: assemble the spatial
    operator, then run the time integrator (default: the adaptive ROS2
    of the original program; ``integrator_name`` selects a θ-method
    baseline instead).  The result is the full node array at the final
    time.

    ``operator`` is the warm-path entry point: a pre-assembled (cached)
    :class:`SpatialOperator` for exactly this grid/scheme skips the
    assembly cost; ``factor_cache`` likewise lets the ROS2 linear solver
    reuse LU factors across repeated integrations.  Both are pure reuse
    — the operator and factors are deterministic functions of their
    inputs, so results stay bitwise identical to a cold call.

    ``split_k > 1`` solves the Rosenbrock stage systems by ``k``-strip
    Schur substructuring (:mod:`repro.sparsegrid.decompose`) instead of
    one monolithic LU — the sharded-job execution path.  ``split_k=1``
    (or a ``k`` the grid cannot sustain, which is clamped back to 1)
    takes the literal unsplit code path, so results stay bitwise
    identical to a call without the argument; ``split_k > 1`` matches
    the unsplit oracle within
    :func:`~repro.sparsegrid.decompose.split_tolerance`.
    ``strip_executor`` selects how strip operations run: ``"serial"``
    (in-process, strip order — the worker-side sharded-job mode) or
    ``"thread"`` (one thread per strip, bitwise equal to serial).
    Process-team execution over the shm data plane is wired up by
    :mod:`repro.restructured.strip_team`, which passes a ready-made
    executor object instead of a name.
    """
    started = time.perf_counter()
    t_final = problem.t_end if t_end is None else t_end
    if operator is None:
        operator = SpatialOperator(grid, problem, scheme=scheme)
    elif operator.grid != grid or operator.scheme != scheme:
        raise ValueError(
            f"cached operator is for ({operator.grid}, {operator.scheme!r}), "
            f"not ({grid}, {scheme!r})"
        )
    solver = None
    if split_k != 1:
        from .decompose import StripPlan

        if integrator_name != "ros2":
            raise ValueError(
                "split_k > 1 requires the ros2 integrator, got "
                f"{integrator_name!r}"
            )
        plan = StripPlan.for_grid(grid, split_k)
        if plan.k >= 2:
            solver = _make_split_solver(
                operator, grid, plan, factor_cache, strip_executor
            )
        # plan.k == 1: the grid is too small to split — fall through to
        # the literal unsplit path (bitwise identical by construction)
    if integrator_name == "ros2":
        integrator = Ros2Integrator(
            operator, tol, record_history=record_history,
            factor_cache=factor_cache, solver=solver,
        )
    else:
        from .theta import make_integrator

        integrator = make_integrator(
            integrator_name, operator, tol, t_span=t_final,
            record_history=record_history,
        )
    try:
        u0 = operator.initial_interior()
        u_final, stats = integrator.integrate(u0, 0.0, t_final)
        solution = operator.full_solution(u_final, t_final)
    finally:
        if solver is not None:
            solver.close()
    return SubsolveResult(
        grid=grid,
        solution=solution,
        stats=stats,
        wall_seconds=time.perf_counter() - started,
    )


def _make_split_solver(
    operator: SpatialOperator,
    grid: Grid,
    plan,
    factor_cache: FactorCache | None,
    strip_executor,
):
    """Build the Schur substructuring solver for a ``k >= 2`` plan."""
    from .decompose import (
        SchurSplitSolver,
        SerialStripExecutor,
        ThreadStripExecutor,
    )
    from .rosenbrock import GAMMA

    if isinstance(strip_executor, str):
        if strip_executor == "serial":
            executor = SerialStripExecutor()
        elif strip_executor == "thread":
            executor = ThreadStripExecutor()
        else:
            raise ValueError(
                f"unknown strip executor {strip_executor!r}; expected "
                "'serial', 'thread', or an executor object"
            )
    else:
        executor = strip_executor
    return SchurSplitSolver(
        operator.J,
        GAMMA,
        plan,
        factor_cache=factor_cache,
        executor=executor,
        trace_key=(grid.l, grid.m),
    )
