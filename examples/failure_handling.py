#!/usr/bin/env python
"""Beyond the paper: worker failures and stall detection.

The paper's protocol assumes every worker eventually raises
``death_worker``; a crashed worker silently deadlocks the whole
application.  This example shows the two robustness extensions of this
reproduction working together:

1. a :class:`~repro.manifold.Watchdog` detecting the deadlock of the
   *unsupervised* protocol when a worker crashes;
2. the *supervised* protocol (``protocol_mw(..., supervise=True)``)
   converting the same crash into a failure result the master can
   handle — the run completes, the surviving results arrive;
3. the full escalation ladder against the *real* fork pool: a seeded
   injector kills the OS process computing one level-5 grid mid-run,
   the master detects the death by PID liveness, re-dispatches the lost
   job to a fresh worker, and the combination-technique result comes
   out bitwise identical to a fault-free run.

Usage::

    python examples/failure_handling.py
"""

from __future__ import annotations

from repro.manifold import (
    BEGIN,
    AtomicDefinition,
    Block,
    Coordinator,
    Runtime,
    Watchdog,
    run_application,
)
from repro.protocol import (
    MasterProtocolClient,
    WorkerJob,
    make_worker_definition,
    protocol_mw,
)


def flaky_compute(x: int) -> int:
    if x == 3:
        raise RuntimeError("simulated hardware fault on job 3")
    return x * x


def build_master(outcome: dict, raise_on_failure: bool) -> AtomicDefinition:
    def master_body(proc):
        client = MasterProtocolClient(proc, timeout=8)
        results = client.run_pool(
            [WorkerJob(i, i) for i in range(6)],
            raise_on_failure=raise_on_failure,
        )
        outcome["results"] = sorted(r.payload for r in results)
        outcome["failures"] = list(client.last_failures)
        client.finished()

    return AtomicDefinition(
        "Master", master_body, in_ports=("input", "dataport")
    )


def run(supervise: bool) -> dict:
    runtime = Runtime("failure-demo")
    worker_defn = make_worker_definition("Worker", flaky_compute)
    outcome: dict = {}
    master_defn = build_master(outcome, raise_on_failure=False)

    def main_body():
        block = Block("Main")

        @block.state(BEGIN)
        def begin(ctx):
            master = ctx.spawn(master_defn)
            ctx.run_block(protocol_mw(master, worker_defn, supervise=supervise))
            ctx.terminated(master)
            ctx.halt()

        return block

    stalls = []
    main = Coordinator(runtime, "Main", main_body, deadline=6)
    with Watchdog(runtime, timeout=2.0, on_stall=stalls.append):
        try:
            run_application(runtime, main, timeout=6)
            outcome["completed"] = True
        except Exception as exc:  # noqa: BLE001 - demo reporting
            outcome["completed"] = False
            outcome["error"] = type(exc).__name__
    outcome["stalls"] = stalls
    return outcome


def run_escalation_ladder() -> bool:
    """Kill a real pool worker at level 5; recover; compare bitwise."""
    import numpy as np

    from repro.restructured import run_multiprocessing, shutdown_pool

    level = 5
    baseline = run_multiprocessing(root=2, level=level)
    recovered = run_multiprocessing(
        root=2, level=level, faults="crash@2,3"
    )
    shutdown_pool()
    identical = bool(np.array_equal(baseline.combined, recovered.combined))
    for line in recovered.fault_report.lines():
        print(line)
    print(
        f"attempts: {recovered.attempts} for {recovered.n_workers} grids; "
        f"recovered grids: {recovered.recovered}"
    )
    print(f"combined solution identical to fault-free run: {identical}")
    return (
        identical
        and recovered.faults == 1
        and recovered.recovered == 1
        and recovered.fallbacks == 0
    )


def main() -> int:
    print("== unsupervised protocol (the paper's, verbatim) ==")
    unsupervised = run(supervise=False)
    print(f"completed: {unsupervised['completed']}")
    for report in unsupervised["stalls"]:
        print(f"watchdog: {report.describe()}")
    if unsupervised["completed"]:
        print("unexpected: the crash should deadlock the run")
        return 1

    print()
    print("== supervised protocol (this repo's extension) ==")
    supervised = run(supervise=True)
    print(f"completed: {supervised['completed']}")
    print(f"surviving results: {supervised['results']}")
    for failure in supervised["failures"]:
        print(f"failure handled: {failure.worker_name}: {failure.error}")
    ok = (
        supervised["completed"]
        and supervised["results"] == [0, 1, 4, 16, 25]
        and len(supervised["failures"]) == 1
    )

    print()
    print("== escalation ladder on the real pool (OS-level crash) ==")
    ladder_ok = run_escalation_ladder()
    return 0 if (ok and ladder_ok) else 1


if __name__ == "__main__":
    raise SystemExit(main())
