"""Ablation: the adaptive ROS2 choice versus fixed-step θ-baselines.

The original developers paid for adaptivity ("the adaptive time step in
the time integrator ... must be computed again and again") and for the
Rosenbrock structure.  This bench quantifies the payoff on a real grid:
solve counts and wall time at comparable temporal accuracy, against
Crank–Nicolson and implicit Euler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness import render_table
from repro.sparsegrid import Grid, rotating_cone_problem, subsolve

GRID = Grid(2, 3, 3)
TOL = 1.0e-4


@pytest.fixture(scope="module")
def reference_solution():
    problem = rotating_cone_problem(t_end=0.5)
    return subsolve(problem, GRID, tol=1.0e-8, t_end=0.5).solution


def run_with(integrator_name: str):
    problem = rotating_cone_problem(t_end=0.5)
    return subsolve(
        problem, GRID, tol=TOL, t_end=0.5, integrator_name=integrator_name
    )


@pytest.mark.benchmark(group="integrator")
def test_integrator_ros2(benchmark, reference_solution):
    result = benchmark.pedantic(lambda: run_with("ros2"), rounds=3, iterations=1)
    err = float(np.max(np.abs(result.solution - reference_solution)))
    assert err < 5.0e-3


@pytest.mark.benchmark(group="integrator")
def test_integrator_crank_nicolson(benchmark, reference_solution):
    result = benchmark.pedantic(
        lambda: run_with("crank-nicolson"), rounds=3, iterations=1
    )
    err = float(np.max(np.abs(result.solution - reference_solution)))
    assert err < 5.0e-3


@pytest.mark.benchmark(group="integrator")
def test_integrator_implicit_euler(benchmark, reference_solution):
    result = benchmark.pedantic(
        lambda: run_with("implicit-euler"), rounds=2, iterations=1
    )
    err = float(np.max(np.abs(result.solution - reference_solution)))
    assert err < 5.0e-2  # first order: an order looser


@pytest.mark.benchmark(group="integrator")
def test_integrator_comparison_table(benchmark, reference_solution):
    """Print the comparison and assert the paper-motivating ordering."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    results = {}
    for name in ("ros2", "crank-nicolson", "implicit-euler"):
        result = run_with(name)
        err = float(np.max(np.abs(result.solution - reference_solution)))
        results[name] = result
        rows.append([
            name,
            result.stats.steps_accepted,
            result.stats.solves,
            result.stats.factorizations,
            f"{err:.2e}",
            f"{result.wall_seconds:.3f}",
        ])
    print()
    print(render_table(
        ["integrator", "steps", "solves", "factorizations", "error", "wall (s)"],
        rows, title=f"Integrator ablation on {GRID}, tol {TOL:g}",
    ))
    # the first-order baseline needs far more solves than ROS2
    assert (
        results["implicit-euler"].stats.solves
        > 3 * results["ros2"].stats.solves
    )
    # adaptivity costs refactorizations; the fixed-step methods need one
    assert results["crank-nicolson"].stats.factorizations == 1
    assert results["ros2"].stats.factorizations >= 2
