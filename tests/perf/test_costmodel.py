"""Cost model: fitting, extrapolation, persistence."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.perf.costmodel import (
    CalibrationError,
    CostModel,
    CostRecord,
    measure_costs,
)
from tests.conftest import synthetic_records


class TestFitOnSyntheticTruth:
    """Fitting noise-free records from a known model must recover it."""

    def test_solve_model_recovered(self, synthetic_cost_model):
        s0, s1, s2, s3 = synthetic_cost_model.solve_coefficients
        assert s1 == pytest.approx(0.11, abs=0.02)
        assert s3 == pytest.approx(1.2, abs=0.05)
        assert synthetic_cost_model.solves_r_squared > 0.99

    def test_wall_model_recovered(self, synthetic_cost_model):
        gamma, beta, alpha = synthetic_cost_model.wall_coefficients
        assert alpha == pytest.approx(1.0e-7, rel=0.15)
        assert synthetic_cost_model.r_squared > 0.99

    def test_extrapolation_matches_truth(self, synthetic_cost_model):
        """Predict level 10 from a fit on levels 2-6."""
        truth = synthetic_records(levels=[10])
        err = synthetic_cost_model.holdout_error(truth)
        assert err < 0.15

    def test_measured_values_pass_through(self, synthetic_cost_model):
        records = synthetic_records(levels=[4])
        sample = [r for r in records if r.wall_seconds > 0.01][0]
        got = synthetic_cost_model.work_seconds(sample.l, sample.m, sample.tol)
        assert got == pytest.approx(sample.wall_seconds)

    def test_prediction_used_beyond_measurements(self, synthetic_cost_model):
        predicted = synthetic_cost_model.work_seconds(9, 3, 1e-3)
        assert predicted == pytest.approx(
            synthetic_cost_model.predict_seconds(9, 3, 1e-3)
        )

    def test_work_grows_with_level(self, synthetic_cost_model):
        levels = [
            sum(c.work_ref_seconds for c in synthetic_cost_model.level_costs(lvl, 1e-3))
            for lvl in (8, 10, 12)
        ]
        assert levels[0] < levels[1] < levels[2]

    def test_tighter_tolerance_costs_more(self, synthetic_cost_model):
        loose = synthetic_cost_model.work_seconds(8, 8, 1e-3)
        tight = synthetic_cost_model.work_seconds(8, 8, 1e-4)
        assert tight > loose

    def test_level_costs_in_loop_order(self, synthetic_cost_model):
        costs = synthetic_cost_model.level_costs(2, 1e-3)
        assert [(c.l, c.m) for c in costs] == [
            (0, 1), (1, 0), (0, 2), (1, 1), (2, 0)
        ]

    def test_result_bytes_match_grid(self, synthetic_cost_model):
        cost = synthetic_cost_model.grid_cost(2, 3, 1e-3)
        from repro.sparsegrid import Grid

        assert cost.result_bytes == 8 * Grid(2, 2, 3).n_nodes

    def test_prolongation_grows_with_grid_count(self, synthetic_cost_model):
        p5 = synthetic_cost_model.prolongation_seconds(5)
        p10 = synthetic_cost_model.prolongation_seconds(10)
        assert p10 > p5

    def test_prolongation_cap_bounds_target(self, synthetic_cost_model):
        capped = synthetic_cost_model.prolongation_seconds(12, target_cap=6)
        uncapped = synthetic_cost_model.prolongation_seconds(12, target_cap=None)
        assert capped < uncapped


class TestFitValidation:
    def test_too_few_records_rejected(self):
        with pytest.raises(ValueError):
            CostModel.fit(synthetic_records(levels=[2])[:4], root=2)

    def test_too_few_records_error_is_typed(self):
        with pytest.raises(CalibrationError) as exc:
            CostModel.fit(synthetic_records(levels=[2])[:4], root=2)
        assert exc.value.n_records == 4

    def test_all_below_noise_floor_rejected(self):
        records = [
            CostRecord(l=i, m=0, tol=1e-3, wall_seconds=1e-6, solves=10,
                       steps_accepted=5, n_interior=100)
            for i in range(10)
        ]
        with pytest.raises(ValueError):
            CostModel.fit(records, root=2)

    def test_noise_floor_error_carries_counts(self):
        records = [
            CostRecord(l=i, m=0, tol=1e-3, wall_seconds=1e-6, solves=10,
                       steps_accepted=5, n_interior=100)
            for i in range(10)
        ]
        with pytest.raises(CalibrationError) as exc:
            CostModel.fit(records, root=2, noise_floor_seconds=5e-3)
        assert exc.value.n_records == 10
        assert exc.value.n_usable == 0
        assert exc.value.noise_floor_seconds == 5e-3

    def test_holdout_requires_usable_records(self, synthetic_cost_model):
        tiny = [
            CostRecord(l=0, m=0, tol=1e-3, wall_seconds=1e-9, solves=1,
                       steps_accepted=1, n_interior=1)
        ]
        with pytest.raises(ValueError):
            synthetic_cost_model.holdout_error(tiny)


class TestDegenerateFitRecovery:
    """The load-flake scenario: background noise inflates the cheap
    grids until wall time no longer grows with ``N*S`` and plain NNLS
    zeroes the dominant coefficient.  The fit must recover by refitting
    on the large-grid subset, where the signal survives the noise."""

    @staticmethod
    def _loaded_records():
        # level-2 grids are sub-ms jobs: scheduler noise on a loaded
        # machine easily adds tens of ms, dwarfing the level-5 timings
        records = synthetic_records(levels=(2, 5), tols=(1e-3,))
        return [
            replace(r, wall_seconds=r.wall_seconds + 0.05)
            if r.n_interior < 100
            else r
            for r in records
        ]

    def test_refit_recovers_alpha(self):
        model = CostModel.fit(
            self._loaded_records(), root=2, noise_floor_seconds=1e-3
        )
        gamma, beta, alpha = model.wall_coefficients
        # ground truth alpha of synthetic_records is 1e-7
        assert alpha == pytest.approx(1.0e-7, rel=0.15)

    def test_refit_r_squared_reflects_fitted_subset(self):
        model = CostModel.fit(
            self._loaded_records(), root=2, noise_floor_seconds=1e-3
        )
        assert model.r_squared > 0.99

    def test_refit_extrapolates_like_clean_fit(self):
        model = CostModel.fit(
            self._loaded_records(), root=2, noise_floor_seconds=1e-3
        )
        truth = synthetic_records(levels=[8], tols=(1e-3,))
        assert model.holdout_error(truth) < 0.2

    def test_unrecoverable_degeneracy_raises_typed_error(self):
        flat = [
            replace(r, wall_seconds=0.05)
            for r in synthetic_records(levels=(2, 5), tols=(1e-3,))
        ]
        with pytest.raises(CalibrationError) as exc:
            CostModel.fit(flat, root=2, noise_floor_seconds=1e-3)
        assert exc.value.n_usable == len(flat)
        assert "degenerate" in str(exc.value)


class TestPersistence:
    def test_json_roundtrip(self, synthetic_cost_model, tmp_path):
        path = tmp_path / "model.json"
        synthetic_cost_model.to_json(path)
        loaded = CostModel.from_json(path)
        assert loaded.solve_coefficients == synthetic_cost_model.solve_coefficients
        assert loaded.wall_coefficients == synthetic_cost_model.wall_coefficients
        assert loaded.measured == synthetic_cost_model.measured
        assert loaded.work_seconds(9, 9, 1e-4) == pytest.approx(
            synthetic_cost_model.work_seconds(9, 9, 1e-4)
        )


class TestRealCalibration:
    """Calibration against the actual solver (small levels)."""

    def test_measure_costs_covers_all_grids(self, calibrated_cost_model):
        # levels 3..5 for two tolerances: union of nested-loop grids
        measured_keys = set(calibrated_cost_model.measured)
        assert (2, 3, 1e-3) in measured_keys
        assert (0, 3, 1e-4) in measured_keys

    def test_fit_quality(self, calibrated_cost_model):
        assert calibrated_cost_model.r_squared > 0.7
        assert calibrated_cost_model.solves_r_squared > 0.5

    def test_growth_factor_in_paper_range(self, calibrated_cost_model):
        """Sequential work grows 2-3x per level (paper: ~2.4)."""
        st = [
            sum(c.work_ref_seconds for c in calibrated_cost_model.level_costs(l, 1e-3))
            for l in (12, 13, 14)
        ]
        assert 1.8 < st[1] / st[0] < 3.2
        assert 1.8 < st[2] / st[1] < 3.2

    def test_tolerance_ratio_in_paper_range(self, calibrated_cost_model):
        """The 1e-4 runs cost ~1.5-3x the 1e-3 runs (paper: ~2)."""
        a = sum(c.work_ref_seconds for c in calibrated_cost_model.level_costs(12, 1e-3))
        b = sum(c.work_ref_seconds for c in calibrated_cost_model.level_costs(12, 1e-4))
        assert 1.3 < b / a < 4.0

    def test_extrapolation_validates_on_next_level(self, calibrated_cost_model):
        """Hold out level 6: the model fitted on 3-5 predicts the real
        measured level-6 costs within a factor ~2 (median)."""
        holdout = measure_costs(
            "rotating-cone", root=2, levels=[6], tols=[1e-3], repeats=2
        )
        assert calibrated_cost_model.holdout_error(holdout) < 1.0
