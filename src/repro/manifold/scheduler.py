"""The runtime system: process registry, event broadcast, shutdown.

The MANIFOLD system bundles process instances (threads) into task
instances (OS processes) and broadcasts raised events to every process
that can observe the source.  This module is the Python equivalent of
that runtime library:

* a :class:`Runtime` owns all process instances of one application;
* every coordinator's :class:`~repro.manifold.events.EventMemory`
  subscribes to the runtime's broadcast;
* process death is turned into a broadcast of the predefined ``death``
  event, which coordinators may handle, save or ``ignore``;
* :meth:`Runtime.shutdown` interrupts every port so all threads unwind.

The runtime is deliberately conservative: it never reaches into worker
code, it only wakes blocked coordination primitives.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.trace.recorder import emit as trace_emit

from .events import Event, EventMemory, EventOccurrence
from .process import (
    AtomicDefinition,
    AtomicProcess,
    DEATH,
    ProcessBase,
    ProcessState,
)

__all__ = ["Runtime"]

#: MANIFOLD event names that get their own typed trace kind; everything
#: else lands as a generic ``manifold_event``
_TRACED_EVENT_KINDS = {
    "death_worker": "death_worker",
    "rendezvous": "rendezvous",
    "a_rendezvous": "rendezvous",
}


class Runtime:
    """One coordination runtime instance ≙ one MANIFOLD application run."""

    def __init__(self, name: str = "app", trace: Optional[Callable[[str], None]] = None) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._processes: list[ProcessBase] = []
        self._subscribers: list[EventMemory] = []
        self._event_log: list[EventOccurrence] = []
        self._trace = trace
        self._shutdown = False
        self._started_at = time.monotonic()
        #: callbacks fired when a process becomes active (placement stage)
        self.on_activate_hooks: list[Callable[[ProcessBase], None]] = []
        #: callbacks fired when a process reaches a final state
        self.on_death_hooks: list[Callable[[ProcessBase], None]] = []
        #: coordination pulse: bumped on every broadcast/activation/death
        #: (consumed by :class:`repro.manifold.watchdog.Watchdog`)
        self._activity = 0

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def create(self, definition: AtomicDefinition, *args: object, **kwargs: object) -> AtomicProcess:
        """Create (but do not activate) a process from a definition."""
        proc = definition.instantiate(self, *args, **kwargs)
        with self._lock:
            self._processes.append(proc)
        self._emit(f"create {proc.name}")
        return proc

    def spawn(self, definition: AtomicDefinition, *args: object, **kwargs: object) -> AtomicProcess:
        """Create and immediately activate a process."""
        proc = self.create(definition, *args, **kwargs)
        proc.activate()
        return proc

    def adopt(self, proc: ProcessBase) -> ProcessBase:
        """Register a process constructed outside :meth:`create`."""
        with self._lock:
            if proc not in self._processes:
                self._processes.append(proc)
        return proc

    def register_active(self, proc: ProcessBase) -> None:
        with self._lock:
            if proc not in self._processes:
                self._processes.append(proc)
        self._emit(f"activate {proc.name}")
        trace_emit("process_activate", worker=proc.name)
        with self._lock:
            self._activity += 1
        for hook in list(self.on_activate_hooks):
            hook(proc)

    def processes(self) -> list[ProcessBase]:
        with self._lock:
            return list(self._processes)

    def live_processes(self) -> list[ProcessBase]:
        with self._lock:
            return [p for p in self._processes if p.state is ProcessState.ACTIVE]

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def subscribe(self, memory: EventMemory) -> None:
        """Register an event memory to receive all broadcasts."""
        with self._lock:
            if memory not in self._subscribers:
                self._subscribers.append(memory)

    def unsubscribe(self, memory: EventMemory) -> None:
        with self._lock:
            try:
                self._subscribers.remove(memory)
            except ValueError:
                pass

    def broadcast(self, occurrence: EventOccurrence) -> None:
        """Deliver an occurrence to every subscribed event memory."""
        with self._lock:
            subscribers = list(self._subscribers)
            self._event_log.append(occurrence)
            self._activity += 1
        source = occurrence.source.name if occurrence.source else "<runtime>"
        self._emit(f"event {occurrence.event.name} raised by {source}")
        name = occurrence.event.name
        if name != "death":  # process death is traced in on_process_death
            trace_emit(
                _TRACED_EVENT_KINDS.get(name, "manifold_event"),
                worker=source,
                event=name,
            )
        for memory in subscribers:
            memory.deliver(occurrence)

    def raise_event(self, event: Event) -> None:
        """Broadcast an event with no source (runtime-originated)."""
        self.broadcast(EventOccurrence(event, None))

    def event_log(self) -> list[EventOccurrence]:
        """All occurrences broadcast so far, in order (for tests/traces)."""
        with self._lock:
            return list(self._event_log)

    # ------------------------------------------------------------------
    # lifecycle callbacks
    # ------------------------------------------------------------------
    def on_process_death(self, proc: ProcessBase) -> None:
        """Called by every process when it reaches a final state."""
        self._emit(f"death {proc.name} ({proc.state.value})")
        trace_emit("process_death", worker=proc.name, state=proc.state.value)
        with self._lock:
            self._activity += 1
        for hook in list(self.on_death_hooks):
            hook(proc)
        if not self._shutdown:
            self.broadcast(EventOccurrence(DEATH, proc))

    # ------------------------------------------------------------------
    # shutdown / join
    # ------------------------------------------------------------------
    def join_all(self, timeout: Optional[float] = None) -> bool:
        """Wait for every registered process to finish.

        Returns ``True`` when everything terminated within ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for proc in self.processes():
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            if not proc.join(remaining) and deadline is not None:
                return False
        return True

    def shutdown(self) -> None:
        """Interrupt all ports and close all event memories."""
        self._shutdown = True
        with self._lock:
            procs = list(self._processes)
            subs = list(self._subscribers)
        for proc in procs:
            for port in proc.ports.values():
                port.interrupt()
        for memory in subs:
            memory.close()
        self._emit("shutdown")

    @property
    def activity_count(self) -> int:
        """Monotone coordination-activity counter (watchdog pulse)."""
        with self._lock:
            return self._activity

    def failures(self) -> list[ProcessBase]:
        """Processes that ended in the FAILED state."""
        with self._lock:
            return [p for p in self._processes if p.state is ProcessState.FAILED]

    def check(self) -> None:
        """Re-raise the first worker failure, if any (test helper)."""
        for proc in self.failures():
            failure = proc.failure
            if failure is not None:
                raise failure

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def _emit(self, message: str) -> None:
        if self._trace is not None:
            elapsed = time.monotonic() - self._started_at
            self._trace(f"[{self.name} +{elapsed:8.4f}s] {message}")

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
