"""Data units that travel through streams.

MANIFOLD streams carry opaque *units*.  A unit may be ordinary
application data (here: any picklable Python object, typically NumPy
arrays carrying grid blocks) or a *process reference* — the ``&worker``
construct the paper's protocol sends to the master so it can address the
worker it was just handed.

Units are immutable envelopes: the payload is whatever the producer
wrote, plus a monotonically increasing sequence number that preserves
FIFO accounting in tests and traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import ProcessBase

__all__ = ["Unit", "ProcessReference"]

_unit_counter = itertools.count()


@dataclass(frozen=True)
class Unit:
    """One unit of data flowing through a stream."""

    payload: Any
    seq: int = field(default_factory=_unit_counter.__next__)

    def is_reference(self) -> bool:
        """True when the payload is a process reference (``&p``)."""
        return isinstance(self.payload, ProcessReference)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Unit#{self.seq}({self.payload!r})"


@dataclass(frozen=True)
class ProcessReference:
    """The ``&p`` construct: a first-class reference to a process instance.

    The master receives one of these for every worker the coordinator
    creates (behaviour-interface step 3(c) in the paper) and uses it to
    activate the worker and to label the data it writes for it.
    """

    process: "ProcessBase"

    @property
    def name(self) -> str:
        return self.process.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"&{self.process.name}"
