"""TraceAnalysis invariants on exactly-known synthetic timelines."""

from __future__ import annotations

import pytest

from repro.trace import SpanNestingError, TraceAnalysis, TraceRecorder

from .test_recorder import FakeClock


def build_two_worker_timeline() -> TraceRecorder:
    """Two workers, three jobs, exactly-known times (clock in seconds).

    worker A: (0,1) computes t=1..3, then (2,0) computes t=4..9
    worker B: (1,0) computes t=2..6
    """
    clock = FakeClock(start=0.0)
    rec = TraceRecorder(clock=clock)
    for key in ((0, 1), (1, 0), (2, 0)):
        rec.record("job_submit", key=key, attempt=1, t=0.0)
    rec.record("job_start", key=(0, 1), worker="A", attempt=1, t=1.0)
    rec.record("job_start", key=(1, 0), worker="B", attempt=1, t=2.0)
    rec.record("job_done", key=(0, 1), worker="A", attempt=1, t=3.0)
    rec.record("job_start", key=(2, 0), worker="A", attempt=1, t=4.0)
    rec.record("job_done", key=(1, 0), worker="B", attempt=1, t=6.0)
    rec.record("job_done", key=(2, 0), worker="A", attempt=1, t=9.0)
    return rec


class TestJobAssembly:
    def test_every_done_becomes_a_span(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        assert len(analysis.jobs) == 3
        assert {j.key for j in analysis.jobs} == {(0, 1), (1, 0), (2, 0)}

    def test_queue_wait_and_compute(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        by_key = {j.key: j for j in analysis.jobs}
        assert by_key[(0, 1)].queue_wait_seconds == pytest.approx(1.0)
        assert by_key[(0, 1)].compute_seconds == pytest.approx(2.0)
        assert by_key[(2, 0)].queue_wait_seconds == pytest.approx(4.0)
        assert by_key[(2, 0)].compute_seconds == pytest.approx(5.0)

    def test_totals(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        assert analysis.total_compute_seconds == pytest.approx(2 + 4 + 5)
        assert analysis.total_queue_wait_seconds == pytest.approx(1 + 2 + 4)


class TestUtilization:
    def test_per_worker_busy_fraction(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        util = analysis.worker_utilization()
        # window is t=0..9
        assert util["A"] == pytest.approx(7.0 / 9.0)
        assert util["B"] == pytest.approx(4.0 / 9.0)

    def test_serial_worker_utilization_at_most_one(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        for frac in analysis.worker_utilization().values():
            assert 0.0 <= frac <= 1.0

    def test_empty_trace(self):
        analysis = TraceAnalysis([])
        assert analysis.worker_utilization() == {}
        assert analysis.mean_utilization == 0.0
        assert analysis.critical_path() == []
        assert analysis.critical_path_seconds == 0.0


class TestCriticalPath:
    def test_chain_is_last_finishing_workers_jobs(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        chain = analysis.critical_path()
        assert [j.key for j in chain] == [(0, 1), (2, 0)]

    def test_length_spans_first_submit_to_last_done(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        assert analysis.critical_path_seconds == pytest.approx(9.0)


class TestRecovery:
    @staticmethod
    def _faulted_timeline() -> TraceRecorder:
        rec = TraceRecorder(clock=FakeClock(0.0))
        rec.record("job_submit", key=(1, 1), attempt=1, t=0.0)
        rec.record(
            "fault", key=(1, 1), attempt=1, t=2.0,
            fault_kind="crash", action="retry", detected_by="liveness",
            seconds_lost=2.0,
        )
        rec.record("retry", key=(1, 1), attempt=2, t=2.0)
        rec.record("job_submit", key=(1, 1), attempt=2, t=2.0)
        rec.record("job_start", key=(1, 1), worker="A", attempt=2, t=2.5)
        rec.record("job_done", key=(1, 1), worker="A", attempt=2, t=4.0)
        return rec

    def test_counters(self):
        analysis = TraceAnalysis(self._faulted_timeline().events())
        assert analysis.n_faults == 1
        assert analysis.n_retries == 1
        assert analysis.n_respawns == 0
        assert analysis.n_fallbacks == 0

    def test_recovered_keys_require_completion(self):
        analysis = TraceAnalysis(self._faulted_timeline().events())
        assert analysis.recovered_keys == {(1, 1)}

    def test_overhead_is_lost_plus_replayed(self):
        analysis = TraceAnalysis(self._faulted_timeline().events())
        assert analysis.fault_seconds_lost == pytest.approx(2.0)
        assert analysis.replay_compute_seconds == pytest.approx(1.5)
        assert analysis.recovery_overhead_seconds == pytest.approx(3.5)

    def test_retry_backoff_seconds_sums_parked_time(self):
        rec = self._faulted_timeline()
        # the reactor engine stamps each retry with the delay its grid
        # spent parked on the timer wheel
        rec.record(
            "retry", key=(2, 0), attempt=2, t=5.0, backoff_seconds=0.4
        )
        rec.record(
            "retry", key=(2, 0), attempt=3, t=6.0, backoff_seconds=0.8
        )
        analysis = TraceAnalysis(rec.events())
        assert analysis.retry_backoff_seconds == pytest.approx(1.2)
        # retries without the stamp (the fork pool's) contribute zero
        assert analysis.n_retries == 3
        assert any("backoff" in line for line in analysis.report_lines())

    def test_fallback_counts_as_replay(self):
        rec = TraceRecorder(clock=FakeClock(0.0))
        rec.record("fallback", key=(2, 2), attempt=1, t=1.0)
        rec.record("job_start", key=(2, 2), attempt=2, t=1.0)
        rec.record("job_done", key=(2, 2), attempt=2, t=3.0, fallback=True)
        analysis = TraceAnalysis(rec.events())
        assert analysis.n_fallbacks == 1
        assert analysis.replay_compute_seconds == pytest.approx(2.0)


class TestSpanNesting:
    def test_well_nested_spans_accepted(self):
        rec = TraceRecorder(clock=FakeClock(0.0))
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        spans = TraceAnalysis(rec.events()).check_span_nesting()
        assert [name for name, _, _ in spans] == ["inner", "outer"]

    def test_unclosed_span_rejected(self):
        rec = TraceRecorder(clock=FakeClock(0.0))
        rec.record("span_begin", span="fanout", span_id=1)
        with pytest.raises(SpanNestingError, match="unclosed"):
            TraceAnalysis(rec.events()).check_span_nesting()

    def test_stray_end_rejected(self):
        rec = TraceRecorder(clock=FakeClock(0.0))
        rec.record("span_end", span="fanout", span_id=1)
        with pytest.raises(SpanNestingError, match="without a begin"):
            TraceAnalysis(rec.events()).check_span_nesting()

    def test_interleaved_spans_rejected(self):
        rec = TraceRecorder(clock=FakeClock(0.0))
        rec.record("span_begin", span="a", span_id=1)
        rec.record("span_begin", span="b", span_id=2)
        rec.record("span_end", span="a", span_id=1)
        rec.record("span_end", span="b", span_id=2)
        with pytest.raises(SpanNestingError, match="interleaved"):
            TraceAnalysis(rec.events()).check_span_nesting()


class TestReport:
    def test_report_mentions_key_metrics(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        text = "\n".join(analysis.report_lines())
        assert "utilization" in text
        assert "critical path" in text
        assert "queue wait" in text

    def test_report_omits_recovery_when_fault_free(self):
        analysis = TraceAnalysis(build_two_worker_timeline().events())
        assert not any("recovery" in l for l in analysis.report_lines())
