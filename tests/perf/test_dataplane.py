"""Unit tests of the zero-copy shared-memory data plane.

The arena, lease, descriptor and audit mechanics in isolation — the
integration path (a real pool writing through leases, bitwise equality
with the pickle transport, fault composition) lives in
``tests/restructured/test_data_plane.py``.
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.perf.dataplane import (
    DataPlane,
    DataPlaneError,
    ShmDescriptor,
    StaleLeaseError,
    _CAPACITY_QUANTUM,
    payload_nbytes,
    write_through_lease,
)
from repro.trace import TraceRecorder
from repro.trace.recorder import recording


@pytest.fixture
def plane():
    p = DataPlane()
    yield p
    p.close()


def _round_trip(plane, key, array):
    lease = plane.lease(key, array.nbytes)
    descriptor = write_through_lease(lease, array)
    assert descriptor is not None
    return lease, descriptor


class TestLeaseAndAttach:
    def test_round_trip_is_bitwise_exact(self, plane):
        array = np.linspace(-3.0, 7.0, 1234).reshape(2, 617)
        _, descriptor = _round_trip(plane, (1, 1), array)
        view = plane.attach(descriptor)
        assert np.array_equal(view, array)
        assert view.dtype == array.dtype

    def test_attach_is_zero_copy(self, plane):
        array = np.arange(64, dtype=np.float64)
        lease, descriptor = _round_trip(plane, (1, 1), array)
        view = plane.attach(descriptor)
        segment = plane._segments[lease.name]
        assert np.shares_memory(
            view, np.ndarray(view.shape, view.dtype, buffer=segment.shm.buf)
        )

    def test_payload_nbytes_sizes_float64_nodes(self):
        assert payload_nbytes(100) == 800
        assert payload_nbytes(100, itemsize=4) == 400

    def test_capacity_rounds_to_quantum(self, plane):
        lease = plane.lease((1, 1), 10)
        assert lease.nbytes == _CAPACITY_QUANTUM
        assert plane.lease((1, 2), _CAPACITY_QUANTUM + 1).nbytes == (
            2 * _CAPACITY_QUANTUM
        )

    def test_released_block_is_reused_not_reallocated(self, plane):
        array = np.arange(16, dtype=np.float64)
        lease, descriptor = _round_trip(plane, (1, 1), array)
        plane.attach(descriptor)
        plane.release(lease.name)
        again = plane.lease((2, 2), array.nbytes)
        assert again.name == lease.name
        assert plane.segments_created == 1
        assert plane.leases_issued == 2

    def test_smallest_fit_wins(self, plane):
        small = plane.lease((1, 1), 8)
        big = plane.lease((2, 2), 10 * _CAPACITY_QUANTUM)
        plane.release(small.name)
        plane.release(big.name)
        assert plane.lease((3, 3), 8).name == small.name

    def test_lease_rejects_nonpositive_size(self, plane):
        with pytest.raises(ValueError, match="positive"):
            plane.lease((1, 1), 0)


class TestRejection:
    def test_stale_generation_is_rejected_not_attached(self, plane):
        array = np.arange(32, dtype=np.float64)
        _, descriptor = _round_trip(plane, (1, 1), array)
        plane.bump_generation()
        with pytest.raises(StaleLeaseError, match="respawn"):
            plane.attach(descriptor)

    def test_unknown_segment_is_rejected(self, plane):
        descriptor = ShmDescriptor(
            name="repro-dp-nowhere", shape=(1,), dtype="float64",
            checksum=0, payload_bytes=8, generation=0,
        )
        with pytest.raises(DataPlaneError, match="unknown"):
            plane.attach(descriptor)

    def test_released_lease_is_no_longer_attachable(self, plane):
        array = np.arange(8, dtype=np.float64)
        lease, descriptor = _round_trip(plane, (1, 1), array)
        plane.release(lease.name)
        with pytest.raises(DataPlaneError, match="unleased"):
            plane.attach(descriptor)

    def test_oversized_claim_is_rejected(self, plane):
        array = np.arange(8, dtype=np.float64)
        _, descriptor = _round_trip(plane, (1, 1), array)
        huge = replace(descriptor, payload_bytes=10 * _CAPACITY_QUANTUM)
        with pytest.raises(DataPlaneError, match="bytes"):
            plane.attach(huge)

    def test_torn_write_fails_the_checksum(self, plane):
        array = np.arange(512, dtype=np.float64)
        lease, descriptor = _round_trip(plane, (1, 1), array)
        segment = plane._segments[lease.name]
        segment.shm.buf[3] ^= 0xFF  # scribble into the payload head
        with pytest.raises(DataPlaneError, match="checksum"):
            plane.attach(descriptor)

    def test_closed_plane_refuses_everything(self):
        plane = DataPlane()
        plane.close()
        with pytest.raises(DataPlaneError, match="closed"):
            plane.lease((1, 1), 8)


class TestWorkerSideFallback:
    def test_oversized_payload_falls_back_to_pickle(self, plane):
        lease = plane.lease((1, 1), 8)
        descriptor = write_through_lease(
            lease, np.arange(2 * _CAPACITY_QUANTUM, dtype=np.float64)
        )
        assert descriptor is None

    def test_empty_payload_falls_back(self, plane):
        lease = plane.lease((1, 1), 8)
        assert write_through_lease(lease, np.empty((0,))) is None

    def test_vanished_segment_falls_back(self, plane):
        lease = plane.lease((1, 1), 8)
        gone = replace(lease, name="repro-dp-vanished")
        assert write_through_lease(gone, np.arange(1, dtype=np.float64)) is None


class TestGenerationsAndRevocation:
    def test_bump_reaps_outstanding_leases(self, plane):
        lease = plane.lease((1, 1), 8)
        assert plane.outstanding == 1
        assert plane.bump_generation() == 1
        assert plane.outstanding == 0
        assert plane.reaped_count == 1
        # the reclaimed block is back in the free pool
        assert plane.lease((2, 2), 8).name == lease.name

    def test_revoke_is_idempotent_and_traced(self, plane):
        lease = plane.lease((1, 1), 8)
        recorder = TraceRecorder()
        with recording(recorder):
            assert plane.revoke(lease.name, reason="crash") is True
            assert plane.revoke(lease.name, reason="crash") is False
        reaps = [e for e in recorder.events() if e.kind == "segment_reaped"]
        assert len(reaps) == 1
        assert reaps[0].data["reason"] == "crash"

    def test_fresh_lease_carries_the_new_generation(self, plane):
        plane.bump_generation()
        assert plane.lease((1, 1), 8).generation == 1


class TestCloseAudit:
    def test_clean_run_audits_clean(self):
        plane = DataPlane()
        array = np.arange(8, dtype=np.float64)
        lease, descriptor = _round_trip(plane, (1, 1), array)
        plane.attach(descriptor)
        plane.release(lease.name)
        audit = plane.close()
        assert audit.clean
        assert audit.segments_created == 1
        assert audit.leases_issued == 1
        assert audit.released == 1
        assert audit.reaped == audit.reaped_late == audit.leaked == 0

    def test_outstanding_lease_is_reaped_late_and_traced(self):
        plane = DataPlane()
        plane.lease((3, 1), 8)
        recorder = TraceRecorder()
        with recording(recorder):
            audit = plane.close()
        assert audit.reaped_late == 1
        assert audit.leaked == 0
        assert not audit.clean
        reaps = [e for e in recorder.events() if e.kind == "segment_reaped"]
        assert reaps and reaps[0].data["late"] is True
        assert reaps[0].data["reason"] == "close"

    def test_close_is_idempotent(self):
        plane = DataPlane()
        plane.lease((1, 1), 8)
        first = plane.close()
        assert plane.close() == first

    def test_context_manager_closes(self):
        with DataPlane() as plane:
            plane.lease((1, 1), 8)
        assert plane.closed

    def test_no_resource_warnings_on_a_full_cycle(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            with DataPlane() as plane:
                array = np.arange(256, dtype=np.float64)
                lease, descriptor = _round_trip(plane, (1, 1), array)
                view = plane.attach(descriptor)
                assert view.sum() == array.sum()
                del view
                plane.release(lease.name)
