"""The persistent worker pool — one long-lived fork pool per process.

The seed's real-parallel path paid a coordination tax the paper warns
about: every :func:`~repro.restructured.parallel.run_multiprocessing`
call forked a fresh ``multiprocessing.Pool`` and tore it down again,
so the five-run averaging protocol re-paid pool start-up five times and
warm per-process state (the operator cache of
:mod:`repro.sparsegrid.cache`) was thrown away with the workers.

This module keeps **one** fork pool alive for the whole process:

* levels, runs and engines share it — a second ``run_multiprocessing``
  call (or a second :class:`~repro.restructured.worker.ProcessPoolEngine`)
  finds warm workers whose operator/factor caches survived the previous
  job batch;
* acquiring with a larger ``processes`` requirement drains the old pool
  gracefully and grows a new one (never ``terminate()`` — in-flight
  jobs finish);
* shutdown is ``close()``/``join()``, and an ``atexit`` hook winds the
  pool down at interpreter exit.

Cold-start cost is recorded so the warm-path observability layer can
report cold-vs-warm pool timings.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "PersistentWorkerPool",
    "acquire_pool",
    "shutdown_pool",
    "pool_diagnostics",
]


class PersistentWorkerPool:
    """A fork pool that outlives individual job batches."""

    def __init__(self, processes: int) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        started = time.perf_counter()
        self.processes = processes
        self._pool = multiprocessing.get_context("fork").Pool(processes)
        self.cold_start_seconds = time.perf_counter() - started
        self.jobs_dispatched = 0
        self.batches_dispatched = 0
        self.closed = False

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def apply(self, fn: Callable, args: tuple) -> Any:
        """One synchronous job (the engine path)."""
        self._require_open()
        self.jobs_dispatched += 1
        return self._pool.apply(fn, args)

    def map_static(self, fn: Callable, items: list) -> list:
        """``pool.map`` with its default static chunking (the seed
        dispatch policy, kept for measurement)."""
        self._require_open()
        self.jobs_dispatched += len(items)
        self.batches_dispatched += 1
        return self._pool.map(fn, items)

    def imap_unordered(
        self, fn: Callable, items: Iterable, *, chunksize: int = 1
    ) -> Iterable:
        """Greedy single-job dispatch: each free worker pulls the next
        item, so a longest-first ordering becomes LPT scheduling."""
        self._require_open()
        items = list(items)
        self.jobs_dispatched += len(items)
        self.batches_dispatched += 1
        return self._pool.imap_unordered(fn, items, chunksize)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Drain in-flight jobs and join the workers; idempotent."""
        if self.closed:
            return
        self.closed = True
        self._pool.close()
        self._pool.join()

    def _require_open(self) -> None:
        if self.closed:
            raise RuntimeError("pool has been shut down")


# ----------------------------------------------------------------------
# the shared process-wide pool
# ----------------------------------------------------------------------
_shared: Optional[PersistentWorkerPool] = None
#: how many times a shared pool had to be (re)created — cold starts
_cold_starts = 0
#: how many acquisitions found a warm pool
_warm_acquisitions = 0


def acquire_pool(processes: Optional[int] = None) -> tuple[PersistentWorkerPool, bool]:
    """Return ``(pool, was_warm)`` — the shared pool, creating or
    growing it only when needed.

    ``processes=None`` accepts any live pool (defaulting to the CPU
    count on a cold start); an explicit requirement larger than the
    current pool drains it and grows a replacement.
    """
    global _shared, _cold_starts, _warm_acquisitions
    needed = processes or multiprocessing.cpu_count()
    if (
        _shared is not None
        and not _shared.closed
        and (processes is None or _shared.processes >= needed)
    ):
        _warm_acquisitions += 1
        return _shared, True
    if _shared is not None:
        _shared.shutdown()
    _shared = PersistentWorkerPool(needed)
    _cold_starts += 1
    return _shared, False


def shutdown_pool() -> None:
    """Gracefully wind down the shared pool (drain, join, forget)."""
    global _shared
    if _shared is not None:
        _shared.shutdown()
        _shared = None


def pool_diagnostics() -> dict[str, float]:
    """Counters for the warm-path report."""
    return {
        "alive": _shared is not None and not _shared.closed,
        "processes": _shared.processes if _shared is not None else 0,
        "cold_starts": _cold_starts,
        "warm_acquisitions": _warm_acquisitions,
        "jobs_dispatched": _shared.jobs_dispatched if _shared is not None else 0,
        "cold_start_seconds": (
            _shared.cold_start_seconds if _shared is not None else 0.0
        ),
    }


atexit.register(shutdown_pool)
