"""Full-pipeline integration: calibrate → simulate → report.

Exercises the exact chain the benchmark harness runs, end to end, on a
real (small-level) calibration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness import (
    Table1Experiment,
    figure1_ebb_flow,
    figure_speedup_machines,
    figure_times,
    render_table1,
)
from repro.perf import decompose_run
from repro.restructured import run_concurrent, run_multiprocessing
from repro.sparsegrid import SequentialApplication


class TestCalibrationPipeline:
    def test_calibrated_table_has_paper_shape(self, calibrated_cost_model):
        exp = Table1Experiment(calibrated_cost_model, runs=3, seed=1)
        rows = exp.run_all(levels=[0, 6, 12, 15], tols=(1e-3,))
        by_level = {r.level: r for r in rows}
        # no gain at the bottom, clear gain at the top
        assert by_level[0].su < 0.1
        assert by_level[6].su < 1.0
        assert by_level[15].su > 3.0
        # machine usage expands with the level
        assert by_level[15].m > by_level[6].m > by_level[0].m
        # speedup lags machines everywhere
        assert all(r.su < r.m for r in rows)

    def test_crossover_near_paper_level(self, calibrated_cost_model):
        """The paper's break-even sits at level ~10; ours must fall in
        the same neighbourhood (9-13)."""
        exp = Table1Experiment(calibrated_cost_model, runs=3, seed=2)
        crossover = None
        for level in range(6, 16):
            if exp.run_level(level, 1e-3).su >= 1.0:
                crossover = level
                break
        assert crossover is not None and 9 <= crossover <= 13

    def test_figures_from_calibrated_rows(self, calibrated_cost_model):
        exp = Table1Experiment(calibrated_cost_model, runs=2, seed=3)
        rows = exp.run_all(levels=[3, 9, 15], tols=(1e-3, 1e-4))
        for fig in (
            figure_times(rows, 1e-3, 2),
            figure_speedup_machines(rows, 1e-3, 3),
            figure_times(rows, 1e-4, 4),
            figure_speedup_machines(rows, 1e-4, 5),
        ):
            assert fig.rendered
            assert len(fig.x) == 3

    def test_figure1_paper_statistics_neighbourhood(self, calibrated_cost_model):
        """Level-15 ebb & flow: peak well into the double digits, the
        weighted average far below the peak (paper: peak 32, avg 11)."""
        exp = Table1Experiment(calibrated_cost_model, runs=1, seed=4)
        fig = figure1_ebb_flow(exp, level=15, tol=1e-3)
        peak = max(fig.series["machines"])
        assert 10 <= peak <= 32

    def test_overhead_decomposition_of_level15(self, calibrated_cost_model):
        from repro.cluster import MultiUserNoise, SimulationParams

        exp = Table1Experiment(calibrated_cost_model, runs=1, seed=5)
        run = exp.simulate_concurrent_once(15, 1e-3, np.random.default_rng(5))
        quiet_exp = Table1Experiment(
            calibrated_cost_model,
            runs=1,
            seed=5,
            params=SimulationParams(noise=MultiUserNoise.quiet()),
        )
        quiet = quiet_exp.simulate_concurrent_once(15, 1e-3, np.random.default_rng(5))
        report = decompose_run(run, quiet)
        assert report.useful_seconds > 0
        # at level 15 useful work dominates: the gain regime
        assert report.useful_seconds > report.coordination_seconds

    def test_render_full_table(self, calibrated_cost_model):
        exp = Table1Experiment(calibrated_cost_model, runs=2, seed=6)
        rows = exp.run_all(levels=[0, 15], tols=(1e-3, 1e-4))
        text = render_table1(rows)
        assert "st(paper)" in text
        assert text.count("\n") >= 5


class TestRealExecutionPipeline:
    """The actually-executed (non-simulated) path at a small level."""

    def test_three_way_equivalence(self):
        seq = SequentialApplication(root=2, level=3, tol=1e-3).run()
        conc, _ = run_concurrent(root=2, level=3, tol=1e-3, timeout=180)
        mp = run_multiprocessing(root=2, level=3, tol=1e-3, processes=4)
        assert np.array_equal(seq.combined, conc.combined)
        assert np.array_equal(seq.combined, mp.combined)

    def test_real_worker_times_feed_cost_records(self):
        conc, _ = run_concurrent(root=2, level=3, tol=1e-3, timeout=180)
        assert all(p.wall_seconds > 0 for p in conc.payloads.values())
        assert all(p.solves > 0 for p in conc.payloads.values())
