"""The extern events of the master/worker protocol.

Five events let the master communicate with the protocol (behaviour-
interface step 1):

* ``create_pool`` — master requests an empty workers-pool;
* ``create_worker`` — master requests one more worker in the pool;
* ``rendezvous`` — master requests the coordinator to organize the
  synchronization point counting dead workers;
* ``a_rendezvous`` — coordinator acknowledges the successful rendezvous;
* ``finished`` — master declares it needs no more workers-pools.

Step 1 reads "Make the extern events ... available to the master so
that it can communicate with the master/worker protocol" — i.e. the
events are *handed to* a specific master, they are not global
mailboxes.  :func:`events_for` implements that: each master process
gets its own event set (same names, distinct identities), so several
master/worker protocols — including hierarchies where a worker is
itself a master (§2's IWIM levels) — can run in one application without
stealing each other's occurrences.  ``protocol_mw`` and
``MasterProtocolClient`` both derive their events from the master, so
the pairing is automatic.

The sixth event of the protocol, ``death_worker``, is scoped even
tighter: it is declared locally inside each ``Create_Worker_Pool``
invocation and handed to every worker of that pool as its parameter.

The module-level constants are the *name* anchors (useful for log
inspection and documentation); coordination always goes through a
master's own set.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.manifold import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.manifold import ProcessBase

__all__ = [
    "CREATE_POOL",
    "CREATE_WORKER",
    "RENDEZVOUS",
    "A_RENDEZVOUS",
    "FINISHED",
    "ProtocolEvents",
    "events_for",
]

CREATE_POOL = Event("create_pool")
CREATE_WORKER = Event("create_worker")
RENDEZVOUS = Event("rendezvous")
A_RENDEZVOUS = Event("a_rendezvous")
FINISHED = Event("finished")


@dataclass(frozen=True)
class ProtocolEvents:
    """One master's extern-event set."""

    create_pool: Event
    create_worker: Event
    rendezvous: Event
    a_rendezvous: Event
    finished: Event

    @classmethod
    def fresh(cls) -> "ProtocolEvents":
        return cls(
            create_pool=Event.local("create_pool"),
            create_worker=Event.local("create_worker"),
            rendezvous=Event.local("rendezvous"),
            a_rendezvous=Event.local("a_rendezvous"),
            finished=Event.local("finished"),
        )


_events_lock = threading.Lock()
_events_by_master: "weakref.WeakKeyDictionary[ProcessBase, ProtocolEvents]" = (
    weakref.WeakKeyDictionary()
)


def events_for(master: "ProcessBase") -> ProtocolEvents:
    """The extern-event set of ``master`` (created on first use)."""
    with _events_lock:
        events = _events_by_master.get(master)
        if events is None:
            events = ProtocolEvents.fresh()
            _events_by_master[master] = events
        return events
