#!/usr/bin/env python
"""Simulate the paper's §6 distributed run on the 32-machine cluster.

Calibrates the cost model on the real solver (small levels), then
simulates a distributed run at a chosen level on the paper's
heterogeneous cluster: prints the chronological Welcome/Bye listing
(§6's output format), the machines-in-use staircase (Figure 1), and the
overhead decomposition (§7's categories).

Usage::

    python examples/distributed_cluster_demo.py [level] [tol]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.cluster import MultiUserNoise, SimulationParams, paper_cluster
from repro.cluster.simulator import simulate_distributed
from repro.cluster.trace import (
    ascii_timeline,
    machines_timeline,
    render_trace,
    weighted_average_machines,
)
from repro.perf import CostModel, decompose_run, measure_costs


def main() -> int:
    level = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    tol = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0e-3

    print("calibrating the cost model on the real solver (levels 4-6)...")
    records = measure_costs("rotating-cone", root=2, levels=[4, 5, 6], tols=[tol])
    model = CostModel.fit(records, root=2)
    print(f"  fit R^2 = {model.r_squared:.3f}, "
          f"solve-count R^2 = {model.solves_r_squared:.3f}")

    costs = model.level_costs(level, tol)
    prol = model.prolongation_seconds(level)
    params = SimulationParams()
    rng = np.random.default_rng(634)
    run = simulate_distributed(
        [costs], paper_cluster(), params, rng,
        master_prolongation_ref_seconds=prol,
    )

    print()
    print(f"== chronological output (level {level}, tol {tol:g}) ==")
    listing = render_trace(run).splitlines()
    head, tail = listing[:12], listing[-6:]
    print("\n".join(head))
    if len(listing) > 18:
        print(f"... ({len(listing) - 18} lines elided) ...")
        print("\n".join(tail))

    timeline = machines_timeline(run)
    avg = weighted_average_machines(timeline, run.elapsed_seconds)
    peak = max(p.machines for p in timeline)
    print()
    print(f"== ebb & flow (Figure 1) ==")
    print(f"run length {run.elapsed_seconds:.1f}s, peak {peak} machines, "
          f"weighted average {avg:.1f}")
    print(ascii_timeline(timeline, run.elapsed_seconds))

    quiet = simulate_distributed(
        [costs], paper_cluster(),
        SimulationParams(noise=MultiUserNoise.quiet()),
        np.random.default_rng(634),
        master_prolongation_ref_seconds=prol,
    )
    report = decompose_run(run, quiet)
    print()
    print("== overhead decomposition (the three §7 categories) ==")
    for name, value in report.as_dict().items():
        unit = "" if name == "overhead_fraction" else "s"
        print(f"  {name:20s} {value:10.2f}{unit}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
