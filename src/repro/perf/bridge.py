"""Bridging real executions into the simulated cluster.

The cost model extrapolates; sometimes you want the opposite — take a
run that actually executed on this machine and ask "what would this
exact workload have cost on the paper's cluster?".  This module
converts the per-grid measurements carried by real run results
(sequential, coordination-runtime, or multiprocessing) into the
simulator's :class:`~repro.cluster.simulator.GridCost` inputs and into
:class:`~repro.perf.costmodel.CostRecord` calibration records.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

from repro.cluster.host import Host, paper_cluster
from repro.cluster.simulator import (
    DistributedRun,
    GridCost,
    SimulationParams,
    simulate_distributed,
)
from repro.restructured.master import ConcurrentResult
from repro.restructured.parallel import MultiprocessingResult
from repro.sparsegrid.grid import Grid, nested_loop_grids
from repro.sparsegrid.sequential import SequentialResult

from .costmodel import CostRecord

__all__ = ["costs_from_run", "records_from_run", "replay_on_cluster"]

AnyRunResult = Union[SequentialResult, ConcurrentResult, MultiprocessingResult]


def _per_grid(
    result: AnyRunResult,
) -> dict[tuple[int, int], tuple[float, int, int, int]]:
    """(wall seconds, solves, result bytes, split_k) per grid.

    Rejects non-finite or negative wall times up front: a corrupted
    timing (NaN from a serialization bug, a negative from clock
    arithmetic) would otherwise silently poison the cost-model fit or
    the cluster replay far downstream of its origin.
    """
    out: dict[tuple[int, int], tuple[float, int, int, int]] = {}
    if isinstance(result, SequentialResult):
        for key, sub in result.data.results.items():
            out[key] = (
                sub.wall_seconds,
                sub.stats.solves,
                sub.solution.nbytes,
                getattr(sub.stats, "split_k", 1),
            )
    else:
        for key, payload in result.payloads.items():
            out[key] = (
                payload.wall_seconds,
                payload.solves,
                payload.solution.nbytes,
                getattr(payload, "split_k", 1),
            )
    bad = {
        key: wall
        for key, (wall, _solves, _bytes, _k) in out.items()
        if not math.isfinite(wall) or wall < 0.0
    }
    if bad:
        raise ValueError(
            f"run result carries invalid wall_seconds for grids {sorted(bad)}: "
            f"{[bad[k] for k in sorted(bad)]}"
        )
    return out


def costs_from_run(result: AnyRunResult) -> list[GridCost]:
    """The run's grids as simulator inputs, in nested-loop order.

    The measured wall seconds become the reference-machine work (i.e.
    "this machine" plays the 1200 MHz Athlon's role; the shape analysis
    is scale-free).
    """
    per_grid = _per_grid(result)
    expected = nested_loop_grids(result.root, result.level)
    missing = [(g.l, g.m) for g in expected if (g.l, g.m) not in per_grid]
    if missing:
        raise ValueError(f"run result is missing grids: {missing}")
    return [
        GridCost(
            l=g.l,
            m=g.m,
            work_ref_seconds=per_grid[(g.l, g.m)][0],
            result_bytes=per_grid[(g.l, g.m)][2],
        )
        for g in expected
    ]


def records_from_run(result: AnyRunResult) -> list[CostRecord]:
    """The run's grids as cost-model calibration records.

    Sharded (split) payloads are tagged with their ``split_k`` so
    :meth:`~repro.perf.costmodel.CostModel.fit` can keep them out of
    the unsplit wall regression; their counters stay in system-level
    units (see :class:`~repro.perf.costmodel.CostRecord`).
    """
    records = []
    for (l, m), (wall, solves, _bytes, split_k) in sorted(
        _per_grid(result).items()
    ):
        grid = Grid(result.root, l, m)
        records.append(
            CostRecord(
                l=l,
                m=m,
                tol=result.tol,
                wall_seconds=wall,
                solves=solves,
                steps_accepted=max(1, solves // 2),
                n_interior=grid.n_interior,
                split_k=split_k,
            )
        )
    return records


def replay_on_cluster(
    result: AnyRunResult,
    cluster: Sequence[Host] | None = None,
    params: SimulationParams | None = None,
    seed: int = 0,
    *,
    prolongation_ref_seconds: float | None = None,
) -> DistributedRun:
    """Simulate this exact measured workload on the (paper's) cluster."""
    if prolongation_ref_seconds is None:
        prolongation_ref_seconds = getattr(result, "prolongation_seconds", 0.0)
    return simulate_distributed(
        [costs_from_run(result)],
        cluster if cluster is not None else paper_cluster(),
        params if params is not None else SimulationParams(),
        np.random.default_rng(seed),
        master_prolongation_ref_seconds=prolongation_ref_seconds,
    )
